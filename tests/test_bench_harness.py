"""Tests for the benchmark harness (statuses, sweeps, reporting)."""

import pytest

from repro.bench import (
    ALGORITHMS,
    format_sweep,
    memory_for_ratio,
    run_algorithm,
    run_sweep,
    semi_threshold,
    shape_summary,
    shuffled_edges,
    subsample_edges,
)
from repro.graph.generators import cycle_graph, random_dag, random_digraph


class TestRunAlgorithm:
    def test_ext_scc_ok(self):
        g = random_digraph(40, 100, seed=0)
        result = run_algorithm("Ext-SCC", g.edges, 40, memory_bytes=512,
                               block_size=64)
        assert result.ok
        assert result.io_total > 0
        assert result.num_sccs is not None
        assert result.iterations is not None

    def test_algorithms_agree_on_scc_count(self):
        g = random_digraph(40, 100, seed=1)
        counts = set()
        for name in ("Ext-SCC", "Ext-SCC-Op", "DFS-SCC", "Semi-SCC"):
            r = run_algorithm(name, g.edges, 40, memory_bytes=2048, block_size=64)
            assert r.ok, name
            counts.add(r.num_sccs)
        assert len(counts) == 1

    def test_inf_status_on_budget(self):
        g = cycle_graph(100)
        result = run_algorithm("DFS-SCC", g.edges, 100, memory_bytes=512,
                               block_size=64, io_budget=100)
        assert result.status == "INF"
        assert result.cell() == "INF"

    def test_nonterm_status(self):
        g = random_dag(200, 500, seed=0)
        edges = shuffled_edges(g)
        result = run_algorithm("EM-SCC", edges, 200, memory_bytes=800,
                               block_size=64)
        assert result.status == "NONTERM"

    def test_nomem_status(self):
        g = cycle_graph(100)
        result = run_algorithm("Semi-SCC", g.edges, 100, memory_bytes=256,
                               block_size=64)
        assert result.status == "NOMEM"

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            run_algorithm("Quantum-SCC", [], 0, memory_bytes=128, block_size=64)

    def test_cell_metrics(self):
        g = random_digraph(20, 40, seed=2)
        r = run_algorithm("Ext-SCC", g.edges, 20, memory_bytes=512, block_size=64)
        assert r.cell("io").replace(",", "").isdigit()
        assert r.cell("time").endswith("s")
        with pytest.raises(ValueError):
            r.cell("nope")


class TestSweep:
    @pytest.fixture
    def sweep(self):
        g = random_digraph(30, 70, seed=3)
        points = [
            (m, g.edges, 30, m) for m in (256, 512)
        ]
        return run_sweep("test", "M", points, ["Ext-SCC", "Ext-SCC-Op"],
                         block_size=64)

    def test_grid_complete(self, sweep):
        assert sweep.algorithms == ["Ext-SCC", "Ext-SCC-Op"]
        assert sweep.x_values == [256, 512]
        assert len(sweep.runs) == 4

    def test_result_lookup(self, sweep):
        r = sweep.result("Ext-SCC", 256)
        assert r.algorithm == "Ext-SCC"
        assert r.x == 256

    def test_series(self, sweep):
        series = sweep.series("Ext-SCC-Op")
        assert [r.x for r in series] == [256, 512]

    def test_missing_point(self, sweep):
        with pytest.raises(KeyError):
            sweep.result("Ext-SCC", 999)

    def test_format_table(self, sweep):
        table = format_sweep(sweep, "io")
        assert "Ext-SCC-Op" in table
        assert "256" in table

    def test_shape_summary(self, sweep):
        text = shape_summary(sweep, "Ext-SCC-Op", "Ext-SCC")
        assert "Ext-SCC-Op vs Ext-SCC" in text


class TestWorkloadHelpers:
    def test_semi_threshold(self):
        assert semi_threshold(100, block_size=64) == 864

    def test_memory_for_ratio(self):
        assert memory_for_ratio(100, 0.5, block_size=64) == 432

    def test_memory_floor_is_2b(self):
        assert memory_for_ratio(1, 0.01, block_size=1024) == 2048

    def test_shuffle_is_deterministic_permutation(self):
        g = random_digraph(30, 80, seed=0)
        a = shuffled_edges(g, seed=1)
        b = shuffled_edges(g, seed=1)
        assert a == b
        assert sorted(a) == sorted(g.edges)
        assert a != g.edges

    def test_subsample(self):
        edges = [(i, i + 1) for i in range(100)]
        sub = subsample_edges(edges, 40)
        assert len(sub) == 40
        assert set(sub) <= set(edges)
        assert subsample_edges(edges, 100) == edges
