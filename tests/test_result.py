"""Tests for SCCResult."""

import pytest

from repro.core.result import SCCResult


class TestCanonicalization:
    def test_labels_become_min_member(self):
        result = SCCResult({5: 99, 3: 99, 7: 42})
        assert result.labels == {5: 3, 3: 3, 7: 7}

    def test_from_pairs(self):
        result = SCCResult.from_pairs([(1, 10), (2, 10), (3, 30)])
        assert result.labels == {1: 1, 2: 1, 3: 3}

    def test_different_raw_labels_same_partition_equal(self):
        a = SCCResult({0: 100, 1: 100, 2: 200})
        b = SCCResult({0: 7, 1: 7, 2: 8})
        assert a == b
        assert a.same_partition(b)

    def test_different_partitions_unequal(self):
        a = SCCResult({0: 1, 1: 1, 2: 2})
        b = SCCResult({0: 1, 1: 2, 2: 2})
        assert a != b


class TestStructure:
    @pytest.fixture
    def result(self):
        return SCCResult({0: 0, 1: 0, 2: 0, 3: 3, 4: 4, 5: 4})

    def test_counts(self, result):
        assert result.num_nodes == 6
        assert result.num_sccs == 3

    def test_components_sorted(self, result):
        assert result.components() == [[0, 1, 2], [3], [4, 5]]

    def test_component_of(self, result):
        assert result.component_of(1) == [0, 1, 2]
        assert result.component_of(3) == [3]

    def test_size_histogram(self, result):
        assert result.size_histogram() == {3: 1, 1: 1, 2: 1}

    def test_largest_and_trivial(self, result):
        assert result.largest_size == 3
        assert result.num_trivial == 1
        assert result.num_nontrivial == 2

    def test_strongly_connected(self, result):
        assert result.strongly_connected(0, 2)
        assert not result.strongly_connected(0, 3)

    def test_empty(self):
        result = SCCResult({})
        assert result.num_sccs == 0
        assert result.largest_size == 0
        assert result.components() == []

    def test_hashable(self, result):
        assert hash(result) == hash(SCCResult(dict(result.labels)))
