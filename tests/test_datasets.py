"""Tests for the named datasets: Figure 1 and Table I."""

import pytest

from tests.conftest import reference_sccs

from repro.graph.datasets import (
    FIGURE1_SCCS,
    TABLE1,
    build_dataset,
    figure1_graph,
)


class TestFigure1:
    def test_counts_match_paper(self):
        g = figure1_graph()
        assert g.num_nodes == 13  # "a graph G with 13 nodes and 20 edges"
        assert g.num_edges == 20

    def test_sccs_match_example_2_1(self):
        """SCC1 = {b..g} (6 nodes), SCC2 = {i,j,k,l} (4 nodes)."""
        g = figure1_graph()
        result = reference_sccs(g.edges, g.num_nodes)
        nontrivial = sorted(
            (c for c in result.components() if len(c) > 1), key=len, reverse=True
        )
        assert [len(c) for c in nontrivial] == [6, 4]
        assert nontrivial[0] == g.planted_sccs[0]
        assert nontrivial[1] == g.planted_sccs[1]

    def test_five_sccs_total(self):
        """Example 3.1: SCCs are {a},{b..g},{h},{i..l},{m}."""
        g = figure1_graph()
        assert reference_sccs(g.edges, g.num_nodes).num_sccs == 5

    def test_example_2_1_paths(self):
        """b <-> e via (b,c,d,e) and (e,f,g,b)."""
        g = figure1_graph(as_labels=True)
        edges = set(g.edges)
        for path in [("b", "c", "d", "e"), ("e", "f", "g", "b")]:
            for a, b in zip(path, path[1:]):
                assert (a, b) in edges

    def test_label_variant_matches_integer_variant(self):
        labels = "abcdefghijklm"
        lettered = {(labels.index(u), labels.index(v)) for u, v in figure1_graph(as_labels=True).edges}
        assert lettered == set(figure1_graph().edges)


class TestTable1:
    def test_all_parameters_present(self):
        expected = {
            "num_nodes", "avg_degree", "memory", "massive_scc_size",
            "large_scc_size", "small_scc_size", "num_large_sccs",
            "num_small_sccs",
        }
        assert set(TABLE1) == expected

    def test_defaults_match_paper_scaled(self):
        assert TABLE1["num_nodes"].scaled_default == 100_000
        assert TABLE1["avg_degree"].paper_default == 4
        assert TABLE1["large_scc_size"].scaled_default == 80  # paper: 8K
        assert TABLE1["num_large_sccs"].paper_default == 50

    def test_ranges_have_five_points(self):
        for row in TABLE1.values():
            assert len(row.paper_range) == len(row.scaled_range)
            assert len(row.scaled_range) >= 1


class TestBuildDataset:
    @pytest.mark.parametrize("family", ["massive-scc", "large-scc", "small-scc"])
    def test_families_build_small(self, family):
        g = build_dataset(family, num_nodes=1000, seed=0)
        assert g.num_nodes == 1000
        assert g.num_edges > 0

    def test_webspam_family(self):
        g = build_dataset("webspam", num_nodes=400, seed=0)
        assert g.num_nodes == 400

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            build_dataset("nope")

    def test_overrides(self):
        g = build_dataset("large-scc", num_nodes=600, avg_degree=2.0,
                          scc_size=10, scc_count=3, seed=0)
        assert len(g.planted_sccs) == 3
        assert all(len(s) == 10 for s in g.planted_sccs)
