"""End-to-end tests for the Ext-SCC driver (Algorithm 2)."""

import pytest

from tests.conftest import make_graph_files, random_edges, reference_sccs

from repro.core import ExtSCC, ExtSCCConfig, compute_sccs
from repro.exceptions import IOBudgetExceeded, ReproError
from repro.graph.generators import (
    complete_digraph,
    cycle_graph,
    path_graph,
    planted_scc_graph,
    random_dag,
    webspam_like,
)
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.graph.edge_file import EdgeFile, NodeFile


CONFIGS = {
    "baseline": ExtSCCConfig.baseline(),
    "optimized": ExtSCCConfig.optimized(),
}


@pytest.fixture(params=sorted(CONFIGS), ids=str)
def config(request):
    return CONFIGS[request.param]


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, config, seed):
        edges = random_edges(50, 130, seed, self_loops=True)
        out = compute_sccs(edges, num_nodes=50, memory_bytes=300,
                           block_size=64, config=config)
        assert out.result == reference_sccs(edges, 50)

    @pytest.mark.parametrize(
        "generator", [cycle_graph, path_graph],
        ids=["cycle", "path"],
    )
    def test_extreme_shapes(self, config, generator):
        g = generator(60)
        out = compute_sccs(g.edges, num_nodes=60, memory_bytes=256,
                           block_size=64, config=config)
        assert out.result == reference_sccs(g.edges, 60)

    def test_complete_graph(self, config):
        g = complete_digraph(10)
        out = compute_sccs(g.edges, num_nodes=10, memory_bytes=140,
                           block_size=64, config=config)
        assert out.result.num_sccs == 1

    def test_dag(self, config):
        g = random_dag(70, 180, seed=1)
        out = compute_sccs(g.edges, num_nodes=70, memory_bytes=300,
                           block_size=64, config=config)
        assert out.result.num_sccs == 70

    def test_planted_sccs_found(self, config):
        g = planted_scc_graph(90, 2.0, [15, 10, 8], seed=6, strict=True)
        out = compute_sccs(g.edges, num_nodes=90, memory_bytes=400,
                           block_size=64, config=config)
        for scc in g.planted_sccs:
            assert out.result.component_of(scc[0]) == scc

    def test_webspam_small(self, config):
        g = webspam_like(200, avg_degree=4.0, seed=5)
        out = compute_sccs(g.edges, num_nodes=200, memory_bytes=900,
                           block_size=128, config=config)
        assert out.result == reference_sccs(g.edges, g.num_nodes)

    def test_empty_edge_list(self, config):
        out = compute_sccs([], num_nodes=10, memory_bytes=256,
                           block_size=64, config=config)
        assert out.result.num_sccs == 10

    def test_nodes_derived_from_edges_when_unspecified(self, config):
        out = compute_sccs([(3, 9), (9, 3)], memory_bytes=256,
                           block_size=64, config=config)
        assert sorted(out.result.labels) == [3, 9]
        assert out.result.num_sccs == 1


class TestDriverBehaviour:
    def test_no_iterations_when_nodes_fit(self):
        out = compute_sccs([(0, 1), (1, 0)], num_nodes=2,
                           memory_bytes=4096, block_size=64)
        assert out.num_iterations == 0

    def test_iterations_when_memory_small(self):
        g = cycle_graph(60)
        out = compute_sccs(g.edges, num_nodes=60, memory_bytes=256,
                           block_size=64)
        assert out.num_iterations >= 1
        # 8 * |V_last| + B <= M at the stop point.
        last = out.iterations[-1]
        assert 8 * last.next_num_nodes + 64 <= 256

    def test_iteration_records_monotone_nodes(self):
        g = cycle_graph(60)
        out = compute_sccs(g.edges, num_nodes=60, memory_bytes=256,
                           block_size=64)
        for record in out.iterations:
            assert record.next_num_nodes < record.num_nodes
            assert record.nodes_removed > 0

    def test_phase_io_decomposition(self):
        g = cycle_graph(60)
        out = compute_sccs(g.edges, num_nodes=60, memory_bytes=256,
                           block_size=64)
        assert out.contraction_io.total > 0
        assert out.semi_io.total > 0
        assert out.expansion_io.total > 0
        assert out.io.total >= (
            out.contraction_io.total + out.semi_io.total + out.expansion_io.total
        )

    def test_per_level_phase_labels(self):
        g = cycle_graph(60)
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(256)
        edges, nodes = make_graph_files(device, g.edges, 60, memory)
        out = ExtSCC(ExtSCCConfig.baseline()).run(device, edges, memory, nodes=nodes)
        assert out.num_iterations >= 1
        stats = device.stats
        for i in range(1, out.num_iterations + 1):
            assert f"contract-{i}" in stats.by_phase
            assert f"expand-{i}" in stats.by_phase
        # Nested labels: per-level I/O sums into the enclosing phase totals.
        contract_sum = sum(
            stats.by_phase[f"contract-{i}"].total
            for i in range(1, out.num_iterations + 1)
        )
        assert contract_sum == stats.by_phase["contraction"].total
        # Pass counts are attributed per level too.
        assert stats.passes_by_phase["contraction"] == sum(
            stats.passes_by_phase.get(f"contract-{i}", 0)
            for i in range(1, out.num_iterations + 1)
        )

    def test_pool_attached_and_counter_neutral(self):
        g = cycle_graph(60)

        def run_with(config):
            device = BlockDevice(block_size=64)
            memory = MemoryBudget(256)
            edges, nodes = make_graph_files(device, g.edges, 60, memory)
            out = ExtSCC(config).run(device, edges, memory, nodes=nodes)
            return device, out

        pooled_device, pooled = run_with(ExtSCCConfig.baseline())
        assert pooled_device.pool is not None
        assert pooled_device.pool.cache_blocks == 0
        plain_device, plain = run_with(
            ExtSCCConfig.baseline(pool_readahead=1)  # disables attachment
        )
        assert plain_device.pool is None
        assert pooled.result == plain.result
        assert pooled_device.stats.seq_reads == plain_device.stats.seq_reads
        assert pooled_device.stats.seq_writes == plain_device.stats.seq_writes
        assert pooled_device.stats.rand_reads == plain_device.stats.rand_reads
        assert pooled_device.stats.rand_writes == plain_device.stats.rand_writes

    def test_zero_random_io(self, config):
        edges = random_edges(50, 120, seed=2)
        out = compute_sccs(edges, num_nodes=50, memory_bytes=300,
                           block_size=64, config=config)
        assert out.io.random == 0

    def test_io_budget_enforced(self):
        g = cycle_graph(100)
        with pytest.raises(IOBudgetExceeded):
            compute_sccs(g.edges, num_nodes=100, memory_bytes=300,
                         block_size=64, io_budget=50)

    def test_max_iterations_guard(self):
        g = cycle_graph(64)
        config = ExtSCCConfig(max_iterations=1)
        with pytest.raises(ReproError):
            compute_sccs(g.edges, num_nodes=64, memory_bytes=256,
                         block_size=64, config=config)

    def test_all_semi_solvers_supported(self):
        edges = random_edges(40, 90, seed=3)
        reference = reference_sccs(edges, 40)
        for solver in ("spanning-tree", "forward-backward", "coloring"):
            out = compute_sccs(edges, num_nodes=40, memory_bytes=400,
                               block_size=64,
                               config=ExtSCCConfig(semi_scc=solver))
            assert out.result == reference, solver

    def test_optimized_flag_dispatch(self):
        edges = random_edges(30, 60, seed=0)
        base = compute_sccs(edges, num_nodes=30, memory_bytes=200,
                            block_size=64, optimized=False)
        opt = compute_sccs(edges, num_nodes=30, memory_bytes=200,
                           block_size=64, optimized=True)
        assert base.config.name == "Ext-SCC"
        assert opt.config.name == "Ext-SCC-Op"
        assert base.result == opt.result

    def test_device_files_cleaned_up(self):
        """After a run, only the caller's input files remain on the device."""
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(300)
        edges = random_edges(40, 90, seed=1)
        edge_file = EdgeFile.from_edges(device, "E", edges)
        node_file = NodeFile.from_ids(device, "V", range(40), memory, presorted=True)
        before_algorithm = {"E", "V"}
        ExtSCC(ExtSCCConfig.optimized()).run(device, edge_file, memory, nodes=node_file)
        assert set(device.list_files()) == before_algorithm

    def test_input_files_unmodified(self):
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(300)
        edges = random_edges(40, 90, seed=1)
        edge_file = EdgeFile.from_edges(device, "E", edges)
        node_file = NodeFile.from_ids(device, "V", range(40), memory, presorted=True)
        ExtSCC().run(device, edge_file, memory, nodes=node_file)
        assert list(edge_file.scan()) == edges
        assert list(node_file.scan()) == list(range(40))


class TestMultiLevel:
    def test_many_contraction_levels(self):
        """Force a deep contraction stack and verify exact recovery."""
        g = cycle_graph(120)
        out = compute_sccs(g.edges, num_nodes=120, memory_bytes=200,
                           block_size=64, optimized=False)
        assert out.num_iterations >= 5
        assert out.result.num_sccs == 1
        assert out.result.largest_size == 120

    @pytest.mark.parametrize("seed", range(4))
    def test_deep_random(self, config, seed):
        edges = random_edges(80, 200, seed)
        out = compute_sccs(edges, num_nodes=80, memory_bytes=200,
                           block_size=64, config=config)
        assert out.result == reference_sccs(edges, 80)
        assert out.num_iterations >= 2
