"""Tests for the multi-tenant query service: store build, batched
lookups, per-tenant session ledgers/throttling, daemon round trips."""

import json
import threading

import pytest

from tests.conftest import random_edges, reference_sccs

from repro.exceptions import (
    IOBudgetExceeded,
    ServiceProtocolError,
    StorageError,
    UnknownNodeError,
    UnknownSessionError,
)
from repro.io.stats import IOStats
from repro.service import (
    BatchEngine,
    LabelStore,
    QueryDaemon,
    ServiceClient,
    SessionManager,
    TenantSession,
    build_store,
)
from repro.service.store import COND_EDGES_FILE, LABELS_FILE, META_NAME, TOPO_FILE


# Two 3-cycles chained through a DAG edge, plus a 2-path and an isolate:
# SCCs {0,1,2} -> {3,4,5} -> {6}, and 7 -> 8.
EDGES = [(0, 1), (1, 2), (2, 0), (2, 3),
         (3, 4), (4, 5), (5, 3), (5, 6),
         (7, 8)]
LABELS = {0: 0, 1: 0, 2: 0, 3: 3, 4: 3, 5: 3, 6: 6, 7: 7, 8: 8}


@pytest.fixture
def store_dir(tmp_path):
    build_store(EDGES, tmp_path / "store", block_size=64)
    return tmp_path / "store"


@pytest.fixture
def store(store_dir):
    with LabelStore(store_dir) as s:
        yield s


class TestBuildStore:
    def test_meta_contents(self, store_dir):
        meta = json.loads((store_dir / META_NAME).read_text())
        assert meta["num_nodes"] == 9
        assert meta["num_sccs"] == 5
        assert meta["num_edges"] == len(EDGES)
        assert set(meta["fences"]) == {LABELS_FILE, TOPO_FILE}

    def test_store_files_are_exactly_the_serving_set(self, store_dir):
        from repro.io.persistent import PersistentBlockDevice

        device = PersistentBlockDevice(store_dir, block_size=64, readonly=True)
        assert sorted(device.list_files()) == sorted(
            [LABELS_FILE, COND_EDGES_FILE, TOPO_FILE]
        )
        device.close()

    def test_labels_match_reference(self, tmp_path):
        edges = random_edges(60, 150, seed=3)
        build_store(edges, tmp_path / "s", num_nodes=60, block_size=64)
        expected = reference_sccs(edges, 60).labels
        with LabelStore(tmp_path / "s") as store:
            got = store.lookup_labels(None, sorted(expected))
            assert got == expected

    def test_rebuild_replaces(self, store_dir):
        build_store([(0, 1), (1, 0)], store_dir, block_size=64)
        with LabelStore(store_dir) as store:
            assert store.lookup_labels(None, [0, 1]) == {0: 0, 1: 0}
            assert store.meta["num_nodes"] == 2

    def test_open_missing_store_raises(self, tmp_path):
        with pytest.raises(StorageError):
            LabelStore(tmp_path / "nope")


class TestLabelStoreQueries:
    def test_lookup_labels(self, store):
        assert store.lookup_labels(None, list(range(9))) == LABELS

    def test_unknown_node_is_none(self, store):
        assert store.lookup_labels(None, [99]) == {99: None}

    def test_same_component(self, store):
        assert store.same_component(None, 0, 2) is True
        assert store.same_component(None, 0, 3) is False

    def test_same_component_unknown_node_raises(self, store):
        with pytest.raises(UnknownNodeError) as info:
            store.same_component(None, 99, 0)
        assert info.value.node == 99

    def test_reachable(self, store):
        assert store.reachable(None, 0, 6) is True
        assert store.reachable(None, 6, 0) is False
        assert store.reachable(None, 7, 8) is True
        assert store.reachable(None, 8, 7) is False
        assert store.reachable(None, 0, 8) is False

    def test_reachable_within_component(self, store):
        assert store.reachable(None, 1, 0) is True

    def test_topo_orders_are_a_valid_topological_order(self, store):
        orders = store.topo_orders(None, list(range(9)))
        # Edges within the condensation go to strictly deeper layers.
        assert orders[0][1] < orders[3][1] < orders[6][1]
        assert orders[7][1] < orders[8][1]
        # Nodes of one SCC share (component, layer).
        assert orders[0] == orders[1] == orders[2]
        assert orders[99] is None if 99 in orders else True

    def test_topo_orders_unknown_is_none(self, store):
        assert store.topo_orders(None, [0, 99])[99] is None

    def test_server_stats_shape(self, store):
        store.lookup_labels(None, [0, 1])
        stats = store.server_stats()
        assert stats["store"]["num_sccs"] == 5
        assert stats["physical_io"]["total"] >= 1
        assert stats["scc_label"]["flushes"] >= 1
        assert 0.0 <= stats["scc_label"]["label_cache_hit_rate"] <= 1.0


class TestBatchedIO:
    def test_batch_shares_block_reads(self, tmp_path):
        """N cold lookups in one batch cost reads per *distinct block*,
        not per lookup (the tentpole's O(sorted scan) claim)."""
        edges = random_edges(200, 500, seed=1)
        build_store(edges, tmp_path / "s", num_nodes=200, block_size=64)
        with LabelStore(tmp_path / "s", cache_entries=0) as store:
            nodes = list(range(200))
            before = store.stats.snapshot()
            store.lookup_labels(None, nodes)
            batched = (store.stats.snapshot() - before).total
            assert batched == store.labels.file.num_blocks
            # One random lookup per node would cost one read each.
            assert batched < len(nodes)

    def test_batch_answers_equal_point_answers(self, tmp_path):
        edges = random_edges(120, 300, seed=2)
        build_store(edges, tmp_path / "s", num_nodes=120, block_size=64)
        with LabelStore(tmp_path / "s", cache_entries=0) as store:
            nodes = list(range(120))
            batched = store.lookup_labels(None, nodes)
            pointwise = {
                n: store.lookup_labels(None, [n])[n] for n in nodes
            }
            assert batched == pointwise

    def test_cache_makes_repeat_batches_free(self, store):
        store.lookup_labels(None, list(range(9)))
        before = store.stats.snapshot()
        store.lookup_labels(None, list(range(9)))
        assert (store.stats.snapshot() - before).total == 0
        report = store.label_engine.hit_rate_report()
        assert report["label_cache_hit_rate"] > 0.0

    def test_flush_records_trace_span(self, store):
        before = len(store.trace.spans)
        store.lookup_labels(None, [0, 5])
        spans = store.trace.spans[before:]
        assert spans and spans[0].phase == "query/scc-label"
        assert spans[0].reads >= 1

    def test_throttled_entry_does_not_block_batch_peers(self, store_dir):
        with LabelStore(store_dir, cache_entries=0) as store:
            manager = SessionManager()
            capped = manager.create("capped", io_budget=0)
            free = manager.create("free")
            outcomes = store.label_engine.flush(
                [(capped, [0, 5]), (free, [0, 5])]
            )
            assert isinstance(outcomes[0], IOBudgetExceeded)
            assert outcomes[1][0] == (0, 0)
            # The rejected entry performed (and was charged) zero I/O.
            assert capped.stats.total == 0
            assert capped.throttled == 1
            assert free.stats.total >= 1


class TestSessions:
    def test_session_ledger_counts_blocks(self, store_dir):
        with LabelStore(store_dir, cache_entries=0) as store:
            manager = SessionManager()
            session = manager.create("t1")
            store.lookup_labels(session, list(range(9)))
            ledger = session.ledger()
            assert ledger["io"]["total"] == store.labels.file.num_blocks
            assert ledger["queries"] == 1
            assert ledger["lookups"] == 9

    def test_single_tenant_attribution_equals_physical(self, store_dir):
        with LabelStore(store_dir, cache_entries=0) as store:
            boot = store.stats.total
            manager = SessionManager()
            session = manager.create("only")
            store.lookup_labels(session, list(range(9)))
            store.topo_orders(session, [0, 3, 7])
            assert session.stats.total == store.stats.total - boot

    def test_two_tenants_isolated_ledgers_and_throttle(self, store_dir):
        """The acceptance scenario: a capped tenant is throttled without
        affecting the other, and each ledger reflects its own blocks."""
        with LabelStore(store_dir, cache_entries=0) as store:
            manager = SessionManager()
            capped = manager.create("capped", io_budget=1)
            free = manager.create("free")
            # Both tables span >= 1 block; 9 nodes fit in one 64B block
            # of 8-byte records -> ask for nodes in distinct blocks via
            # both tables to need >= 2 blocks for the capped tenant.
            free_labels = store.lookup_labels(free, list(range(9)))
            assert free_labels == LABELS
            first = store.lookup_labels(capped, [0])  # 1 block: admitted
            assert first == {0: 0}
            with pytest.raises(IOBudgetExceeded):
                store.topo_orders(capped, list(range(9)))  # would exceed
            # The free tenant is untouched and still served.
            assert store.lookup_labels(free, [5]) == {5: 3}
            assert capped.stats.total == 1  # only the admitted block
            assert capped.throttled == 1
            assert free.throttled == 0
            roll = manager.roll_up()
            assert roll["throttled"] == 1
            assert roll["open_sessions"] == 2

    def test_close_folds_into_roll_up(self):
        manager = SessionManager()
        session = manager.create("t")
        session.note_query(4, cache_hits=1)
        session.stats.record_read(sequential=False, blocks=2)
        ledger = manager.close(session.id)
        assert ledger["queries"] == 1
        roll = manager.roll_up()
        assert roll["open_sessions"] == 0
        assert roll["queries"] == 1
        assert roll["attributed"]["total"] == 2

    def test_unknown_session(self):
        manager = SessionManager()
        with pytest.raises(UnknownSessionError):
            manager.get("s99")
        with pytest.raises(UnknownSessionError):
            manager.close("s99")


class TestConcurrentClients:
    def test_k_threads_byte_identical_answers(self, tmp_path):
        """K concurrent sessions through one engine: every answer equals
        the reference labeling, and attribution covers physical I/O."""
        edges = random_edges(150, 400, seed=5)
        expected = reference_sccs(edges, 150).labels
        build_store(edges, tmp_path / "s", num_nodes=150, block_size=64)
        with LabelStore(tmp_path / "s", cache_entries=0) as store:
            boot = store.stats.total
            manager = SessionManager()
            nodes = sorted(expected)
            results = {}
            errors = []

            def worker(k):
                try:
                    session = manager.create(f"t{k}")
                    results[k] = store.lookup_labels(session, nodes)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(k,)) for k in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for k in range(6):
                assert results[k] == expected
            # Attributed >= physical (sharing), physical >= one pass.
            roll = manager.roll_up()
            physical = store.stats.total - boot
            assert roll["attributed"]["total"] >= physical
            assert physical >= store.labels.file.num_blocks


class TestDaemonRoundTrip:
    @pytest.fixture
    def served(self, store_dir):
        store = LabelStore(store_dir)
        daemon = QueryDaemon(store, epoch_seconds=0.001, owns_store=True)
        daemon.start()
        try:
            yield daemon
        finally:
            daemon.close()

    def test_full_protocol(self, served):
        port = served.address[1]
        with ServiceClient(port=port) as client:
            assert client.ping()
            client.open_session("tenant-a")
            assert client.scc_label(list(range(9))) == LABELS
            assert client.same_component(0, 2) is True
            assert client.reachable(0, 6) is True
            assert client.reachable(6, 0) is False
            orders = client.topo_order([0, 3, 6])
            assert orders[0][1] < orders[3][1] < orders[6][1]
            ledger = client.session_stats()
            assert ledger["tenant"] == "tenant-a"
            assert ledger["queries"] >= 4
            stats = client.server_stats()
            assert stats["sessions"]["open_sessions"] == 1
            final = client.close_session()
            assert final["tenant"] == "tenant-a"

    def test_unknown_node_round_trips_as_exception(self, served):
        with ServiceClient(port=served.address[1]) as client:
            client.open_session()
            with pytest.raises(UnknownNodeError) as info:
                client.same_component(99, 0)
            assert info.value.node == 99
            # Bulk lookups report unknowns as None instead of failing.
            assert client.scc_label([99]) == {99: None}

    def test_unknown_session_round_trips(self, served):
        with ServiceClient(port=served.address[1]) as client:
            client.session = "s999"
            with pytest.raises(UnknownSessionError):
                client.scc_label([0])
            client.session = None

    def test_malformed_request_is_protocol_error(self, served):
        with ServiceClient(port=served.address[1]) as client:
            with pytest.raises(ServiceProtocolError):
                client.request({"op": "no-such-op"})
            session = client.open_session()
            with pytest.raises(ServiceProtocolError):
                client.request({"op": "scc-label", "session": session,
                                "nodes": "zero"})

    def test_throttled_round_trips_as_budget_error(self, store_dir):
        store = LabelStore(store_dir, cache_entries=0)
        with QueryDaemon(store, epoch_seconds=0.0, owns_store=True) as daemon:
            daemon.start()
            with ServiceClient(port=daemon.address[1]) as client:
                client.open_session("capped", io_budget=0)
                with pytest.raises(IOBudgetExceeded):
                    client.scc_label([0])
                assert client.session_stats()["throttled"] == 1

    def test_concurrent_clients_coalesce_epochs(self, store_dir):
        """K clients hammering one epoch share the block reads."""
        store = LabelStore(store_dir, cache_entries=0)
        with QueryDaemon(store, epoch_seconds=0.05, owns_store=True) as daemon:
            daemon.start()
            boot = store.stats.total
            barrier = threading.Barrier(4)
            results = []

            def hammer():
                with ServiceClient(port=daemon.address[1]) as client:
                    client.open_session("swarm")
                    barrier.wait()
                    results.append(client.scc_label(list(range(9))))

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r == LABELS for r in results)
            # All four arrived inside one epoch: one physical pass.
            assert store.stats.total - boot == store.labels.file.num_blocks
            assert store.label_engine.flushes == 1

    def test_shutdown_op_stops_server(self, store_dir):
        store = LabelStore(store_dir)
        daemon = QueryDaemon(store, owns_store=True)
        daemon.start()
        with ServiceClient(port=daemon.address[1]) as client:
            client.shutdown()
        daemon._serve_thread.join(timeout=5)
        assert not daemon._serve_thread.is_alive()
        daemon.close()


class TestBatchCollector:
    def test_zero_epoch_still_answers(self, store):
        from repro.service.batch import BatchCollector

        collector = BatchCollector(store.label_engine, epoch_seconds=0.0)
        try:
            assert collector.submit(None, [0, 3])[3] == (3, 3)
        finally:
            collector.close()

    def test_closed_collector_rejects(self, store):
        from repro.service.batch import BatchCollector

        collector = BatchCollector(store.label_engine, epoch_seconds=0.0)
        collector.close()
        with pytest.raises(RuntimeError):
            collector.submit(None, [0])

    def test_max_batch_splits_flushes(self, store):
        from repro.service.batch import BatchCollector

        collector = BatchCollector(
            store.label_engine, epoch_seconds=0.02, max_batch=2
        )
        try:
            barrier = threading.Barrier(5)
            outs = []

            def go(n):
                barrier.wait()
                outs.append(collector.submit(None, [n]))

            threads = [threading.Thread(target=go, args=(i,)) for i in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(outs) == 5
        finally:
            collector.close()
