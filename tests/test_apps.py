"""Tests for the downstream applications (reachability, external toposort)."""

import random

import pytest

from tests.conftest import random_edges

from repro.apps import (
    CycleDetected,
    IndexStats,
    ReachabilityIndex,
    external_topological_sort,
)
from repro.graph.digraph import DiGraph
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.graph.generators import cycle_graph, path_graph, planted_scc_graph, random_dag
from repro.memory_scc import reachable_from, tarjan_scc


class TestReachabilityIndex:
    def build(self, edges, num_nodes, k=3):
        graph = DiGraph(edges, nodes=range(num_nodes))
        return graph, ReachabilityIndex(graph, tarjan_scc(graph), num_labelings=k)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bfs_on_random_graphs(self, seed):
        edges = random_edges(40, 90, seed)
        graph, index = self.build(edges, 40)
        rng = random.Random(seed)
        for _ in range(200):
            u, v = rng.randrange(40), rng.randrange(40)
            assert index.reachable(u, v) == (v in reachable_from(graph, u)), (u, v)

    def test_same_scc_fast_path(self):
        _, index = self.build(cycle_graph(10).edges, 10)
        assert index.reachable(3, 7)
        assert index.stats.same_scc == 1
        assert index.stats.dfs_decided == 0

    def test_interval_pruning_fires(self):
        # Two parallel chains: cross-chain queries are interval-pruned.
        edges = [(i, i + 1) for i in range(9)]
        edges += [(10 + i, 11 + i) for i in range(9)]
        _, index = self.build(edges, 20)
        assert not index.reachable(0, 15) or not index.reachable(15, 0)
        assert index.stats.interval_pruned >= 1

    def test_path_graph_directionality(self):
        _, index = self.build(path_graph(12).edges, 12)
        assert index.reachable(0, 11)
        assert not index.reachable(11, 0)

    def test_planted_sccs(self):
        g = planted_scc_graph(60, 2.0, [12, 10], seed=2, strict=True)
        graph, index = self.build(g.edges, 60)
        a, b = g.planted_sccs[0][0], g.planted_sccs[0][-1]
        assert index.reachable(a, b) and index.reachable(b, a)
        assert index.strongly_connected(a, b)

    def test_stats_accounting(self):
        edges = random_edges(30, 60, seed=5)
        _, index = self.build(edges, 30)
        for u in range(10):
            index.reachable(u, (u + 7) % 30)
        assert index.stats.total == 10

    def test_single_labeling_allowed(self):
        _, index = self.build(path_graph(5).edges, 5, k=1)
        assert index.reachable(0, 4)

    def test_zero_labelings_rejected(self):
        graph = DiGraph(path_graph(3).edges)
        with pytest.raises(ValueError):
            ReachabilityIndex(graph, tarjan_scc(graph), num_labelings=0)

    def test_num_dag_nodes(self):
        _, index = self.build(cycle_graph(10).edges, 10)
        assert index.num_dag_nodes == 1


class TestExternalToposort:
    def run(self, device, memory, edges, num_nodes):
        ef = EdgeFile.from_edges(device, device.temp_name("e"), edges)
        nf = NodeFile.from_ids(device, device.temp_name("n"),
                               range(num_nodes), memory, presorted=True)
        out = external_topological_sort(device, ef, nf, memory)
        layers = dict(out.scan())
        out.delete()
        return layers

    def test_path(self, device, memory):
        layers = self.run(device, memory, path_graph(8).edges, 8)
        assert layers == {i: i for i in range(8)}

    def test_respects_every_edge(self, device, memory):
        g = random_dag(50, 130, seed=1)
        layers = self.run(device, memory, g.edges, 50)
        for u, v in g.edges:
            assert layers[u] < layers[v]

    def test_layers_are_longest_paths(self, device, memory):
        edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]
        layers = self.run(device, memory, edges, 5)
        assert layers == {0: 0, 1: 1, 2: 1, 3: 2, 4: 3}

    def test_isolated_nodes_layer_zero(self, device, memory):
        layers = self.run(device, memory, [(0, 1)], 4)
        assert layers[2] == 0 and layers[3] == 0

    def test_cycle_rejected(self, device, memory):
        with pytest.raises(CycleDetected):
            self.run(device, memory, cycle_graph(6).edges, 6)

    def test_cycle_reachable_from_dag_part(self, device, memory):
        edges = [(0, 1), (1, 2), (2, 1)]
        with pytest.raises(CycleDetected):
            self.run(device, memory, edges, 3)

    def test_sequential_io_only(self, device, memory):
        g = random_dag(40, 100, seed=3)
        self.run(device, memory, g.edges, 40)
        assert device.stats.random == 0

    def test_intermediate_files_cleaned(self, device, memory):
        g = random_dag(30, 70, seed=4)
        before = set(device.list_files())
        ef = EdgeFile.from_edges(device, "keep-e", g.edges)
        nf = NodeFile.from_ids(device, "keep-n", range(30), memory, presorted=True)
        out = external_topological_sort(device, ef, nf, memory)
        out.delete()
        assert set(device.list_files()) - before == {"keep-e", "keep-n"}

    def test_pipeline_with_ext_scc(self, device, memory):
        """Cyclic graph -> Ext-SCC -> condensed edges -> external toposort."""
        from repro.core import compute_sccs

        g = planted_scc_graph(60, 2.0, [15, 10], seed=6, strict=True)
        out = compute_sccs(g.edges, num_nodes=60, memory_bytes=300, block_size=64)
        labels = out.result.labels
        condensed = sorted(
            {(labels[u], labels[v]) for u, v in g.edges if labels[u] != labels[v]}
        )
        reps = sorted(set(labels.values()))
        ef = EdgeFile.from_edges(device, "c-e", condensed)
        nf = NodeFile.from_ids(device, "c-n", reps, memory, presorted=True)
        result = external_topological_sort(device, ef, nf, memory)
        layers = dict(result.scan())
        for u, v in condensed:
            assert layers[u] < layers[v]
