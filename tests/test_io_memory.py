"""Tests for the memory budget."""

import pytest

from repro.exceptions import InsufficientMemory
from repro.io.memory import MemoryBudget


class TestCapacities:
    def test_record_capacity(self):
        assert MemoryBudget(100).record_capacity(8) == 12

    def test_block_capacity(self):
        assert MemoryBudget(1000).block_capacity(256) == 3

    def test_invalid_record_size(self):
        with pytest.raises(ValueError):
            MemoryBudget(100).record_capacity(0)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            MemoryBudget(100).block_capacity(-1)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(InsufficientMemory):
            MemoryBudget(0)


class TestRequirements:
    def test_require_at_least_passes(self):
        MemoryBudget(100).require_at_least(100)

    def test_require_at_least_fails(self):
        with pytest.raises(InsufficientMemory):
            MemoryBudget(100).require_at_least(101, what="test op")

    def test_fits(self):
        budget = MemoryBudget(64)
        assert budget.fits(64)
        assert not budget.fits(65)

    def test_model_assumption_m_ge_2b(self):
        MemoryBudget(128).validate_against_block(64)
        with pytest.raises(InsufficientMemory):
            MemoryBudget(127).validate_against_block(64)
