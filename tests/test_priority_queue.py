"""Tests for the external priority queue."""

import heapq
import random

import pytest

from repro.io.memory import MemoryBudget
from repro.io.priority_queue import ExternalPriorityQueue


def make_pq(device, memory_bytes=300):
    return ExternalPriorityQueue(device, MemoryBudget(memory_bytes))


class TestBasics:
    def test_push_pop_single(self, device):
        pq = make_pq(device)
        pq.push(5, 50)
        assert pq.pop_min() == (5, 50)
        assert len(pq) == 0

    def test_orders_by_key(self, device):
        pq = make_pq(device)
        for key in (3, 1, 2):
            pq.push(key, key * 10)
        assert [pq.pop_min() for _ in range(3)] == [(1, 10), (2, 20), (3, 30)]

    def test_peek_does_not_remove(self, device):
        pq = make_pq(device)
        pq.push(4, 0)
        assert pq.peek_min() == (4, 0)
        assert len(pq) == 1

    def test_empty_pop_raises(self, device):
        pq = make_pq(device)
        with pytest.raises(IndexError):
            pq.pop_min()
        with pytest.raises(IndexError):
            pq.peek_min()

    def test_duplicates_allowed(self, device):
        pq = make_pq(device)
        pq.push(1, 7)
        pq.push(1, 7)
        assert pq.pop_min() == (1, 7)
        assert pq.pop_min() == (1, 7)

    def test_pop_key_collects_all_payloads(self, device):
        pq = make_pq(device)
        for payload in (3, 1, 2):
            pq.push(5, payload)
        pq.push(9, 0)
        assert pq.pop_key(5) == [1, 2, 3]
        assert pq.pop_key(5) == []
        assert len(pq) == 1


class TestSpilling:
    def test_overflow_spills_runs(self, device):
        pq = make_pq(device, memory_bytes=64)  # tiny heap
        for i in range(100):
            pq.push(i % 37, i)
        assert pq.num_runs > 0
        assert device.stats.seq_writes > 0

    def test_order_across_heap_and_runs(self, device):
        pq = make_pq(device, memory_bytes=64)
        rng = random.Random(0)
        keys = [rng.randrange(1000) for _ in range(300)]
        for key in keys:
            pq.push(key, 0)
        popped = [pq.pop_min()[0] for _ in range(len(keys))]
        assert popped == sorted(keys)

    def test_interleaved_push_pop(self, device):
        pq = make_pq(device, memory_bytes=64)
        rng = random.Random(1)
        oracle = []
        clock = 0
        for _ in range(600):
            if oracle and rng.random() < 0.4:
                assert pq.pop_min() == heapq.heappop(oracle)
            else:
                clock += 1
                item = (clock + rng.randrange(50), rng.randrange(100))
                pq.push(*item)
                heapq.heappush(oracle, item)
        while oracle:
            assert pq.pop_min() == heapq.heappop(oracle)

    def test_monotone_pop_key_stream(self, device):
        """The time-forward-processing pattern: keys drained in order."""
        pq = make_pq(device, memory_bytes=64)
        rng = random.Random(2)
        expected = {}
        for _ in range(400):
            key = rng.randrange(40)
            payload = rng.randrange(1000)
            expected.setdefault(key, []).append(payload)
            pq.push(key, payload)
        for key in range(40):
            assert pq.pop_key(key) == sorted(expected.get(key, []))
        assert len(pq) == 0

    def test_drop_removes_run_files(self, device):
        pq = ExternalPriorityQueue(device, MemoryBudget(64), name="q")
        for i in range(200):
            pq.push(i, 0)
        assert any(name.startswith("q.run") for name in device.list_files())
        pq.drop()
        assert not any(name.startswith("q.run") for name in device.list_files())

    def test_runs_read_sequentially(self, device):
        pq = make_pq(device, memory_bytes=64)
        for i in range(300):
            pq.push(i * 7 % 101, i)
        before = device.stats.snapshot()
        while len(pq):
            pq.pop_min()
        assert (device.stats.snapshot() - before).random == 0


class TestEdgeCases:
    """Degenerate shapes the planner's merge operators must survive:
    empty queues, exactly-one-run merges, and duplicate-heavy streams."""

    def test_empty_queue_state(self, device):
        pq = make_pq(device)
        assert len(pq) == 0
        assert pq.num_runs == 0
        assert pq.pop_key(3) == []

    def test_drained_queue_raises_again(self, device):
        pq = make_pq(device, memory_bytes=64)
        for i in range(100):
            pq.push(i)
        while len(pq):
            pq.pop_min()
        with pytest.raises(IndexError):
            pq.pop_min()
        assert pq.pop_key(0) == []

    def test_single_run_merge(self, device):
        """Exactly one spill: the drain is a merge of one run against an
        empty heap — the L=1 case of the merge fan-in."""
        pq = make_pq(device, memory_bytes=64)
        capacity = pq._heap_capacity
        keys = [(i * 13) % capacity for i in range(capacity)]
        for key in keys:
            pq.push(key)
        assert pq.num_runs == 1
        assert len(pq._heap) == 0
        assert [pq.pop_min()[0] for _ in range(len(keys))] == sorted(keys)

    def test_single_run_then_fresh_pushes(self, device):
        """New pushes after a lone spill merge correctly with its run."""
        pq = make_pq(device, memory_bytes=64)
        capacity = pq._heap_capacity
        for i in range(capacity):
            pq.push(i * 2)  # evens into the run
        assert pq.num_runs == 1
        for i in range(5):
            pq.push(i * 2 + 1)  # odds stay in the heap
        popped = [pq.pop_min()[0] for _ in range(len(pq))]
        assert popped == sorted(popped)
        assert set(popped[:11]) == set(range(11))

    def test_duplicate_heavy_across_runs(self, device):
        """One key dominating several spilled runs drains completely."""
        pq = make_pq(device, memory_bytes=64)
        for i in range(400):
            pq.push(7, i)
        pq.push(3, 0)
        pq.push(9, 0)
        assert pq.num_runs > 1
        assert pq.pop_min() == (3, 0)
        assert pq.pop_key(7) == list(range(400))
        assert pq.pop_min() == (9, 0)
        assert len(pq) == 0

    def test_drop_resets_to_empty(self, device):
        pq = ExternalPriorityQueue(device, MemoryBudget(64), name="z")
        for i in range(200):
            pq.push(i)
        pq.drop()
        assert len(pq) == 0
        with pytest.raises(IndexError):
            pq.peek_min()
        pq.push(1, 1)  # usable again after drop
        assert pq.pop_min() == (1, 1)
