"""Tests for the three semi-external SCC solvers."""

import pytest

from tests.conftest import make_graph_files, random_edges, reference_sccs

from repro.core.result import SCCResult
from repro.exceptions import InsufficientMemory
from repro.graph.edge_file import EdgeFile
from repro.graph.generators import (
    complete_digraph,
    cycle_graph,
    path_graph,
    planted_scc_graph,
)
from repro.io.memory import MemoryBudget
from repro.semi_external import (
    SEMI_SCC_SOLVERS,
    SpanningTreeStats,
    coloring_scc,
    forward_backward_scc,
    run_semi_scc_to_file,
    spanning_tree_scc,
)


@pytest.fixture(params=sorted(SEMI_SCC_SOLVERS), ids=str)
def solver(request):
    return SEMI_SCC_SOLVERS[request.param]


def run_solver(solver, device, edges, num_nodes):
    edge_file = EdgeFile.from_edges(device, device.temp_name("e"), edges)
    return SCCResult(solver(edge_file, range(num_nodes)))


class TestKnownGraphs:
    def test_cycle(self, solver, device):
        result = run_solver(solver, device, cycle_graph(20).edges, 20)
        assert result.num_sccs == 1
        assert result.largest_size == 20

    def test_path(self, solver, device):
        result = run_solver(solver, device, path_graph(20).edges, 20)
        assert result.num_sccs == 20

    def test_complete(self, solver, device):
        result = run_solver(solver, device, complete_digraph(8).edges, 8)
        assert result.num_sccs == 1

    def test_two_sccs(self, solver, device):
        edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
        result = run_solver(solver, device, edges, 4)
        assert result.strongly_connected(0, 1)
        assert result.strongly_connected(2, 3)
        assert not result.strongly_connected(0, 2)

    def test_isolated_nodes(self, solver, device):
        result = run_solver(solver, device, [(0, 1)], 5)
        assert result.num_sccs == 5

    def test_empty_graph(self, solver, device):
        result = run_solver(solver, device, [], 3)
        assert result.num_sccs == 3

    def test_self_loops_and_parallels(self, solver, device):
        edges = [(0, 0), (0, 1), (0, 1), (1, 0), (2, 2)]
        result = run_solver(solver, device, edges, 3)
        assert result.strongly_connected(0, 1)
        assert not result.strongly_connected(0, 2)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, solver, device, seed):
        edges = random_edges(45, 110, seed, self_loops=True)
        result = run_solver(solver, device, edges, 45)
        assert result == reference_sccs(edges, 45)

    def test_planted(self, solver, device):
        g = planted_scc_graph(80, 2.5, [15, 10, 5], seed=4, strict=True)
        result = run_solver(solver, device, g.edges, 80)
        assert result == reference_sccs(g.edges, 80)
        for scc in g.planted_sccs:
            assert result.component_of(scc[0]) == scc


class TestIOProfile:
    def test_only_sequential_io(self, solver, device):
        edges = random_edges(40, 100, seed=0)
        run_solver(solver, device, edges, 40)
        assert device.stats.random == 0

    def test_spanning_tree_pass_count(self, device):
        edges = cycle_graph(30).edges
        edge_file = EdgeFile.from_edges(device, "e", edges)
        stats = SpanningTreeStats()
        spanning_tree_scc(edge_file, range(30), stats=stats)
        assert stats.passes >= 2  # at least one working + one fixpoint pass
        assert stats.contractions >= 1


class TestMemoryContract:
    def test_requires_semi_external_budget(self, device):
        edges = cycle_graph(100).edges
        edge_file = EdgeFile.from_edges(device, "e", edges)
        tiny = MemoryBudget(100)  # < 8 * 100 + 64
        for solver in (spanning_tree_scc, forward_backward_scc, coloring_scc):
            with pytest.raises(InsufficientMemory):
                solver(edge_file, range(100), memory=tiny)

    def test_accepts_sufficient_budget(self, device):
        edges = cycle_graph(10).edges
        edge_file = EdgeFile.from_edges(device, "e", edges)
        labels = spanning_tree_scc(edge_file, range(10), memory=MemoryBudget(8 * 10 + 64))
        assert len(set(labels.values())) == 1


class TestLabelFile:
    def test_run_to_file_sorted_by_node(self, device, memory):
        edges = [(0, 1), (1, 0), (2, 3)]
        edge_file = EdgeFile.from_edges(device, "e", edges)
        out = run_semi_scc_to_file(spanning_tree_scc, edge_file, range(4), memory)
        records = list(out.scan())
        assert [r[0] for r in records] == [0, 1, 2, 3]
        assert records[0][1] == records[1][1]
        assert records[2][1] != records[3][1]
