"""Property-based K-invariance: worker count changes *nothing observable*.

The sharded runtime's contract is that parallelism is task-level only —
shards produce the same records and the same charges as the serial
operators they replace.  Hypothesis drives the two paper workload families
(webspam-like and large-scc) through Ext-SCC at K in {1, 2, 4} and pins:

* byte-identical SCC labels at every K;
* an identical total I/O ledger (all four counters) at every K;
* the same invariance across the serial and threads executors;
* checkpoint/resume interoperability: a run crashed at one K resumes at
  another K and still reproduces the uninterrupted labels, because
  :meth:`ExtSCCConfig.fingerprint` deliberately excludes the execution
  knobs (``workers``/``executor``) — how a plan is executed is not part
  of what was computed.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import reference_sccs

from repro.core.config import ExtSCCConfig
from repro.core.ext_scc import ExtSCC
from repro.exceptions import SimulatedCrash
from repro.graph.datasets import build_dataset
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.parallel import StripedDevice
from repro.recovery import CheckpointManager, FaultInjector

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

WORKER_COUNTS = (1, 2, 4)

family_strategy = st.sampled_from(["webspam", "large-scc"])
nodes_strategy = st.integers(min_value=40, max_value=90)
seed_strategy = st.integers(min_value=0, max_value=2**16)


def _workload(family, num_nodes, seed):
    graph = build_dataset(family, num_nodes=num_nodes, seed=seed)
    return list(graph.edges), graph.num_nodes


def _run(edges, num_nodes, workers, executor="serial", striped=False):
    """One Ext-SCC run; returns (output, total-I/O snapshot delta)."""
    if striped:
        device = StripedDevice(block_size=64, channels=workers)
    else:
        device = BlockDevice(block_size=64)
    memory = MemoryBudget(512)
    edge_file = EdgeFile.from_edges(device, "edges", edges)
    node_file = NodeFile.from_ids(
        device, "nodes", range(num_nodes), memory, presorted=True
    )
    config = replace(
        ExtSCCConfig.baseline(pool_readahead=1),
        workers=workers, executor=executor,
    )
    before = device.stats.snapshot()
    out = ExtSCC(config).run(device, edge_file, memory, nodes=node_file)
    return out, device.stats.snapshot() - before


class TestKInvariance:
    @SETTINGS
    @given(family_strategy, nodes_strategy, seed_strategy)
    def test_labels_and_ledger_identical_across_k(self, family, num_nodes, seed):
        edges, n = _workload(family, num_nodes, seed)
        base_out, base_io = _run(edges, n, workers=1)
        assert base_out.result == reference_sccs(edges, n)
        for workers in WORKER_COUNTS[1:]:
            out, io = _run(edges, n, workers=workers)
            assert out.result.labels == base_out.result.labels, workers
            assert io == base_io, workers
            assert out.num_iterations == base_out.num_iterations, workers

    @SETTINGS
    @given(family_strategy, nodes_strategy, seed_strategy)
    def test_threads_executor_matches_serial(self, family, num_nodes, seed):
        edges, n = _workload(family, num_nodes, seed)
        serial_out, serial_io = _run(edges, n, workers=4, executor="serial")
        threads_out, threads_io = _run(edges, n, workers=4, executor="threads")
        assert threads_out.result.labels == serial_out.result.labels
        assert threads_io == serial_io

    @SETTINGS
    @given(family_strategy, nodes_strategy, seed_strategy)
    def test_striping_shrinks_makespan_never_total(self, family, num_nodes, seed):
        edges, n = _workload(family, num_nodes, seed)
        base_out, base_io = _run(edges, n, workers=1, striped=True)
        assert base_out.makespan == base_io.total  # the K=1 identity
        for workers in WORKER_COUNTS[1:]:
            out, io = _run(edges, n, workers=workers, striped=True)
            assert io == base_io, workers
            assert out.makespan <= base_out.makespan, workers
            assert sum(out.channel_io) == io.total, workers


class TestResumeAcrossK:
    """A journal written at one worker count resumes at another."""

    EDGES, NUM_NODES = None, None  # filled lazily (module import stays cheap)

    @classmethod
    def _fixed_workload(cls):
        if cls.EDGES is None:
            graph = build_dataset("large-scc", num_nodes=100, seed=7)
            cls.EDGES, cls.NUM_NODES = list(graph.edges), graph.num_nodes
        return cls.EDGES, cls.NUM_NODES

    def _crash_at_resume_at(self, crash_workers, resume_workers, ordinal):
        edges, n = self._fixed_workload()
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(512)
        edge_file = EdgeFile.from_edges(device, "input-edges", edges)
        node_file = NodeFile.from_ids(
            device, "input-nodes", range(n), memory, presorted=True
        )
        base_config = ExtSCCConfig.baseline(pool_readahead=1)
        FaultInjector(crash_at_io=ordinal).attach(device)
        with pytest.raises(SimulatedCrash):
            ExtSCC(replace(base_config, workers=crash_workers)).run(
                device, edge_file, memory, nodes=node_file,
                checkpoint=CheckpointManager(device),
            )
        device.attach_injector(None)
        edge_file = EdgeFile(ExternalFile.open(device, "input-edges"))
        node_file = NodeFile(ExternalFile.open(device, "input-nodes"))
        out = ExtSCC(replace(base_config, workers=resume_workers)).run(
            device, edge_file, memory, nodes=node_file,
            checkpoint=CheckpointManager(device),
        )
        return out

    @pytest.mark.parametrize("crash_k,resume_k", [(1, 4), (4, 1), (2, 4)])
    def test_resume_at_different_worker_count(self, crash_k, resume_k):
        edges, n = self._fixed_workload()
        baseline, _ = _run(edges, n, workers=1)
        for ordinal in (200, 900):
            out = self._crash_at_resume_at(crash_k, resume_k, ordinal)
            assert out.resumed
            assert out.result == baseline.result, (crash_k, resume_k, ordinal)

    def test_fingerprint_excludes_execution_knobs(self):
        base = ExtSCCConfig.baseline()
        reconfigured = replace(base, workers=8, executor="threads")
        assert reconfigured.fingerprint() == base.fingerprint()
        # ...but real plan changes still invalidate it.
        assert replace(base, codec="fixed").fingerprint() != base.fingerprint()


class TestProcessesExecutor:
    """The ``processes`` backend must be observably identical to
    ``serial``: generic shard thunks run on threads (they close over the
    simulated device), and the pure-CPU kernels it can offload are
    deterministic sorts — so labels and the full ledger match at every K.
    """

    @SETTINGS
    @given(family_strategy, nodes_strategy, seed_strategy)
    def test_processes_executor_matches_serial(self, family, num_nodes, seed):
        edges, n = _workload(family, num_nodes, seed)
        serial_out, serial_io = _run(edges, n, workers=1, executor="serial")
        for workers in WORKER_COUNTS:
            out, io = _run(edges, n, workers=workers, executor="processes")
            assert out.result.labels == serial_out.result.labels, workers
            assert io == serial_io, workers
            assert out.num_iterations == serial_out.num_iterations, workers

    def test_unavailable_platform_falls_back_without_crashing(self):
        from repro.io.parallel import set_processes_available

        edges, n = _workload("webspam", 60, seed=3)
        serial_out, serial_io = _run(edges, n, workers=1)
        previous = set_processes_available(False)
        try:
            out, io = _run(edges, n, workers=4, executor="processes")
        finally:
            set_processes_available(previous)
        assert out.result.labels == serial_out.result.labels
        assert io == serial_io
