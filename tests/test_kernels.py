"""The vectorized kernel layer (`repro.kernels`) and its equivalence
contracts.

Three families of guarantees, each pinned on random inputs:

* **Solver agreement** — ``multi-bfs`` produces canonical labels identical
  to ``forward-backward`` and ``parallel-fw-bw`` (and the Tarjan oracle)
  on random multigraphs.
* **Numpy/scalar equivalence** — with the numpy path on, every semi
  solver produces byte-identical labels *and* a byte-identical I/O ledger
  (same scans, same rounds) as with it off; likewise the sort/merge
  kernels produce identical record sequences, stability included.
* **Flag centralization** — ``repro.kernels`` is the single home of
  ``REPRO_NUMPY``; the codec layer's ``numpy_enabled`` view follows it,
  and the fallback reason distinguishes "off" from "requested but numpy
  missing".

The whole module runs with or without numpy installed: when numpy is
missing the "numpy on" runs exercise the requested-but-unavailable
fallback, which must be byte-identical anyway.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import reference_sccs

from repro import kernels
from repro.core.result import SCCResult
from repro.graph.edge_file import EdgeFile
from repro.io.blocks import BlockDevice
from repro.io.codecs import numpy_enabled, set_numpy_enabled
from repro.io.memory import MemoryBudget
from repro.kernels.merge import _merge_two_keyed_scalar, _merge_two_scalar
from repro.semi_external import SEMI_SCC_SOLVERS
from repro.semi_external.multi_bfs import MAX_SOURCES, multi_bfs_scc, source_budget

N_NODES = 14

edges_strategy = st.lists(
    st.tuples(st.integers(0, N_NODES - 1), st.integers(0, N_NODES - 1)),
    min_size=0,
    max_size=45,
)

records_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=40
)

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        # numpy_toggle restores process state once per test function; the
        # per-example body always sets the flag itself before relying on it.
        HealthCheck.function_scoped_fixture,
    ],
)


def _edge_file(edges, name="E", block_size=64):
    device = BlockDevice(block_size=block_size)
    return EdgeFile.from_edges(device, name, edges)


def _ledger(device):
    stats = device.stats
    return (stats.seq_reads, stats.rand_reads, stats.seq_writes, stats.rand_writes)


@pytest.fixture
def numpy_toggle():
    """Restore the process-wide flag whatever a test does to it."""
    previous = kernels.set_enabled(kernels.requested())
    yield
    kernels.set_enabled(previous)


class TestSolverAgreement:
    @SETTINGS
    @given(edges_strategy)
    def test_multi_bfs_matches_fw_bw_family(self, edges):
        reference = reference_sccs(edges, N_NODES)
        for name in ("multi-bfs", "forward-backward", "parallel-fw-bw"):
            edge_file = _edge_file(edges, name)
            labels = SEMI_SCC_SOLVERS[name](edge_file, range(N_NODES))
            assert SCCResult(labels) == reference, name

    @SETTINGS
    @given(edges_strategy, st.integers(1, MAX_SOURCES))
    def test_multi_bfs_any_source_budget(self, edges, sources):
        """Labels are independent of the source batch size S."""
        edge_file = _edge_file(edges)
        labels = multi_bfs_scc(edge_file, range(N_NODES), max_sources=sources)
        assert SCCResult(labels) == reference_sccs(edges, N_NODES)


class TestNumpyScalarEquivalence:
    @SETTINGS
    @given(edges=edges_strategy)
    def test_solvers_identical_ledgers_and_labels(self, numpy_toggle, edges):
        for name, solver in SEMI_SCC_SOLVERS.items():
            outcomes = {}
            for enabled in (False, True):
                kernels.set_enabled(enabled)
                edge_file = _edge_file(edges, f"E-{name}-{enabled}")
                labels = solver(edge_file, range(N_NODES))
                outcomes[enabled] = (labels, _ledger(edge_file.device))
            assert outcomes[True] == outcomes[False], name

    @SETTINGS
    @given(left=records_strategy, right=records_strategy)
    def test_merge_two_unkeyed_identical(self, numpy_toggle, left, right):
        left.sort()
        right.sort()
        expected = list(_merge_two_scalar(iter(left), iter(right)))
        kernels.set_enabled(True)
        merged = list(kernels.merge_two_unkeyed(iter(left), iter(right)))
        assert merged == expected

    @SETTINGS
    @given(left=records_strategy, right=records_strategy)
    def test_merge_two_keyed_identical(self, numpy_toggle, left, right):
        key = lambda r: r[1]  # noqa: E731 - many ties exercise stability
        left.sort(key=key)
        right.sort(key=key)
        expected = list(_merge_two_keyed_scalar(iter(left), iter(right), key))
        kernels.set_enabled(True)
        merged = list(kernels.merge_two_keyed(iter(left), iter(right), key))
        assert merged == expected

    def test_merge_two_keyed_tie_chunk_boundaries(self, numpy_toggle):
        # Every record shares one key: the whole merge is one tie run
        # spanning several chunk refills, and the left stream must still
        # drain before the right one.
        key = lambda r: r[0]  # noqa: E731
        left = [(0, "l", i) for i in range(2 * kernels.MERGE_CHUNK + 3)]
        right = [(0, "r", i) for i in range(kernels.MERGE_CHUNK + 9)]
        expected = list(_merge_two_keyed_scalar(iter(left), iter(right), key))
        kernels.set_enabled(True)
        assert list(kernels.merge_two_keyed(iter(left), iter(right), key)) == expected

    @SETTINGS
    @given(records=st.lists(st.tuples(st.integers(-50, 50), st.integers(-50, 50))))
    def test_sort_records_identical(self, numpy_toggle, records):
        expected = sorted(records)
        kernels.set_enabled(True)
        assert kernels.sort_records(list(records)) == expected
        assert (
            kernels.sort_records(
                list(records),
                key=lambda r: (r[1], r[0]),
                columns=(1, 0),
            )
            == sorted(records, key=lambda r: (r[1], r[0]))
        )

    def test_merge_chunk_boundaries_and_ties(self, numpy_toggle):
        # Force several refill cycles with heavy cross-stream ties: the
        # boundary-retention rule must reproduce ties-left-first exactly.
        left = sorted((i % 5, i % 3) for i in range(3 * kernels.MERGE_CHUNK))
        right = sorted((i % 5, i % 2) for i in range(2 * kernels.MERGE_CHUNK + 7))
        expected = list(_merge_two_scalar(iter(left), iter(right)))
        kernels.set_enabled(True)
        assert list(kernels.merge_two_unkeyed(iter(left), iter(right))) == expected

    def test_merge_bigint_midstream(self, numpy_toggle):
        # A record beyond int64 appears mid-stream: the chunked merge
        # compares records as Python objects, so nothing is lost or
        # reordered (and no int64 bail-out is needed).
        left = [(i, 0) for i in range(600)] + [(1 << 80, 0)]
        right = [(i, 1) for i in range(500)]
        expected = list(_merge_two_scalar(iter(left), iter(right)))
        kernels.set_enabled(True)
        assert list(kernels.merge_two_unkeyed(iter(left), iter(right))) == expected

    def test_sort_records_bigint_fallback(self, numpy_toggle):
        kernels.set_enabled(True)
        records = [(1 << 90, i) for i in range(2000, 0, -1)]
        assert kernels.sort_records(list(records)) == sorted(records)


class TestSourceBudget:
    def test_unbounded_without_memory(self):
        assert source_budget(1000, None, 64) == MAX_SOURCES

    def test_caps_by_spare_bytes(self):
        n = 100
        base = 8 * n + 64
        # Spare for exactly 2 mask bytes per node per direction -> S = 16.
        memory = MemoryBudget(base + 2 * 2 * n)
        assert source_budget(n, memory, 64) == 16
        # Not even one byte per direction spare: degrade to S = 1.
        assert source_budget(n, MemoryBudget(base + n), 64) == 1
        assert source_budget(n, MemoryBudget(base), 64) == 1

    def test_requested_floor_and_ceiling(self):
        assert source_budget(10, None, 64, requested=0) == 1
        assert source_budget(10, None, 64, requested=1000) == MAX_SOURCES

    def test_tight_budget_still_solves(self):
        edges = [(i, (i + 1) % 9) for i in range(9)] + [(3, 7), (8, 2)]
        edge_file = _edge_file(edges, block_size=64)
        memory = MemoryBudget(8 * N_NODES + 64 + 2 * N_NODES)
        labels = multi_bfs_scc(edge_file, range(N_NODES), memory=memory)
        assert SCCResult(labels) == reference_sccs(edges, N_NODES)


class TestFlagCentralization:
    def test_codecs_view_follows_kernels(self, numpy_toggle):
        kernels.set_enabled(True)
        assert numpy_enabled() == kernels.available()
        kernels.set_enabled(False)
        assert not numpy_enabled()
        # And the reverse direction: the codec setter is the same flag.
        assert set_numpy_enabled(True) is False
        assert kernels.requested()

    def test_fallback_reason_states(self, numpy_toggle):
        kernels.set_enabled(False)
        assert "not requested" in kernels.fallback_reason()
        kernels.set_enabled(True)
        if kernels.available():
            assert kernels.fallback_reason() is None
        else:
            assert "not importable" in kernels.fallback_reason()

    def test_requested_vs_available(self, numpy_toggle):
        kernels.set_enabled(True)
        assert kernels.requested()
        # available() may be False (no numpy); it must never be True
        # without the module actually importable.
        if kernels.available():
            assert kernels.numpy_module() is not None
        else:
            assert kernels.numpy_module() is None
