"""Property-based tests (hypothesis) for the codec layer.

Two families of invariants:

* **Codec laws** — for every codec, ``len(encode(r, prev)) ==
  encoded_size(r, prev)`` (the accounting is honest) and
  ``decode(encode(r, prev), prev) == r`` (roundtrip identity), on sorted
  and unsorted streams alike.
* **Pipeline equivalence** — Ext-SCC under ``codec="gap-varint"`` labels
  random digraphs exactly like ``codec="fixed"`` (compression is purely a
  storage-format change), and never with more block I/Os on the workloads
  where compression matters.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import reference_sccs

from repro.core import ExtSCCConfig, compute_sccs
from repro.io.blocks import BlockDevice
from repro.io.codecs import FixedCodec, GapVarintCodec, VarintCodec
from repro.io.memory import MemoryBudget
from repro.io.sort import external_sort_records

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# FixedCodec packs 4-byte zigzag fields, so stay within its range to share
# one stream strategy across all three codecs.
field = st.integers(min_value=-(1 << 30), max_value=1 << 30)
records_strategy = st.lists(st.tuples(field, field), min_size=0, max_size=60)

N_NODES = 14
edges_strategy = st.lists(
    st.tuples(st.integers(0, N_NODES - 1), st.integers(0, N_NODES - 1)),
    min_size=0,
    max_size=45,
)


def codecs_under_test():
    return [FixedCodec(8), VarintCodec(8), GapVarintCodec(8, gap_field=0),
            GapVarintCodec(8, gap_field=1)]


class TestCodecLaws:
    @given(records=records_strategy)
    @SETTINGS
    def test_size_accounting_matches_encoding(self, records):
        for codec in codecs_under_test():
            prev = None
            for record in records:
                data = codec.encode(record, prev)
                assert len(data) == codec.encoded_size(record, prev)
                prev = record

    @given(records=records_strategy)
    @SETTINGS
    def test_roundtrip_identity_unsorted(self, records):
        for codec in codecs_under_test():
            prev = None
            for record in records:
                data = codec.encode(record, prev)
                decoded, pos = codec.decode(data, 0, 2, prev)
                assert decoded == record
                assert pos == len(data)
                prev = record

    @given(records=records_strategy)
    @SETTINGS
    def test_stream_roundtrip_sorted(self, records):
        records = sorted(records)
        for codec in codecs_under_test():
            blob = bytearray()
            prev = None
            for record in records:
                blob += codec.encode(record, prev)
                prev = record
            assert list(codec.decode_stream(bytes(blob), 2)) == records

    @given(records=st.lists(st.tuples(st.integers(0, 1 << 30),
                                      st.integers(0, 1 << 30)),
                            min_size=0, max_size=60))
    @SETTINGS
    def test_gap_never_beaten_by_plain_varint_on_sorted_streams(self, records):
        # Holds for non-negative sorted streams (what the pipeline writes:
        # graph ids): 0 <= delta <= value, so the gap varint never grows.
        # A negative prev could make the delta exceed the value itself.
        records = sorted(records)
        gap = GapVarintCodec(8, gap_field=0)
        plain = VarintCodec(8)
        prev = None
        gap_total = plain_total = 0
        for record in records:
            gap_total += gap.encoded_size(record, prev)
            plain_total += plain.encoded_size(record, prev)
            prev = record
        assert gap_total <= plain_total


class TestSortEquivalence:
    @given(records=records_strategy)
    @SETTINGS
    def test_compressed_sort_matches_fixed(self, records):
        fixed_dev = BlockDevice(block_size=64)
        comp_dev = BlockDevice(block_size=64)
        memory = MemoryBudget(256)
        out_fixed = external_sort_records(
            fixed_dev, iter(records), 8, memory, codec="fixed"
        )
        out_comp = external_sort_records(
            comp_dev, iter(records), 8, memory, codec="gap-varint"
        )
        assert list(out_comp.scan()) == list(out_fixed.scan())


class TestPipelineEquivalence:
    @given(edges=edges_strategy, optimized=st.booleans())
    @SETTINGS
    def test_gap_varint_finds_same_sccs_as_fixed(self, edges, optimized):
        make = ExtSCCConfig.optimized if optimized else ExtSCCConfig.baseline
        fixed = compute_sccs(edges, num_nodes=N_NODES, memory_bytes=160,
                             block_size=32, config=make(codec="fixed"))
        comp = compute_sccs(edges, num_nodes=N_NODES, memory_bytes=160,
                            block_size=32, config=make(codec="gap-varint"))
        assert comp.result == fixed.result
        assert comp.result == reference_sccs(edges, N_NODES)

    @given(edges=edges_strategy)
    @SETTINGS
    def test_compression_never_costs_io(self, edges):
        fixed = compute_sccs(edges, num_nodes=N_NODES, memory_bytes=160,
                             block_size=32,
                             config=ExtSCCConfig.baseline(codec="fixed"))
        comp = compute_sccs(edges, num_nodes=N_NODES, memory_bytes=160,
                            block_size=32,
                            config=ExtSCCConfig.baseline(codec="gap-varint"))
        assert comp.io.total <= fixed.io.total


class TestBatchScalarEquivalence:
    """The block-granularity codec APIs are *definitionally* the scalar
    methods applied in a loop — hypothesis pins byte-for-byte equality for
    every codec, including the chained ``prev`` and the empty block."""

    @given(records=records_strategy)
    @SETTINGS
    def test_encoded_sizes_match_scalar_chain(self, records):
        for codec in codecs_under_test():
            for prev in (None, records[0] if records else None):
                expected = []
                chain = prev
                for record in records:
                    expected.append(codec.encoded_size(record, chain))
                    chain = record
                assert codec.encoded_sizes(records, prev) == expected, codec

    @given(records=records_strategy)
    @SETTINGS
    def test_encode_block_is_scalar_concatenation(self, records):
        for codec in codecs_under_test():
            blob = bytearray()
            prev = None
            for record in records:
                blob += codec.encode(record, prev)
                prev = record
            assert codec.encode_block(records) == bytes(blob), codec

    @given(records=records_strategy)
    @SETTINGS
    def test_decode_block_roundtrip(self, records):
        for codec in codecs_under_test():
            data = codec.encode_block(records)
            assert codec.decode_block(data, 2) == list(records), codec

    def test_empty_block(self):
        for codec in codecs_under_test():
            assert codec.encode_block([]) == b""
            assert codec.decode_block(b"", 2) == []
            assert codec.encoded_sizes([], None) == []

    @given(records=st.lists(st.tuples(field, field), min_size=1, max_size=40))
    @SETTINGS
    def test_truncated_block_rejected(self, records):
        for codec in codecs_under_test():
            data = codec.encode_block(records)
            with pytest.raises(ValueError):
                codec.decode_block(data[:-1], 2)


class TestBatchFileEquivalence:
    """A ``CompressedRecordFile`` filled through batch ``extend`` lays out
    exactly the blocks a per-record ``append`` loop would — including the
    cut where a record restarts the gap chain at a block boundary."""

    @given(records=records_strategy, block_size=st.sampled_from([32, 64, 128]))
    @SETTINGS
    def test_extend_matches_append(self, records, block_size):
        from repro.io.codecs import CompressedRecordFile, set_batch_enabled

        for codec in codecs_under_test():
            batch_dev = BlockDevice(block_size=block_size)
            batch_file = CompressedRecordFile(batch_dev, "b", 8, codec)
            batch_file.extend(records)
            batch_file.close()

            previous = set_batch_enabled(False)
            try:
                scalar_dev = BlockDevice(block_size=block_size)
                scalar_file = CompressedRecordFile(scalar_dev, "s", 8, codec)
                scalar_file.extend(records)
                scalar_file.close()
            finally:
                set_batch_enabled(previous)

            assert list(batch_file.scan()) == list(scalar_file.scan())
            assert ([list(b) for b in batch_file.scan_blocks()]
                    == [list(b) for b in scalar_file.scan_blocks()])
            assert batch_file.stored_bytes == scalar_file.stored_bytes
            assert batch_dev.stats.snapshot() == scalar_dev.stats.snapshot()
