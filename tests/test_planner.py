"""Tests for the Ext-SCC planner (EXPLAIN)."""

import pytest

from repro.analysis import plan_ext_scc
from repro.constants import SEMI_EXTERNAL_BYTES_PER_NODE


class TestSchedule:
    def test_no_iterations_when_nodes_fit(self):
        plan = plan_ext_scc(100, 400, memory_bytes=8 * 100 + 4096)
        assert plan.num_iterations == 0
        assert plan.feasible
        assert plan.total_ios == plan.semi_scc_ios

    def test_iterations_until_threshold(self):
        plan = plan_ext_scc(10_000, 40_000, memory_bytes=8 * 5000, block_size=512)
        assert plan.num_iterations >= 1
        last = plan.iterations[-1]
        threshold = plan.memory_bytes - plan.block_size
        assert SEMI_EXTERNAL_BYTES_PER_NODE * last.next_num_nodes <= threshold
        assert SEMI_EXTERNAL_BYTES_PER_NODE * last.num_nodes > threshold

    def test_node_counts_follow_retention(self):
        plan = plan_ext_scc(10_000, 40_000, memory_bytes=8 * 5000,
                            block_size=512, node_retention=0.5)
        assert plan.iterations[0].next_num_nodes == 5000

    def test_more_memory_fewer_iterations(self):
        small = plan_ext_scc(10_000, 40_000, memory_bytes=8 * 3000, block_size=512)
        large = plan_ext_scc(10_000, 40_000, memory_bytes=8 * 8000, block_size=512)
        assert large.num_iterations < small.num_iterations
        assert large.total_ios < small.total_ios

    def test_infeasible_when_no_progress(self):
        plan = plan_ext_scc(10_000, 40_000, memory_bytes=8 * 5000,
                            block_size=512, node_retention=1.0)
        assert not plan.feasible
        assert "NOT FEASIBLE" in plan.render()

    def test_max_iterations_marks_infeasible(self):
        plan = plan_ext_scc(10_000_000, 40_000_000, memory_bytes=4096,
                            block_size=512, node_retention=0.999,
                            max_iterations=5)
        assert not plan.feasible


class TestRender:
    def test_render_contains_rows(self):
        plan = plan_ext_scc(10_000, 40_000, memory_bytes=8 * 5000, block_size=512)
        text = plan.render()
        assert "Ext-SCC plan" in text
        assert "TOTAL predicted" in text
        assert str(plan.num_iterations) in text

    def test_paper_scale_is_plausible(self):
        """At the paper's WEBSPAM point (|V|=105.9M, M=400M) the planner
        must land in the paper's measured millions-of-I/Os regime."""
        plan = plan_ext_scc(
            105_900_000, 3_738_733_568 // 8,  # the 1/8 edge sample regime
            memory_bytes=400 * (1 << 20), block_size=256 * 1024,
        )
        assert plan.feasible
        assert 10_000 < plan.total_ios < 100_000_000


class TestAccuracyAgainstRealRuns:
    def test_prediction_within_factor_of_measurement(self):
        """Feed the planner the *measured* retention/growth of a real run
        and require its I/O total to be in range."""
        from repro.core import compute_sccs
        from tests.conftest import random_edges

        edges = random_edges(300, 900, seed=3)
        out = compute_sccs(edges, num_nodes=300, memory_bytes=1200,
                           block_size=64, optimized=False)
        assert out.num_iterations >= 1
        retentions = [r.next_num_nodes / r.num_nodes for r in out.iterations]
        growths = [max(0.01, r.edge_growth) for r in out.iterations]
        plan = plan_ext_scc(
            300, 900, memory_bytes=1200, block_size=64,
            node_retention=sum(retentions) / len(retentions),
            edge_growth=sum(growths) / len(growths),
        )
        assert plan.feasible
        assert plan.total_ios / 4 <= out.io.total <= plan.total_ios * 4
