"""Tests for run formation (the first half of external merge sort)."""

import random

from repro.io.memory import MemoryBudget
from repro.io.runs import form_runs, run_iterator
from repro.io.sort import merge_runs


class TestFormRuns:
    def test_each_run_sorted(self, device):
        rng = random.Random(0)
        records = [(rng.randrange(100), i) for i in range(200)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(256))
        for run in runs:
            contents = list(run.scan())
            assert contents == sorted(contents)

    def test_run_sizes_respect_memory(self, device):
        # M=256 bytes, 8-byte records -> 32 records per run.
        records = [(i, 0) for i in range(100)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(256))
        assert len(runs) == 4  # 32+32+32+4
        assert all(run.num_records <= 32 for run in runs)

    def test_union_of_runs_is_input(self, device):
        records = [(i * 7 % 53, i) for i in range(150)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(256))
        collected = [r for run in runs for r in run.scan()]
        assert sorted(collected) == sorted(records)

    def test_empty_input(self, device):
        assert form_runs(device, iter([]), 8, MemoryBudget(256)) == []

    def test_custom_key(self, device):
        records = [(i, 100 - i) for i in range(50)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(4096),
                         key=lambda r: r[1])
        contents = list(runs[0].scan())
        assert contents == sorted(records, key=lambda r: r[1])

    def test_run_iterator(self, device):
        runs = form_runs(device, iter([(2, 0), (1, 0)]), 8, MemoryBudget(256))
        assert list(run_iterator(runs[0])) == [(1, 0), (2, 0)]


class TestMergeRuns:
    def test_merge_restores_total_order(self, device):
        rng = random.Random(1)
        records = [(rng.randrange(500), i) for i in range(300)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(128))
        assert len(runs) > 2
        merged = list(merge_runs(run.scan() for run in runs))
        assert merged == sorted(records)

    def test_merge_with_key(self, device):
        records = [(i, 50 - i) for i in range(50)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(128),
                         key=lambda r: r[1])
        merged = list(merge_runs((run.scan() for run in runs),
                                 key=lambda r: r[1]))
        assert merged == sorted(records, key=lambda r: r[1])
