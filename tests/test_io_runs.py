"""Tests for run formation (the first half of external merge sort)."""

import random

from repro.io.memory import MemoryBudget
from repro.io.runs import (
    form_runs,
    form_runs_replacement_selection,
    run_iterator,
)
from repro.io.sort import merge_runs


class TestFormRuns:
    def test_each_run_sorted(self, device):
        rng = random.Random(0)
        records = [(rng.randrange(100), i) for i in range(200)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(256))
        for run in runs:
            contents = list(run.scan())
            assert contents == sorted(contents)

    def test_run_sizes_respect_memory(self, device):
        # M=256 bytes, 8-byte records -> 32 records per run.
        records = [(i, 0) for i in range(100)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(256))
        assert len(runs) == 4  # 32+32+32+4
        assert all(run.num_records <= 32 for run in runs)

    def test_union_of_runs_is_input(self, device):
        records = [(i * 7 % 53, i) for i in range(150)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(256))
        collected = [r for run in runs for r in run.scan()]
        assert sorted(collected) == sorted(records)

    def test_empty_input(self, device):
        assert form_runs(device, iter([]), 8, MemoryBudget(256)) == []

    def test_custom_key(self, device):
        records = [(i, 100 - i) for i in range(50)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(4096),
                         key=lambda r: r[1])
        contents = list(runs[0].scan())
        assert contents == sorted(records, key=lambda r: r[1])

    def test_run_iterator(self, device):
        runs = form_runs(device, iter([(2, 0), (1, 0)]), 8, MemoryBudget(256))
        assert list(run_iterator(runs[0])) == [(1, 0), (2, 0)]


class TestReplacementSelection:
    def test_each_run_sorted(self, device):
        rng = random.Random(0)
        records = [(rng.randrange(100), i) for i in range(200)]
        runs = form_runs_replacement_selection(
            device, iter(records), 8, MemoryBudget(256)
        )
        for run in runs:
            contents = list(run.scan())
            assert contents == sorted(contents)

    def test_union_of_runs_is_input(self, device):
        records = [(i * 7 % 53, i) for i in range(150)]
        runs = form_runs_replacement_selection(
            device, iter(records), 8, MemoryBudget(256)
        )
        collected = [r for run in runs for r in run.scan()]
        assert sorted(collected) == sorted(records)

    def test_empty_input(self, device):
        assert form_runs_replacement_selection(
            device, iter([]), 8, MemoryBudget(256)
        ) == []

    def test_fewer_runs_than_classic_on_random_input(self, device):
        """The headline property: expected run length 2M on random input,
        so roughly half as many runs as the classic fill-sort-write pass."""
        rng = random.Random(7)
        records = [(rng.randrange(100_000), i) for i in range(2000)]
        memory = MemoryBudget(256)  # 32 records of 8B
        classic = form_runs(device, iter(records), 8, memory)
        rs = form_runs_replacement_selection(device, iter(records), 8, memory)
        assert len(classic) == 63  # ceil(2000/32)
        # Expect ~32; anything below 0.7x classic shows the effect robustly.
        assert len(rs) < 0.7 * len(classic)

    def test_sorted_input_yields_single_run(self, device):
        """On presorted input every record continues the current run."""
        records = [(i, 0) for i in range(1000)]
        runs = form_runs_replacement_selection(
            device, iter(records), 8, MemoryBudget(256)
        )
        assert len(runs) == 1
        assert list(runs[0].scan()) == records

    def test_reverse_sorted_input_matches_classic(self, device):
        """Worst case: each record starts a new run candidate, collapsing
        run length back to the memory capacity (the classic run length)."""
        records = [(1000 - i, 0) for i in range(1000)]
        memory = MemoryBudget(256)
        classic = form_runs(device, iter(records), 8, memory)
        rs = form_runs_replacement_selection(device, iter(records), 8, memory)
        assert len(rs) == len(classic)

    def test_merge_of_runs_matches_classic_sort_order(self, device):
        """Stability: merging RS runs reproduces, record for record, the
        order the classic strategy's merge produces (equal keys included)."""
        rng = random.Random(3)
        records = [(rng.randrange(20), i % 5) for i in range(500)]
        memory = MemoryBudget(256)
        key = lambda r: r[0]  # noqa: E731 - many equal keys
        classic = form_runs(device, iter(records), 8, memory, key=key)
        rs = form_runs_replacement_selection(
            device, iter(records), 8, memory, key=key
        )
        merged_classic = list(merge_runs((r.scan() for r in classic), key=key))
        merged_rs = list(merge_runs((r.scan() for r in rs), key=key))
        assert merged_rs == merged_classic

    def test_custom_key(self, device):
        records = [(i, 100 - i) for i in range(50)]
        runs = form_runs_replacement_selection(
            device, iter(records), 8, MemoryBudget(4096), key=lambda r: r[1]
        )
        assert len(runs) == 1
        assert list(runs[0].scan()) == sorted(records, key=lambda r: r[1])

    def test_heap_never_exceeds_capacity(self, device, monkeypatch):
        """The heap footprint stays within M / record_size records."""
        import repro.io.runs as runs_mod

        original_push = runs_mod.heapq.heappush
        max_seen = 0

        def tracking_push(heap, item):
            nonlocal max_seen
            original_push(heap, item)
            max_seen = max(max_seen, len(heap))

        monkeypatch.setattr(runs_mod.heapq, "heappush", tracking_push)
        rng = random.Random(11)
        records = [(rng.randrange(1000), i) for i in range(400)]
        form_runs_replacement_selection(device, iter(records), 8, MemoryBudget(256))
        assert max_seen <= 32  # 256 // 8


class TestMergeRuns:
    def test_merge_restores_total_order(self, device):
        rng = random.Random(1)
        records = [(rng.randrange(500), i) for i in range(300)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(128))
        assert len(runs) > 2
        merged = list(merge_runs(run.scan() for run in runs))
        assert merged == sorted(records)

    def test_merge_with_key(self, device):
        records = [(i, 50 - i) for i in range(50)]
        runs = form_runs(device, iter(records), 8, MemoryBudget(128),
                         key=lambda r: r[1])
        merged = list(merge_runs((run.scan() for run in runs),
                                 key=lambda r: r[1]))
        assert merged == sorted(records, key=lambda r: r[1])
