"""Tests for external merge sort."""

import random

import pytest

from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.sort import (
    external_sort,
    external_sort_records,
    external_sort_stream,
    sorted_unique_scan,
)


def _file_of(device, records, record_size=8, name="in"):
    return ExternalFile.from_records(device, name, records, record_size)


class TestSorting:
    def test_sorts_random_records(self, device, memory):
        rng = random.Random(0)
        records = [(rng.randrange(1000), rng.randrange(1000)) for _ in range(500)]
        out = external_sort(_file_of(device, records), memory)
        assert list(out.scan()) == sorted(records)

    def test_sort_with_key(self, device, memory):
        records = [(i, 100 - i) for i in range(100)]
        out = external_sort(_file_of(device, records), memory, key=lambda r: r[1])
        assert list(out.scan()) == sorted(records, key=lambda r: r[1])

    def test_sort_empty(self, device, memory):
        out = external_sort(_file_of(device, []), memory)
        assert list(out.scan()) == []

    def test_sort_single_record(self, device, memory):
        out = external_sort(_file_of(device, [(5, 6)]), memory)
        assert list(out.scan()) == [(5, 6)]

    def test_sort_already_sorted(self, device, memory):
        records = [(i, 0) for i in range(200)]
        out = external_sort(_file_of(device, records), memory)
        assert list(out.scan()) == records

    def test_sort_is_stable_for_equal_tuples(self, device, memory):
        records = [(1, 1)] * 50 + [(0, 0)] * 50
        out = external_sort(_file_of(device, records), memory)
        assert list(out.scan()) == sorted(records)

    def test_unique_drops_duplicates(self, device, memory):
        records = [(i % 10, 0) for i in range(100)]
        out = external_sort(_file_of(device, records), memory, unique=True)
        assert list(out.scan()) == [(i, 0) for i in range(10)]

    def test_out_name_respected(self, device, memory):
        out = external_sort(_file_of(device, [(2, 0), (1, 0)]), memory, out_name="sorted")
        assert out.name == "sorted"
        assert device.exists("sorted")

    def test_delete_input(self, device, memory):
        infile = _file_of(device, [(2, 0), (1, 0)])
        external_sort(infile, memory, delete_input=True)
        assert not device.exists("in")


class TestMultiPass:
    def test_tiny_memory_forces_multiple_passes(self, device):
        # 64-byte blocks; M=128 -> fan-in 2; 2000 records of 8 bytes ->
        # 125 runs merged pairwise over ~7 passes.
        memory = MemoryBudget(128)
        rng = random.Random(1)
        records = [(rng.randrange(10_000), 0) for _ in range(2000)]
        out = external_sort_records(device, iter(records), 8, memory)
        assert list(out.scan()) == sorted(records)

    def test_temp_runs_cleaned_up(self, device, memory):
        records = [(i % 7, i) for i in range(300)]
        before = set(device.list_files())
        out = external_sort_records(device, iter(records), 8, memory, out_name="result")
        after = set(device.list_files())
        assert after - before == {"result"}

    def test_io_cost_scales_with_passes(self, device):
        """More memory => fewer merge passes => fewer I/Os."""
        records = [(i * 37 % 5000, 0) for i in range(3000)]
        small = MemoryBudget(128)
        big = MemoryBudget(4096)
        before = device.stats.total
        external_sort_records(device, iter(records), 8, small)
        small_cost = device.stats.total - before
        before = device.stats.total
        external_sort_records(device, iter(records), 8, big)
        big_cost = device.stats.total - before
        assert big_cost < small_cost

    def test_sort_never_random(self, device, memory):
        records = [(i * 13 % 997, i) for i in range(1500)]
        external_sort_records(device, iter(records), 8, memory)
        assert device.stats.random == 0


class TestSortStream:
    def test_same_records_same_order_as_materialized(self, device, memory):
        rng = random.Random(2)
        records = [(rng.randrange(30), i % 4) for i in range(600)]
        key = lambda r: r[0]  # noqa: E731 - many equal keys exercise stability
        out = external_sort_records(device, iter(records), 8, memory, key=key)
        streamed = list(
            external_sort_stream(device, iter(records), 8, memory, key=key)
        )
        assert streamed == list(out.scan())

    def test_empty_input(self, device, memory):
        assert list(external_sort_stream(device, iter([]), 8, memory)) == []

    def test_unique(self, device, memory):
        records = [(i % 10, 0) for i in range(100)]
        streamed = list(
            external_sort_stream(device, iter(records), 8, memory, unique=True)
        )
        assert streamed == [(i, 0) for i in range(10)]

    def test_run_files_cleaned_up(self, device, memory):
        records = [(i * 31 % 200, i) for i in range(300)]
        before = set(device.list_files())
        for _ in external_sort_stream(device, iter(records), 8, memory):
            pass
        assert set(device.list_files()) == before

    def test_run_files_cleaned_up_on_early_close(self, device, memory):
        records = [(i * 31 % 200, i) for i in range(300)]
        before = set(device.list_files())
        stream = external_sort_stream(device, iter(records), 8, memory)
        next(stream)
        stream.close()
        assert set(device.list_files()) == before

    def test_streaming_saves_a_write_and_read_pass(self, device, memory):
        """The fusion payoff: consuming the final merge in-flight skips the
        output write of the materializing sort and the re-read the consumer
        would have needed."""
        records = [(i * 37 % 997, i) for i in range(1500)]

        before = device.stats.snapshot()
        out = external_sort_records(device, iter(records), 8, memory, codec="fixed")
        consumed_materialized = list(out.scan())
        materialized_cost = (device.stats.snapshot() - before).total
        out.delete()

        before = device.stats.snapshot()
        consumed_streamed = list(
            external_sort_stream(device, iter(records), 8, memory, codec="fixed")
        )
        streamed_cost = (device.stats.snapshot() - before).total

        assert consumed_streamed == consumed_materialized
        nblocks = 1500 * 8 // device.block_size
        # One full write pass + one full read pass saved (fixed-width blocks
        # keep the arithmetic exact; compression shrinks both sides alike).
        assert streamed_cost <= materialized_cost - 2 * nblocks

    def test_stream_never_random(self, device, memory):
        records = [(i * 13 % 997, i) for i in range(1500)]
        list(external_sort_stream(device, iter(records), 8, memory))
        assert device.stats.random == 0


class TestSingleRunShortcut:
    def test_single_run_renames_instead_of_copying(self, device, memory):
        """A one-run sort (input fits in memory) costs only the run write."""
        records = [(i * 7 % 50, i) for i in range(50)]  # 400B <= M=512
        before = device.stats.snapshot()
        out = external_sort_records(
            device, iter(records), 8, memory, out_name="s", codec="fixed"
        )
        delta = (device.stats.snapshot() - before).total
        assert list(out.scan()) == sorted(records)
        assert out.name == "s"
        # 50 records * 8B / 64B blocks = 7 blocks written, nothing re-read.
        assert delta == 7

    def test_single_run_rename_works_compressed(self, device, memory):
        """The rename shortcut applies to compressed runs too."""
        records = [(i * 7 % 50, i) for i in range(50)]
        before = device.stats.snapshot()
        out = external_sort_records(
            device, iter(records), 8, memory, out_name="c", codec="gap-varint"
        )
        delta = (device.stats.snapshot() - before)
        assert list(out.scan()) == sorted(records)
        assert out.name == "c"
        assert delta.seq_reads == 0  # renamed into place, never re-read
        assert delta.total < 7  # compressed run: fewer blocks than fixed

    def test_single_run_sort_counts_no_merge_pass(self, device, memory):
        records = [(i, 0) for i in range(50)]
        external_sort_records(device, iter(records), 8, memory)
        assert device.stats.merge_passes == 0

    def test_multi_run_sort_counts_merge_passes(self, device):
        memory = MemoryBudget(128)  # fan-in 2: forces intermediate passes
        rng = random.Random(4)
        records = [(rng.randrange(10_000), 0) for _ in range(2000)]
        external_sort_records(device, iter(records), 8, memory)
        assert device.stats.merge_passes >= 2
        assert device.stats.runs_formed >= 2


class TestSortedUniqueScan:
    def test_dedupes_neighbors(self):
        assert list(sorted_unique_scan([(1,), (1,), (2,), (3,), (3,)])) == [(1,), (2,), (3,)]

    def test_empty(self):
        assert list(sorted_unique_scan([])) == []
