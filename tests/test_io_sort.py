"""Tests for external merge sort."""

import random

import pytest

from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.sort import external_sort, external_sort_records, sorted_unique_scan


def _file_of(device, records, record_size=8, name="in"):
    return ExternalFile.from_records(device, name, records, record_size)


class TestSorting:
    def test_sorts_random_records(self, device, memory):
        rng = random.Random(0)
        records = [(rng.randrange(1000), rng.randrange(1000)) for _ in range(500)]
        out = external_sort(_file_of(device, records), memory)
        assert list(out.scan()) == sorted(records)

    def test_sort_with_key(self, device, memory):
        records = [(i, 100 - i) for i in range(100)]
        out = external_sort(_file_of(device, records), memory, key=lambda r: r[1])
        assert list(out.scan()) == sorted(records, key=lambda r: r[1])

    def test_sort_empty(self, device, memory):
        out = external_sort(_file_of(device, []), memory)
        assert list(out.scan()) == []

    def test_sort_single_record(self, device, memory):
        out = external_sort(_file_of(device, [(5, 6)]), memory)
        assert list(out.scan()) == [(5, 6)]

    def test_sort_already_sorted(self, device, memory):
        records = [(i, 0) for i in range(200)]
        out = external_sort(_file_of(device, records), memory)
        assert list(out.scan()) == records

    def test_sort_is_stable_for_equal_tuples(self, device, memory):
        records = [(1, 1)] * 50 + [(0, 0)] * 50
        out = external_sort(_file_of(device, records), memory)
        assert list(out.scan()) == sorted(records)

    def test_unique_drops_duplicates(self, device, memory):
        records = [(i % 10, 0) for i in range(100)]
        out = external_sort(_file_of(device, records), memory, unique=True)
        assert list(out.scan()) == [(i, 0) for i in range(10)]

    def test_out_name_respected(self, device, memory):
        out = external_sort(_file_of(device, [(2, 0), (1, 0)]), memory, out_name="sorted")
        assert out.name == "sorted"
        assert device.exists("sorted")

    def test_delete_input(self, device, memory):
        infile = _file_of(device, [(2, 0), (1, 0)])
        external_sort(infile, memory, delete_input=True)
        assert not device.exists("in")


class TestMultiPass:
    def test_tiny_memory_forces_multiple_passes(self, device):
        # 64-byte blocks; M=128 -> fan-in 2; 2000 records of 8 bytes ->
        # 125 runs merged pairwise over ~7 passes.
        memory = MemoryBudget(128)
        rng = random.Random(1)
        records = [(rng.randrange(10_000), 0) for _ in range(2000)]
        out = external_sort_records(device, iter(records), 8, memory)
        assert list(out.scan()) == sorted(records)

    def test_temp_runs_cleaned_up(self, device, memory):
        records = [(i % 7, i) for i in range(300)]
        before = set(device.list_files())
        out = external_sort_records(device, iter(records), 8, memory, out_name="result")
        after = set(device.list_files())
        assert after - before == {"result"}

    def test_io_cost_scales_with_passes(self, device):
        """More memory => fewer merge passes => fewer I/Os."""
        records = [(i * 37 % 5000, 0) for i in range(3000)]
        small = MemoryBudget(128)
        big = MemoryBudget(4096)
        before = device.stats.total
        external_sort_records(device, iter(records), 8, small)
        small_cost = device.stats.total - before
        before = device.stats.total
        external_sort_records(device, iter(records), 8, big)
        big_cost = device.stats.total - before
        assert big_cost < small_cost

    def test_sort_never_random(self, device, memory):
        records = [(i * 13 % 997, i) for i in range(1500)]
        external_sort_records(device, iter(records), 8, memory)
        assert device.stats.random == 0


class TestSortedUniqueScan:
    def test_dedupes_neighbors(self):
        assert list(sorted_unique_scan([(1,), (1,), (2,), (3,), (3,)])) == [(1,), (2,), (3,)]

    def test_empty(self):
        assert list(sorted_unique_scan([])) == []
