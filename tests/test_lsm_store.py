"""Tests for the LSM-style message store and its use inside DFS-SCC."""

import random

import pytest

from tests.conftest import random_edges, reference_sccs

from repro.baselines.lsm_store import LSMMessageStore
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget


class TestBasics:
    def test_insert_extract(self, device):
        store = LSMMessageStore(device, key_space=100)
        store.insert(5, 42)
        assert store.extract_all(5) == [42]
        assert store.extract_all(5) == []

    def test_multiple_values(self, device):
        store = LSMMessageStore(device, key_space=100)
        for value in (3, 1, 2):
            store.insert(9, value)
        assert sorted(store.extract_all(9)) == [1, 2, 3]

    def test_key_isolation(self, device):
        store = LSMMessageStore(device, key_space=100)
        store.insert(1, 10)
        store.insert(2, 20)
        assert store.extract_all(2) == [20]
        assert store.extract_all(1) == [10]

    def test_key_out_of_range(self, device):
        store = LSMMessageStore(device, key_space=10)
        with pytest.raises(ValueError):
            store.insert(10, 0)

    def test_extract_missing(self, device):
        store = LSMMessageStore(device, key_space=10)
        assert store.extract_all(3) == []


class TestRunsAndCompaction:
    def test_memtable_flush_creates_runs(self, device):
        store = LSMMessageStore(device, key_space=1000, memtable_entries=8)
        for i in range(40):
            store.insert(i % 50, i)
        assert store.num_runs > 0

    def test_compaction_bounds_run_count(self, device):
        store = LSMMessageStore(device, key_space=1000, memtable_entries=4,
                                max_runs=3)
        for i in range(200):
            store.insert(i % 37, i)
        assert store.num_runs <= 3 + 1

    def test_extract_spans_memtable_and_runs(self, device):
        store = LSMMessageStore(device, key_space=1000, memtable_entries=4)
        for i in range(10):
            store.insert(7, i)  # forces flushes between inserts
        assert sorted(store.extract_all(7)) == list(range(10))

    def test_extract_uses_random_io(self, device):
        store = LSMMessageStore(device, key_space=1000, memtable_entries=4)
        for i in range(60):
            store.insert(i % 29, i)
        before = device.stats.snapshot()
        store.extract_all(13)
        assert (device.stats.snapshot() - before).random > 0

    def test_drop_removes_files(self, device):
        store = LSMMessageStore(device, key_space=1000, memtable_entries=4,
                                name="mylsm")
        for i in range(50):
            store.insert(i % 11, i)
        store.drop()
        assert not any(n.startswith("mylsm") for n in device.list_files())

    def test_randomized_against_dict(self, device):
        store = LSMMessageStore(device, key_space=64, memtable_entries=6,
                                max_runs=3)
        rng = random.Random(9)
        oracle = {}
        for step in range(800):
            if rng.random() < 0.7:
                key = rng.randrange(64)
                oracle.setdefault(key, []).append(step)
                store.insert(key, step)
            else:
                key = rng.randrange(64)
                assert sorted(store.extract_all(key)) == sorted(oracle.pop(key, []))
        for key in list(oracle):
            assert sorted(store.extract_all(key)) == sorted(oracle.pop(key))


class TestInsideDFSSCC:
    @pytest.mark.parametrize("seed", range(4))
    def test_lsm_backed_dfs_scc_correct(self, seed):
        from repro.baselines import dfs_scc

        edges = random_edges(40, 100, seed)
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(512)
        ef = EdgeFile.from_edges(device, "E", edges)
        nf = NodeFile.from_ids(device, "V", range(40), memory, presorted=True)
        out = dfs_scc(device, ef, nf, memory, message_store="lsm")
        assert out.result == reference_sccs(edges, 40)

    def test_unknown_store_rejected(self):
        from repro.baselines import dfs_scc

        device = BlockDevice(block_size=64)
        memory = MemoryBudget(512)
        ef = EdgeFile.from_edges(device, "E", [(0, 1)])
        nf = NodeFile.from_ids(device, "V", range(2), memory, presorted=True)
        with pytest.raises(ValueError):
            dfs_scc(device, ef, nf, memory, message_store="btree")
