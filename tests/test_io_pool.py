"""Tests for the shared buffer pool: readahead, coalescing, LRU caching.

The load-bearing property is *counter neutrality*: with the cache off,
attaching a pool must leave every :class:`~repro.io.stats.IOStats` counter
of a workload identical to the unpooled run — readahead batches requests
and coalescing batches submissions, but each block is still charged exactly
once with the access pattern the caller declared.
"""

import random

import pytest

from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.pool import SharedBufferPool
from repro.io.sort import external_sort_records


def _mixed_workload(device: BlockDevice) -> None:
    """A deterministic trace with sequential writes, scans, a sort, and
    random seeks — every I/O pattern the ledger distinguishes."""
    rng = random.Random(5)
    records = [(rng.randrange(500), i) for i in range(400)]
    ef = ExternalFile.from_records(device, "trace", records, 8)
    list(ef.scan())
    for index in (7, 3, 11, 3):
        ef.read_block_random(index % ef.num_blocks)
    out = external_sort_records(device, ef.scan(), 8, MemoryBudget(512))
    list(out.scan())


class TestCounterNeutrality:
    @pytest.mark.parametrize("readahead,coalesce", [(2, 1), (8, 1), (1, 4), (8, 4)])
    def test_trace_matches_unpooled_run(self, readahead, coalesce):
        """The acceptance trace: pooled and unpooled ledgers agree counter
        for counter — readahead never misclassifies sequential vs random."""
        plain = BlockDevice(block_size=64)
        _mixed_workload(plain)

        pooled_device = BlockDevice(block_size=64)
        SharedBufferPool(
            pooled_device, readahead=readahead, coalesce_writes=coalesce
        )
        _mixed_workload(pooled_device)

        assert pooled_device.stats.seq_reads == plain.stats.seq_reads
        assert pooled_device.stats.seq_writes == plain.stats.seq_writes
        assert pooled_device.stats.rand_reads == plain.stats.rand_reads
        assert pooled_device.stats.rand_writes == plain.stats.rand_writes

    def test_readahead_batches_counted(self):
        device = BlockDevice(block_size=64)
        pool = SharedBufferPool(device, readahead=4)
        ef = ExternalFile.from_records(device, "f", [(i, 0) for i in range(100)], 8)
        list(ef.scan())  # 13 blocks -> 4 batches of <=4
        assert pool.readahead_batches == 4

    def test_coalesced_flushes_counted(self):
        device = BlockDevice(block_size=64)
        pool = SharedBufferPool(device, readahead=1, coalesce_writes=4)
        ExternalFile.from_records(device, "f", [(i, 0) for i in range(100)], 8)
        assert pool.coalesced_flushes >= 1

    def test_scan_results_unchanged(self):
        device = BlockDevice(block_size=64)
        SharedBufferPool(device, readahead=4, coalesce_writes=2)
        records = [(i * 3 % 97, i) for i in range(150)]
        ef = ExternalFile.from_records(device, "f", records, 8)
        assert list(ef.scan()) == records


class TestLRUCache:
    def test_repeated_random_reads_hit_cache(self):
        device = BlockDevice(block_size=64)
        pool = SharedBufferPool(device, readahead=1, cache_blocks=4)
        ef = ExternalFile.from_records(device, "f", [(i, 0) for i in range(64)], 8)
        before = device.stats.rand_reads
        ef.read_block_random(2)
        ef.read_block_random(2)
        ef.read_block_random(2)
        assert device.stats.rand_reads - before == 1  # one miss, two hits
        assert pool.hits == 2
        assert pool.misses == 1
        assert pool.hit_rate == pytest.approx(2 / 3)

    def test_eviction_is_lru(self):
        device = BlockDevice(block_size=64)
        pool = SharedBufferPool(device, readahead=1, cache_blocks=2)
        ef = ExternalFile.from_records(device, "f", [(i, 0) for i in range(64)], 8)
        ef.read_block_random(0)
        ef.read_block_random(1)
        ef.read_block_random(0)  # refresh block 0 -> block 1 is now LRU
        ef.read_block_random(2)  # evicts block 1
        before = device.stats.rand_reads
        ef.read_block_random(0)  # still cached
        assert device.stats.rand_reads == before
        ef.read_block_random(1)  # evicted: charged again
        assert device.stats.rand_reads == before + 1

    def test_overwrite_invalidates_block(self):
        device = BlockDevice(block_size=64)
        SharedBufferPool(device, readahead=1, cache_blocks=4)
        ef = ExternalFile.from_records(device, "f", [(i, 0) for i in range(16)], 8)
        ef.read_block_random(0)
        device.overwrite_block(ef._file, 0, [(99, 0)] * 8)
        block = ef.read_block_random(0)  # must not serve the stale copy
        assert block[0] == (99, 0)

    def test_delete_invalidates_file(self):
        device = BlockDevice(block_size=64)
        pool = SharedBufferPool(device, readahead=1, cache_blocks=4)
        ef = ExternalFile.from_records(device, "f", [(i, 0) for i in range(16)], 8)
        ef.read_block_random(0)
        ef.delete()
        assert not pool._cache

    def test_hit_rate_zero_when_idle(self):
        device = BlockDevice(block_size=64)
        pool = SharedBufferPool(device, cache_blocks=4)
        assert pool.hit_rate == 0.0


class TestValidation:
    def test_rejects_bad_readahead(self):
        with pytest.raises(ValueError):
            SharedBufferPool(BlockDevice(block_size=64), readahead=0)

    def test_rejects_bad_coalesce(self):
        with pytest.raises(ValueError):
            SharedBufferPool(BlockDevice(block_size=64), coalesce_writes=0)

    def test_rejects_negative_cache(self):
        with pytest.raises(ValueError):
            SharedBufferPool(BlockDevice(block_size=64), cache_blocks=-1)

    def test_attaches_to_device(self):
        device = BlockDevice(block_size=64)
        pool = SharedBufferPool(device)
        assert device.pool is pool
