"""Tests for the cost-based knob search (:func:`autotune_config`), its
candidate enumeration, and the persistent plan cache.

The two load-bearing properties, hypothesis-driven:

* the optimizer's chosen configuration is never predicted-worse than any
  enumerated static configuration (it *is* the argmin of the priced
  search space), and
* a plan-cache hit reconstructs a decision byte-identical to the cold
  search — same payload, same provenance lines, same rendered table.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.calibration import CalibrationProfile
from repro.analysis.planner import (
    WORKER_OPTIONS,
    PlanCandidate,
    TuningDecision,
    autotune_config,
    enumerate_knobs,
)
from repro.core import ExtSCCConfig, compute_sccs
from repro.graph.generators import cycle_graph
from repro.io.codecs import CODECS
from repro.io.parallel import EXECUTOR_BACKENDS, processes_available
from repro.plan import PlanCache
from repro.semi_external import SEMI_SCC_SOLVERS

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

shape_strategy = st.tuples(
    st.integers(min_value=0, max_value=200_000),     # nodes
    st.integers(min_value=0, max_value=1_000_000),   # edges
    st.sampled_from([16 * 1024, 64 * 1024, 1 << 20]),  # memory
    st.sampled_from([512, 1024, 4096]),              # block size
)


def _calibrated_profile() -> CalibrationProfile:
    """A profile with deliberately skewed constants so the wallclock
    objective diverges from io."""
    profile = CalibrationProfile()
    profile._ingest_measurements(
        codec="gap-varint", executor="serial", workers=1,
        solver="spanning-tree", bytes_by_width={8: (1000, 3000)},
        io_total=1000, wall_seconds=0.1,
    )
    profile._ingest_measurements(
        codec="fixed", executor="threads", workers=4,
        solver="coloring", bytes_by_width={8: (1000, 8000)},
        io_total=1000, wall_seconds=0.02,
    )
    return profile


class TestEnumerateKnobs:
    def test_covers_full_grid(self):
        knobs = set(enumerate_knobs())
        executors = [
            e for e in EXECUTOR_BACKENDS
            if e != "processes" or processes_available()
        ]
        expected = {
            (codec, workers, executor, solver)
            for codec in CODECS
            for solver in SEMI_SCC_SOLVERS
            for executor in executors
            for workers in WORKER_OPTIONS
        }
        assert knobs == expected

    def test_deterministic_order(self):
        assert enumerate_knobs() == enumerate_knobs()

    def test_custom_worker_options(self):
        knobs = enumerate_knobs(workers_options=(1,))
        assert {k[1] for k in knobs} == {1}


class TestChosenIsArgmin:
    @given(shape=shape_strategy, objective=st.sampled_from(["io", "wallclock"]))
    @SETTINGS
    def test_chosen_never_predicted_worse(self, shape, objective):
        nodes, edges, memory, block = shape
        decision = autotune_config(
            nodes, edges, memory, block,
            config=ExtSCCConfig.optimized(),
            profile=_calibrated_profile(),
            objective=objective,
        )
        chosen_price = decision.chosen.price(objective)
        for candidate in decision.candidates:
            assert chosen_price <= candidate.price(objective)

    @given(shape=shape_strategy)
    @SETTINGS
    def test_candidates_cover_enumeration(self, shape):
        nodes, edges, memory, block = shape
        decision = autotune_config(nodes, edges, memory, block)
        labels = {
            (c.codec, c.workers, c.executor, c.solver)
            for c in decision.candidates
        }
        assert labels == set(enumerate_knobs())

    def test_objective_changes_ranking_when_calibrated(self):
        profile = _calibrated_profile()
        io = autotune_config(50_000, 200_000, 64 * 1024, 1024,
                             profile=profile, objective="io")
        wall = autotune_config(50_000, 200_000, 64 * 1024, 1024,
                               profile=profile, objective="wallclock")
        assert io.objective == "io" and wall.objective == "wallclock"
        # The skewed profile makes threads@4 much faster per block, so
        # the wallclock winner runs on threads even though io's does not.
        assert wall.chosen.executor == "threads"
        assert io.chosen.executor == "serial"


class TestCacheByteIdentity:
    @given(shape=shape_strategy, objective=st.sampled_from(["io", "wallclock"]))
    @SETTINGS
    def test_hit_payload_and_render_identical(self, shape, objective):
        nodes, edges, memory, block = shape
        cache = PlanCache()
        kwargs = dict(config=ExtSCCConfig.optimized(),
                      profile=_calibrated_profile(), objective=objective,
                      cache=cache)
        cold = autotune_config(nodes, edges, memory, block, **kwargs)
        warm = autotune_config(nodes, edges, memory, block, **kwargs)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.cache_key == cold.cache_key
        assert warm.to_payload() == cold.to_payload()
        # The header names the source (search vs cache); the candidate
        # table below it must be byte-identical.
        assert warm.render().splitlines()[1:] == cold.render().splitlines()[1:]
        assert warm.rewrite_lines() == cold.rewrite_lines()
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_key_changes_with_shape_and_calibration(self):
        base = PlanCache.make_key(100, 400, 1 << 20, 1024, "fp", "1:a", "io")
        assert PlanCache.make_key(101, 400, 1 << 20, 1024, "fp", "1:a",
                                  "io") != base
        assert PlanCache.make_key(100, 400, 1 << 20, 1024, "fp", "1:b",
                                  "io") != base
        assert PlanCache.make_key(100, 400, 1 << 20, 1024, "fp", "1:a",
                                  "wallclock") != base

    def test_persisted_cache_round_trip(self, tmp_path):
        path = str(tmp_path / "plans.json")
        cache = PlanCache(path)
        cold = autotune_config(5_000, 20_000, 64 * 1024, 1024, cache=cache)
        cache.save()
        reloaded = PlanCache(path)
        warm = autotune_config(5_000, 20_000, 64 * 1024, 1024, cache=reloaded)
        assert warm.cache_hit
        assert warm.to_payload() == cold.to_payload()

    def test_payload_json_round_trip(self):
        decision = autotune_config(5_000, 20_000, 64 * 1024, 1024)
        payload = json.loads(json.dumps(decision.to_payload()))
        rebuilt = TuningDecision.from_payload(payload)
        assert rebuilt.to_payload() == decision.to_payload()


class TestDecisionSurface:
    def test_rewrite_lines_name_chosen_and_runner_up(self):
        decision = autotune_config(5_000, 20_000, 64 * 1024, 1024)
        lines = decision.rewrite_lines()
        assert lines[0].startswith("autotune[io]=")
        assert decision.chosen.label in lines[0]
        assert lines[1].startswith("runner-up:")

    def test_render_marks_chosen_first(self):
        decision = autotune_config(5_000, 20_000, 64 * 1024, 1024)
        table = decision.render()
        first_row = table.splitlines()[2]
        assert first_row.startswith("->")
        assert decision.chosen.codec in first_row

    def test_config_override_preserves_pipeline_flags(self):
        base = ExtSCCConfig.optimized()
        decision = autotune_config(5_000, 20_000, 64 * 1024, 1024,
                                   config=base)
        tuned = decision.config(base)
        assert tuned.trim_type1 == base.trim_type1
        assert tuned.product_operator == base.product_operator
        chosen = decision.chosen
        assert (tuned.codec, tuned.workers, tuned.executor, tuned.semi_scc) \
            == (chosen.codec, chosen.workers, chosen.executor, chosen.solver)


class TestEndToEndIdentity:
    def test_autotuned_labels_match_static_run(self):
        """The chosen config runs exactly as the same static config —
        labels and I/O ledger byte-identical (acceptance criterion)."""
        edges = cycle_graph(300).edges
        cache = PlanCache()
        tuned = compute_sccs(edges, memory_bytes=4 * 1024, block_size=512,
                             autotune=True, plan_cache=cache)
        assert tuned.tuning is not None
        static = compute_sccs(edges, memory_bytes=4 * 1024, block_size=512,
                              config=tuned.config)
        assert tuned.result.labels == static.result.labels
        assert tuned.io.total == static.io.total

    def test_warm_cache_run_has_no_planning_span(self):
        edges = cycle_graph(300).edges
        cache = PlanCache()
        cold = compute_sccs(edges, memory_bytes=4 * 1024, block_size=512,
                            autotune=True, plan_cache=cache)
        warm = compute_sccs(edges, memory_bytes=4 * 1024, block_size=512,
                            autotune=True, plan_cache=cache)
        cold_planning = [s for s in cold.trace.spans if s.phase == "planning"]
        warm_planning = [s for s in warm.trace.spans if s.phase == "planning"]
        assert len(cold_planning) == 1
        assert warm_planning == []
        assert warm.tuning.cache_hit
        assert cache.stats()["hits"] == 1
