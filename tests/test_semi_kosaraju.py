"""Tests for the DFS-based semi-external solver (Section III's route)."""

import pytest

from tests.conftest import random_edges, reference_sccs

from repro.core.result import SCCResult
from repro.exceptions import InsufficientMemory
from repro.graph.edge_file import EdgeFile
from repro.graph.generators import cycle_graph, path_graph, webspam_like
from repro.io.memory import MemoryBudget
from repro.semi_external import semi_kosaraju_scc, spanning_tree_scc


def run(device, edges, num_nodes, memory=None):
    ef = EdgeFile.from_edges(device, device.temp_name("e"), edges)
    return SCCResult(semi_kosaraju_scc(ef, range(num_nodes), memory=memory))


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, device, seed):
        edges = random_edges(45, 110, seed, self_loops=True)
        assert run(device, edges, 45) == reference_sccs(edges, 45)

    def test_cycle(self, device):
        assert run(device, cycle_graph(25).edges, 25).num_sccs == 1

    def test_path(self, device):
        assert run(device, path_graph(25).edges, 25).num_sccs == 25

    def test_isolated(self, device):
        assert run(device, [(0, 1), (1, 0)], 5).num_sccs == 4

    def test_webspam(self, device):
        g = webspam_like(200, avg_degree=4.0, seed=6)
        assert run(device, g.edges, 200) == reference_sccs(g.edges, 200)

    def test_empty(self, device):
        assert run(device, [], 3).num_sccs == 3

    def test_deep_path_iterative(self, device):
        assert run(device, path_graph(5000).edges, 5000).num_sccs == 5000


class TestProfile:
    def test_random_reads_dominate(self, device):
        """The Section III critique: the DFS route seeks per node, unlike
        the scan-only spanning-tree solver."""
        edges = random_edges(60, 150, seed=0)
        ef = EdgeFile.from_edges(device, "e1", edges)
        before = device.stats.snapshot()
        semi_kosaraju_scc(ef, range(60))
        dfs_delta = device.stats.snapshot() - before
        ef2 = EdgeFile.from_edges(device, "e2", edges)
        before = device.stats.snapshot()
        spanning_tree_scc(ef2, range(60))
        tree_delta = device.stats.snapshot() - before
        assert dfs_delta.random > 0
        assert tree_delta.random == 0

    def test_memory_contract(self, device):
        edges = cycle_graph(100).edges
        ef = EdgeFile.from_edges(device, "e", edges)
        with pytest.raises(InsufficientMemory):
            semi_kosaraju_scc(ef, range(100), memory=MemoryBudget(128))

    def test_inside_ext_scc_config(self):
        """Plugging the DFS solver into Ext-SCC still yields correct SCCs."""
        from repro.core import ExtSCCConfig, compute_sccs
        from repro.semi_external import SEMI_SCC_SOLVERS

        SEMI_SCC_SOLVERS.setdefault("semi-kosaraju", semi_kosaraju_scc)
        try:
            edges = random_edges(50, 120, seed=3)
            out = compute_sccs(edges, num_nodes=50, memory_bytes=300,
                               block_size=64,
                               config=ExtSCCConfig(semi_scc="semi-kosaraju"))
            assert out.result == reference_sccs(edges, 50)
        finally:
            SEMI_SCC_SOLVERS.pop("semi-kosaraju", None)
