"""Replays of the paper's worked examples on the Figure 1 graph.

Example 2.1 (the two SCCs), Example 3.1 (five SCCs incl. singletons
a/h/m), Example 5.1 / Figure 4 (the contraction trace invariants), and
Example 6.1 / Figure 5 (expansion re-labels every removed node correctly,
and the bridge node h ends up a singleton).
"""

import pytest

from tests.conftest import reference_sccs

from repro.core import ExtSCC, ExtSCCConfig, compute_sccs
from repro.core.contraction import contract
from repro.graph.datasets import FIGURE1_LABELS, figure1_graph
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget


def label_of(result, letter):
    return result.labels[FIGURE1_LABELS.index(letter)]


@pytest.fixture
def fig1():
    return figure1_graph()


class TestExample21:
    def test_b_strongly_connected_to_e(self, fig1):
        result = reference_sccs(fig1.edges, 13)
        assert label_of(result, "b") == label_of(result, "e")

    def test_scc_memberships(self, fig1):
        result = reference_sccs(fig1.edges, 13)
        scc1 = {label_of(result, c) for c in "bcdefg"}
        scc2 = {label_of(result, c) for c in "ijkl"}
        assert len(scc1) == 1
        assert len(scc2) == 1
        assert scc1 != scc2


class TestExample31:
    def test_five_sccs(self, fig1):
        """{a}, {b..g}, {h}, {i..l}, {m}."""
        result = reference_sccs(fig1.edges, 13)
        assert result.num_sccs == 5
        for singleton in "ahm":
            index = FIGURE1_LABELS.index(singleton)
            assert result.component_of(index) == [index]


class TestFigure4Contraction:
    """The exact trace depends on ids/tie-breaks; the paper's *invariants*
    for the trace are asserted instead: monotone node counts, cover
    property, SCC preservation at every level."""

    def test_contraction_chain(self, fig1):
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(160)  # forces several iterations (fit: 12 nodes)
        config = ExtSCCConfig(remove_self_loops=True, dedupe_parallel_edges=True)
        edges = EdgeFile.from_edges(device, "E", fig1.edges)
        nodes = NodeFile.from_ids(device, "V", range(13), memory, presorted=True)
        reference = reference_sccs(fig1.edges, 13)
        sizes = [13]
        current_e, current_n = edges, nodes
        for level_number in range(1, 5):
            level = contract(device, current_e, current_n, memory, config,
                             level=level_number)
            kept = sorted(level.next_nodes.scan())
            sizes.append(len(kept))
            after = reference_sccs(list(level.next_edges.scan()), 13)
            for i, u in enumerate(kept):
                for v in kept[i + 1:]:
                    assert reference.strongly_connected(u, v) == after.strongly_connected(u, v)
            current_e, current_n = level.next_edges, level.next_nodes
            if len(kept) <= 3:
                break
        assert sizes == sorted(sizes, reverse=True)
        assert len(sizes) >= 3  # the example contracts through several graphs


class TestFigure5Expansion:
    def test_full_pipeline_on_figure1(self, fig1):
        reference = reference_sccs(fig1.edges, 13)
        for optimized in (False, True):
            out = compute_sccs(fig1.edges, num_nodes=13, memory_bytes=160,
                               block_size=64, optimized=optimized)
            assert out.num_iterations >= 1  # contraction really happened
            assert out.result == reference

    def test_h_is_singleton_via_disjoint_neighbor_sccs(self, fig1):
        """Example 6.1: SCC(nbr_in(h)) = {SCC1}, SCC(nbr_out(h)) = {SCC2},
        intersection empty -> h is its own SCC."""
        out = compute_sccs(fig1.edges, num_nodes=13, memory_bytes=160,
                           block_size=64)
        h = FIGURE1_LABELS.index("h")
        assert out.result.component_of(h) == [h]

    def test_scc_sizes_six_and_four(self, fig1):
        """'Finally, there are two SCCs SCC1 and SCC2 with 6 and 4 nodes.'"""
        out = compute_sccs(fig1.edges, num_nodes=13, memory_bytes=160,
                           block_size=64)
        nontrivial = sorted(
            (len(c) for c in out.result.components() if len(c) > 1), reverse=True
        )
        assert nontrivial == [6, 4]
