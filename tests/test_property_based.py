"""Property-based tests (hypothesis) on the core invariants.

Strategy: small random directed multigraphs (with self-loops and parallel
edges) drive every solver and every pipeline stage; the in-memory Tarjan is
the oracle.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import reference_sccs

from repro.core import ExtSCCConfig, compute_sccs
from repro.core.contraction import contract
from repro.core.result import SCCResult
from repro.core.vertex_cover import external_vertex_cover
from repro.graph.digraph import DiGraph
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.io.sort import external_sort_records
from repro.memory_scc import gabow_scc, kosaraju_scc, tarjan_scc
from repro.semi_external import coloring_scc, forward_backward_scc, spanning_tree_scc

N_NODES = 14

edges_strategy = st.lists(
    st.tuples(st.integers(0, N_NODES - 1), st.integers(0, N_NODES - 1)),
    min_size=0,
    max_size=45,
)

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fresh_files(edges):
    device = BlockDevice(block_size=64)
    memory = MemoryBudget(256)
    edge_file = EdgeFile.from_edges(device, "E", edges)
    node_file = NodeFile.from_ids(device, "V", range(N_NODES), memory, presorted=True)
    return device, memory, edge_file, node_file


class TestSolverAgreement:
    @SETTINGS
    @given(edges_strategy)
    def test_in_memory_solvers_agree(self, edges):
        g = DiGraph(edges, nodes=range(N_NODES))
        t = SCCResult(tarjan_scc(g))
        assert SCCResult(kosaraju_scc(g)) == t
        assert SCCResult(gabow_scc(g)) == t

    @SETTINGS
    @given(edges_strategy)
    def test_semi_external_solvers_agree_with_tarjan(self, edges):
        device, _, edge_file, _ = fresh_files(edges)
        reference = reference_sccs(edges, N_NODES)
        for solver in (spanning_tree_scc, forward_backward_scc, coloring_scc):
            assert SCCResult(solver(edge_file, range(N_NODES))) == reference

    @SETTINGS
    @given(edges_strategy, st.booleans())
    def test_ext_scc_agrees_with_tarjan(self, edges, optimized):
        out = compute_sccs(edges, num_nodes=N_NODES, memory_bytes=140,
                           block_size=64, optimized=optimized)
        assert out.result == reference_sccs(edges, N_NODES)

    @SETTINGS
    @given(edges_strategy)
    def test_ext_scc_validating_mode(self, edges):
        """Lemma 6.2's uniqueness assertion must never fire."""
        config = ExtSCCConfig(validate=True)
        out = compute_sccs(edges, num_nodes=N_NODES, memory_bytes=140,
                           block_size=64, config=config)
        assert out.result == reference_sccs(edges, N_NODES)


class TestContractionInvariants:
    @SETTINGS
    @given(edges_strategy, st.booleans())
    def test_lemmas_5_1_and_5_2(self, edges, optimized):
        device, memory, edge_file, node_file = fresh_files(edges)
        config = ExtSCCConfig.optimized() if optimized else ExtSCCConfig.baseline()
        level = contract(device, edge_file, node_file, memory, config, level=1)
        kept = set(level.next_nodes.scan())
        # Contractible.
        assert len(kept) < N_NODES
        # Recoverable (modulo Type-1 dead-end trimming in optimized mode).
        graph = DiGraph(edges, nodes=range(N_NODES))
        for u, v in edges:
            if u == v or u in kept or v in kept:
                continue
            assert config.trim_type1
            assert (
                graph.in_degree(u) == 0 or graph.out_degree(u) == 0
                or graph.in_degree(v) == 0 or graph.out_degree(v) == 0
            )

    @SETTINGS
    @given(edges_strategy, st.booleans())
    def test_lemma_5_3_scc_preservable(self, edges, optimized):
        device, memory, edge_file, node_file = fresh_files(edges)
        config = ExtSCCConfig.optimized() if optimized else ExtSCCConfig.baseline()
        level = contract(device, edge_file, node_file, memory, config, level=1)
        kept = sorted(level.next_nodes.scan())
        before = reference_sccs(edges, N_NODES)
        after = reference_sccs(list(level.next_edges.scan()), N_NODES)
        for i, u in enumerate(kept):
            for v in kept[i + 1:]:
                assert before.strongly_connected(u, v) == after.strongly_connected(u, v)

    @SETTINGS
    @given(edges_strategy)
    def test_theorem_5_3_degree_bound(self, edges):
        # The theorem is stated for simple graphs: self-loops inflate
        # deg(v) without ever forcing v into the cover, so measure the
        # degree over non-self-loop edges.
        simple = [(u, v) for u, v in edges if u != v]
        device, memory, edge_file, node_file = fresh_files(edges)
        level = contract(device, edge_file, node_file, memory,
                         ExtSCCConfig.baseline(), level=1)
        graph = DiGraph(simple, nodes=range(N_NODES))
        bound = math.sqrt(2 * max(1, len(simple)))
        for v in level.removed.scan():
            if graph.has_node(v):
                assert graph.degree(v) <= bound


class TestVertexCoverProperties:
    @SETTINGS
    @given(edges_strategy, st.booleans(), st.booleans())
    def test_cover_property(self, edges, product_operator, type2):
        device, memory, edge_file, _ = fresh_files(edges)
        cover = set(
            external_vertex_cover(
                edge_file, memory,
                product_operator=product_operator, type2_reduction=type2,
            ).scan()
        )
        for u, v in edges:
            if u != v:
                assert u in cover or v in cover


class TestSortProperties:
    records_strategy = st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 500)), max_size=200
    )

    @SETTINGS
    @given(records_strategy)
    def test_external_sort_matches_sorted(self, records):
        device = BlockDevice(block_size=64)
        out = external_sort_records(device, iter(records), 8, MemoryBudget(200))
        assert list(out.scan()) == sorted(records)

    @SETTINGS
    @given(records_strategy)
    def test_external_sort_unique_matches_set(self, records):
        device = BlockDevice(block_size=64)
        out = external_sort_records(
            device, iter(records), 8, MemoryBudget(200), unique=True
        )
        assert list(out.scan()) == sorted(set(records))

    @SETTINGS
    @given(records_strategy)
    def test_sort_only_sequential_io(self, records):
        device = BlockDevice(block_size=64)
        external_sort_records(device, iter(records), 8, MemoryBudget(200))
        assert device.stats.random == 0
