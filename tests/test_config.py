"""Tests for ExtSCCConfig."""

import pytest

from repro.core.config import ExtSCCConfig
from repro.exceptions import ReproError


class TestPresets:
    def test_baseline_all_off(self):
        config = ExtSCCConfig.baseline()
        assert not config.trim_type1
        assert not config.type2_reduction
        assert not config.dedupe_parallel_edges
        assert not config.remove_self_loops
        assert not config.product_operator

    def test_optimized_all_on(self):
        config = ExtSCCConfig.optimized()
        assert config.trim_type1
        assert config.type2_reduction
        assert config.dedupe_parallel_edges
        assert config.remove_self_loops
        assert config.product_operator

    def test_optimized_overrides(self):
        config = ExtSCCConfig.optimized(product_operator=False)
        assert config.trim_type1
        assert not config.product_operator

    def test_frozen(self):
        with pytest.raises(Exception):
            ExtSCCConfig.baseline().trim_type1 = True  # type: ignore[misc]


class TestNames:
    def test_baseline_name(self):
        assert ExtSCCConfig.baseline().name == "Ext-SCC"

    def test_optimized_name(self):
        assert ExtSCCConfig.optimized().name == "Ext-SCC-Op"

    def test_partial_name(self):
        assert ExtSCCConfig(trim_type1=True).name == "Ext-SCC-custom"


class TestValidation:
    def test_unknown_semi_solver_rejected(self):
        from repro.core import ExtSCC

        with pytest.raises(ReproError):
            ExtSCC(ExtSCCConfig(semi_scc="not-a-solver"))

    def test_paper_stop_constant(self):
        assert ExtSCCConfig.baseline().bytes_per_node == 8

    def test_zero_workers_rejected(self):
        with pytest.raises(ReproError):
            ExtSCCConfig(workers=0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ReproError):
            ExtSCCConfig(workers=-4)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ReproError):
            ExtSCCConfig(executor="fibers")

    def test_unknown_objective_rejected(self):
        with pytest.raises(ReproError):
            ExtSCCConfig(objective="latency")

    def test_replace_revalidates(self):
        from dataclasses import replace

        config = ExtSCCConfig.optimized()
        with pytest.raises(ReproError):
            replace(config, workers=0)
        with pytest.raises(ReproError):
            replace(config, executor="gpu")

    def test_valid_knobs_accepted(self):
        config = ExtSCCConfig(workers=4, executor="threads",
                              objective="wallclock", autotune=True)
        assert config.workers == 4
        assert config.autotune

    def test_fingerprint_excludes_tuning_knobs(self):
        from dataclasses import replace

        base = ExtSCCConfig.optimized()
        tuned = replace(base, workers=8, executor="threads",
                        autotune=True, objective="wallclock")
        assert base.fingerprint() == tuned.fingerprint()
