"""Tests for ExtSCCConfig."""

import pytest

from repro.core.config import ExtSCCConfig
from repro.exceptions import ReproError


class TestPresets:
    def test_baseline_all_off(self):
        config = ExtSCCConfig.baseline()
        assert not config.trim_type1
        assert not config.type2_reduction
        assert not config.dedupe_parallel_edges
        assert not config.remove_self_loops
        assert not config.product_operator

    def test_optimized_all_on(self):
        config = ExtSCCConfig.optimized()
        assert config.trim_type1
        assert config.type2_reduction
        assert config.dedupe_parallel_edges
        assert config.remove_self_loops
        assert config.product_operator

    def test_optimized_overrides(self):
        config = ExtSCCConfig.optimized(product_operator=False)
        assert config.trim_type1
        assert not config.product_operator

    def test_frozen(self):
        with pytest.raises(Exception):
            ExtSCCConfig.baseline().trim_type1 = True  # type: ignore[misc]


class TestNames:
    def test_baseline_name(self):
        assert ExtSCCConfig.baseline().name == "Ext-SCC"

    def test_optimized_name(self):
        assert ExtSCCConfig.optimized().name == "Ext-SCC-Op"

    def test_partial_name(self):
        assert ExtSCCConfig(trim_type1=True).name == "Ext-SCC-custom"


class TestValidation:
    def test_unknown_semi_solver_rejected(self):
        from repro.core import ExtSCC

        with pytest.raises(ReproError):
            ExtSCC(ExtSCCConfig(semi_scc="not-a-solver"))

    def test_paper_stop_constant(self):
        assert ExtSCCConfig.baseline().bytes_per_node == 8
