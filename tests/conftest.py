"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.core.result import SCCResult
from repro.graph.digraph import DiGraph
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.memory_scc.tarjan import tarjan_scc

Edge = Tuple[int, int]


@pytest.fixture
def device() -> BlockDevice:
    """A small-block simulated disk (64-byte blocks keep I/O counts visible)."""
    return BlockDevice(block_size=64)


@pytest.fixture
def memory() -> MemoryBudget:
    """A small memory budget valid for the 64-byte-block device."""
    return MemoryBudget(512)


def make_graph_files(
    device: BlockDevice,
    edges: Sequence[Edge],
    num_nodes: int,
    memory: MemoryBudget,
) -> Tuple[EdgeFile, NodeFile]:
    """Write a workload onto a device as (edge file, node file)."""
    edge_file = EdgeFile.from_edges(device, device.temp_name("edges"), edges)
    node_file = NodeFile.from_ids(
        device, device.temp_name("nodes"), range(num_nodes), memory, presorted=True
    )
    return edge_file, node_file


def reference_sccs(edges: Sequence[Edge], num_nodes: int) -> SCCResult:
    """Ground truth from the in-memory Tarjan reference."""
    return SCCResult(tarjan_scc(DiGraph(edges, nodes=range(num_nodes))))


def random_edges(num_nodes: int, num_edges: int, seed: int,
                 self_loops: bool = False) -> List[Edge]:
    """A deterministic random edge list (may contain parallels)."""
    rng = random.Random(seed)
    edges: List[Edge] = []
    while len(edges) < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v and not self_loops:
            continue
        edges.append((u, v))
    return edges
