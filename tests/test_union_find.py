"""Tests for the union-find structure."""

import random

from repro.semi_external.union_find import UnionFind


class TestBasics:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.num_sets == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_connects(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.num_sets == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        rep = uf.union(0, 1)
        assert uf.union(0, 1) == rep
        assert uf.num_sets == 2

    def test_union_returns_representative(self):
        uf = UnionFind(3)
        rep = uf.union(0, 1)
        assert uf.find(0) == rep
        assert uf.find(1) == rep

    def test_transitivity(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 2)
        assert uf.connected(0, 3)
        assert uf.num_sets == 3


class TestStress:
    def test_against_naive_partition(self):
        rng = random.Random(0)
        n = 200
        uf = UnionFind(n)
        naive = {i: {i} for i in range(n)}
        for _ in range(300):
            a, b = rng.randrange(n), rng.randrange(n)
            uf.union(a, b)
            sa = next(s for s in naive.values() if a in s)
            sb = next(s for s in naive.values() if b in s)
            if sa is not sb:
                sa |= sb
                for member in sb:
                    naive[member] = sa
        for i in range(n):
            for j in (0, n // 2, n - 1):
                assert uf.connected(i, j) == (j in naive[i])
        assert uf.num_sets == len({id(s) for s in naive.values()})
