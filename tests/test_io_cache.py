"""Tests for the LRU buffer pool."""

import pytest

from repro.io.cache import BufferPool
from repro.io.files import ExternalFile


def make_file(device, blocks=6):
    # 64-byte blocks, 8-byte records -> 8 records per block.
    records = [(i, i) for i in range(8 * blocks)]
    return ExternalFile.from_records(device, "data", records, 8)


class TestCaching:
    def test_miss_then_hit(self, device):
        pool = BufferPool(make_file(device), capacity_blocks=2)
        before = device.stats.snapshot()
        pool.get_block(0)
        pool.get_block(0)
        delta = device.stats.snapshot() - before
        assert delta.rand_reads == 1
        assert pool.hits == 1
        assert pool.misses == 1

    def test_lru_eviction_order(self, device):
        pool = BufferPool(make_file(device), capacity_blocks=2)
        pool.get_block(0)
        pool.get_block(1)
        pool.get_block(0)  # touch 0 -> 1 becomes LRU
        pool.get_block(2)  # evicts 1
        before = device.stats.snapshot()
        pool.get_block(0)  # still cached
        assert (device.stats.snapshot() - before).total == 0
        pool.get_block(1)  # was evicted -> miss
        assert pool.misses == 4

    def test_eviction_order_tracks_every_touch(self, device):
        """Exact hit/miss trace over an interleaved access sequence: the
        victim is always the least-recently *touched* block, not the least
        recently inserted one."""
        pool = BufferPool(make_file(device), capacity_blocks=3)
        trace = [0, 1, 2, 0, 3, 0, 2, 1, 3, 4, 2]
        # Reference LRU simulated in plain lists, hit-for-hit.
        cached, hits = [], 0
        for index in trace:
            if index in cached:
                hits += 1
                cached.remove(index)
            elif len(cached) == 3:
                cached.pop(0)
            cached.append(index)
        for index in trace:
            pool.get_block(index)
        assert pool.hits == hits
        assert pool.misses == len(trace) - hits
        assert device.stats.rand_reads == len(trace) - hits

    def test_mark_dirty_refreshes_recency(self, device):
        """Marking a block dirty also touches it: the *other* block becomes
        the eviction victim, so the dirty one needs no early write-back."""
        pool = BufferPool(make_file(device), capacity_blocks=2)
        pool.get_block(0)[0] = (77, 77)
        pool.get_block(1)
        pool.mark_dirty(0)   # 0 becomes most-recent -> 1 is the victim
        pool.get_block(2)    # evicts clean 1: no write-back
        assert device.stats.rand_writes == 0
        before = device.stats.snapshot()
        assert pool.get_block(0)[0] == (77, 77)  # dirty block still cached
        assert (device.stats.snapshot() - before).total == 0

    def test_capacity_must_be_positive(self, device):
        with pytest.raises(ValueError):
            BufferPool(make_file(device), capacity_blocks=0)

    def test_hit_rate(self, device):
        pool = BufferPool(make_file(device), capacity_blocks=4)
        for _ in range(3):
            pool.get_block(1)
        assert pool.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self, device):
        pool = BufferPool(make_file(device), capacity_blocks=1)
        assert pool.hit_rate == 0.0


class TestDirtyWriteBack:
    def test_clean_eviction_writes_nothing(self, device):
        pool = BufferPool(make_file(device), capacity_blocks=1)
        pool.get_block(0)
        before = device.stats.snapshot()
        pool.get_block(1)  # evicts clean block 0
        assert (device.stats.snapshot() - before).rand_writes == 0

    def test_dirty_eviction_writes_back(self, device):
        f = make_file(device)
        pool = BufferPool(f, capacity_blocks=1)
        block = pool.get_block(0)
        block[0] = (99, 99)
        pool.mark_dirty(0)
        pool.get_block(1)  # evicts dirty block 0 -> random write
        assert device.stats.rand_writes == 1
        assert f.read_block_random(0)[0] == (99, 99)

    def test_flush_persists_and_keeps_cache(self, device):
        f = make_file(device)
        pool = BufferPool(f, capacity_blocks=2)
        block = pool.get_block(1)
        block[2] = (7, 7)
        pool.mark_dirty(1)
        pool.flush()
        assert f.read_block_random(1)[2] == (7, 7)
        before = device.stats.snapshot()
        pool.get_block(1)  # still cached after flush
        assert (device.stats.snapshot() - before).total == 0

    def test_flush_twice_writes_once(self, device):
        pool = BufferPool(make_file(device), capacity_blocks=2)
        pool.get_block(0)[0] = (5, 5)
        pool.mark_dirty(0)
        pool.flush()
        before = device.stats.snapshot()
        pool.flush()
        assert (device.stats.snapshot() - before).total == 0

    def test_drop_discards_dirty_state(self, device):
        f = make_file(device)
        pool = BufferPool(f, capacity_blocks=2)
        pool.get_block(0)[0] = (42, 42)
        pool.mark_dirty(0)
        pool.drop()
        assert f.read_block_random(0)[0] == (0, 0)


class TestLabelCache:
    def make(self, capacity=4):
        from repro.io.cache import LabelCache

        return LabelCache(capacity)

    def test_miss_sentinel_distinguishes_cached_none(self):
        from repro.io.cache import LabelCache

        cache = self.make()
        assert cache.get(1) is LabelCache.MISSING
        cache.put(1, None)  # negative result: node unknown to the store
        assert cache.get(1) is None

    def test_put_get_roundtrip(self):
        cache = self.make()
        cache.put(1, (1, 5))
        assert cache.get(1) == (1, 5)

    def test_lru_eviction_order(self):
        from repro.io.cache import LabelCache

        cache = self.make(capacity=2)
        cache.put(1, "a")
        cache.put(2, "b")
        cache.get(1)        # 1 becomes most-recent
        cache.put(3, "c")   # evicts 2
        assert cache.get(2) is LabelCache.MISSING
        assert cache.get(1) == "a"
        assert cache.get(3) == "c"

    def test_zero_capacity_disables(self):
        from repro.io.cache import LabelCache

        cache = self.make(capacity=0)
        cache.put(1, "a")
        assert cache.get(1) is LabelCache.MISSING

    def test_hit_rate_zero_lookup_safe(self):
        cache = self.make()
        assert cache.hit_rate == 0.0  # no division by zero
        assert cache.lookups == 0

    def test_hit_rate_counts(self):
        cache = self.make()
        cache.get(1)          # miss
        cache.put(1, "a")
        cache.get(1)          # hit
        cache.get(1)          # hit
        assert cache.lookups == 3
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_clear_keeps_counters(self):
        from repro.io.cache import LabelCache

        cache = self.make()
        cache.put(1, "a")
        cache.get(1)
        cache.clear()
        assert cache.get(1) is LabelCache.MISSING
        assert cache.lookups == 2  # counters survive the flush

    def test_update_moves_to_front(self):
        from repro.io.cache import LabelCache

        cache = self.make(capacity=2)
        cache.put(1, "a")
        cache.put(2, "b")
        cache.put(1, "a2")   # refresh 1
        cache.put(3, "c")    # evicts 2, not 1
        assert cache.get(1) == "a2"
        assert cache.get(2) is LabelCache.MISSING


class TestBufferPoolHitRateZeroSafety:
    def test_zero_access_rate(self, device):
        pool = BufferPool(make_file(device), capacity_blocks=2)
        assert pool.hit_rate == 0.0
