"""Tests for the real-filesystem interchange formats."""

import pytest

from repro.graph.edge_file import EdgeFile
from repro.graph.io_formats import (
    dump_edge_file,
    load_edge_file,
    read_edge_binary,
    read_edge_text,
    write_edge_binary,
    write_edge_text,
)

EDGES = [(0, 1), (1, 2), (42, 7)]


class TestText:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "g.txt"
        assert write_edge_text(path, EDGES) == 3
        assert list(read_edge_text(path)) == EDGES

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# mid\n2 3\n")
        assert list(read_edge_text(path)) == [(0, 1), (2, 3)]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError):
            list(read_edge_text(path))


class TestBinary:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "g.bin"
        assert write_edge_binary(path, EDGES) == 3
        assert list(read_edge_binary(path)) == EDGES

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        write_edge_binary(path, EDGES)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(ValueError):
            list(read_edge_binary(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.bin"
        write_edge_binary(path, [])
        assert list(read_edge_binary(path)) == []


class TestDeviceBridge:
    @pytest.mark.parametrize("binary", [False, True])
    def test_load_dump_roundtrip(self, tmp_path, device, binary):
        src = tmp_path / "in"
        write_edge_binary(src, EDGES) if binary else write_edge_text(src, EDGES)
        ef = load_edge_file(device, src, binary=binary)
        assert list(ef.scan()) == EDGES
        dst = tmp_path / "out"
        assert dump_edge_file(ef, dst, binary=binary) == 3
        reader = read_edge_binary if binary else read_edge_text
        assert list(reader(dst)) == EDGES

    def test_load_charges_sequential_writes(self, tmp_path, device):
        src = tmp_path / "in.txt"
        write_edge_text(src, [(i, i + 1) for i in range(100)])
        load_edge_file(device, src)
        assert device.stats.seq_writes > 0
        assert device.stats.random == 0
