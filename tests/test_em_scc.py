"""Tests for the EM-SCC baseline ([13]): convergence and non-termination."""

import random

import pytest

from tests.conftest import random_edges, reference_sccs

from repro.baselines import em_scc
from repro.exceptions import NonTermination
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.graph.generators import cycle_graph, planted_scc_graph, random_dag
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget


def run_em(edges, num_nodes, memory_bytes, block_size=64):
    device = BlockDevice(block_size=block_size)
    memory = MemoryBudget(memory_bytes)
    edge_file = EdgeFile.from_edges(device, "E", edges)
    node_file = NodeFile.from_ids(device, "V", range(num_nodes), memory, presorted=True)
    return em_scc(device, edge_file, node_file, memory), device


class TestConvergentCases:
    def test_graph_already_fits(self):
        edges = random_edges(20, 50, seed=0)
        out, _ = run_em(edges, 20, memory_bytes=50_000)
        assert out.result == reference_sccs(edges, 20)
        assert out.iterations == 0

    def test_contiguous_planted_sccs_contract(self):
        g = planted_scc_graph(120, 3.0, [20] * 4, seed=0, strict=True)
        out, _ = run_em(g.edges, 120, memory_bytes=8000, block_size=128)
        assert out.result == reference_sccs(g.edges, 120)
        assert out.iterations >= 1
        assert out.contractions > 0

    def test_labels_cover_all_nodes(self):
        g = planted_scc_graph(100, 2.5, [25, 15], seed=2, strict=True)
        out, _ = run_em(g.edges, 100, memory_bytes=8000, block_size=128)
        assert sorted(out.result.labels) == list(range(100))

    def test_isolated_nodes_labelled(self):
        out, _ = run_em([(0, 1), (1, 0)], 6, memory_bytes=50_000)
        assert out.result.num_sccs == 5


class TestNonTermination:
    def test_case1_scc_across_partitions(self):
        """A big cycle in shuffled storage order: no chunk sees a cycle."""
        edges = list(cycle_graph(300).edges)
        random.Random(0).shuffle(edges)
        with pytest.raises(NonTermination):
            run_em(edges, 300, memory_bytes=1000)

    def test_case2_dag_never_contracts(self):
        g = random_dag(300, 700, seed=1)
        with pytest.raises(NonTermination):
            run_em(g.edges, 300, memory_bytes=1000)

    def test_iteration_cap(self):
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(1000)
        g = planted_scc_graph(400, 2.0, [3] * 80, seed=3, strict=True)
        edge_file = EdgeFile.from_edges(device, "E", g.edges)
        node_file = NodeFile.from_ids(device, "V", range(400), memory, presorted=True)
        with pytest.raises(NonTermination):
            em_scc(device, edge_file, node_file, memory, max_iterations=0)


class TestStopCondition:
    def test_requires_whole_graph_to_fit(self):
        """EM-SCC's stop condition is stricter than Ext-SCC's: with memory
        for all nodes but not all edges, EM-SCC keeps iterating (or fails)
        while Ext-SCC finishes immediately — the paper's Section IV point."""
        from repro.core import compute_sccs

        edges = list(cycle_graph(100).edges)
        random.Random(1).shuffle(edges)
        memory_bytes = 8 * 100 + 64  # nodes fit; the edge file does not
        ext = compute_sccs(edges, num_nodes=100, memory_bytes=memory_bytes,
                           block_size=64)
        assert ext.num_iterations == 0
        assert ext.result.num_sccs == 1
        with pytest.raises(NonTermination):
            run_em(edges, 100, memory_bytes=memory_bytes)
