"""Tests for the in-memory reference SCC algorithms and the condensation."""

import pytest

from tests.conftest import random_edges

from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, path_graph, random_dag
from repro.memory_scc import (
    condensation,
    dfs_postorder,
    dfs_preorder,
    gabow_scc,
    is_dag,
    kosaraju_scc,
    reachable_from,
    tarjan_scc,
    topological_order,
)

ALGORITHMS = [tarjan_scc, kosaraju_scc, gabow_scc]


@pytest.fixture(params=ALGORITHMS, ids=lambda f: f.__name__)
def scc_algorithm(request):
    return request.param


class TestKnownGraphs:
    def test_single_cycle(self, scc_algorithm):
        g = DiGraph(cycle_graph(10).edges)
        labels = scc_algorithm(g)
        assert set(labels.values()) == {0}

    def test_path_all_singletons(self, scc_algorithm):
        g = DiGraph(path_graph(10).edges)
        labels = scc_algorithm(g)
        assert labels == {i: i for i in range(10)}

    def test_two_cycles_with_bridge(self, scc_algorithm):
        edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
        labels = scc_algorithm(DiGraph(edges))
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_self_loop_is_singleton(self, scc_algorithm):
        labels = scc_algorithm(DiGraph([(0, 0), (0, 1)]))
        assert labels[0] != labels[1]

    def test_isolated_node(self, scc_algorithm):
        g = DiGraph([(0, 1)], nodes=[7])
        labels = scc_algorithm(g)
        assert labels[7] == 7

    def test_empty_graph(self, scc_algorithm):
        assert scc_algorithm(DiGraph()) == {}

    def test_canonical_labels_are_min_members(self, scc_algorithm):
        edges = [(5, 3), (3, 5), (3, 1)]
        labels = scc_algorithm(DiGraph(edges))
        assert labels[5] == 3
        assert labels[3] == 3
        assert labels[1] == 1


class TestAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_three_algorithms_agree(self, seed):
        edges = random_edges(50, 120, seed)
        g = DiGraph(edges, nodes=range(50))
        t = tarjan_scc(g)
        assert kosaraju_scc(g) == t
        assert gabow_scc(g) == t

    def test_deep_path_no_recursion_error(self, scc_algorithm):
        """Iterative implementations must survive 50k-deep graphs."""
        g = DiGraph(path_graph(50_000).edges)
        labels = scc_algorithm(g)
        assert len(set(labels.values())) == 50_000


class TestCondensation:
    def test_condensation_is_dag(self):
        edges = random_edges(40, 120, seed=3)
        g = DiGraph(edges, nodes=range(40))
        labels = tarjan_scc(g)
        dag = condensation(g, labels)
        assert is_dag(dag)

    def test_condensation_nodes_are_representatives(self):
        edges = [(0, 1), (1, 0), (1, 2)]
        g = DiGraph(edges)
        dag = condensation(g, tarjan_scc(g))
        assert set(dag.nodes()) == {0, 2}
        assert dag.has_edge(0, 2)

    def test_no_self_loops_in_condensation(self):
        edges = [(0, 1), (1, 0)]
        g = DiGraph(edges)
        dag = condensation(g, tarjan_scc(g))
        assert dag.num_edges == 0


class TestTopologicalOrder:
    def test_respects_edges(self):
        dag = DiGraph(random_dag(30, 60, seed=2).edges, nodes=range(30))
        order = topological_order(dag)
        position = {v: i for i, v in enumerate(order)}
        for u, v in dag.edges():
            assert position[u] < position[v]

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            topological_order(DiGraph([(0, 1), (1, 0)]))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            topological_order(DiGraph([(0, 0)]))

    def test_is_dag(self):
        assert is_dag(DiGraph([(0, 1), (1, 2)]))
        assert not is_dag(DiGraph([(0, 1), (1, 0)]))


class TestDFS:
    def test_postorder_parent_after_child(self):
        g = DiGraph([(0, 1), (1, 2)])
        order = dfs_postorder(g)
        assert order.index(0) > order.index(1) > order.index(2)

    def test_postorder_covers_all_nodes(self):
        edges = random_edges(30, 60, seed=1)
        g = DiGraph(edges, nodes=range(30))
        assert sorted(dfs_postorder(g)) == list(range(30))

    def test_preorder_root_first(self):
        g = DiGraph([(0, 1), (1, 2)])
        assert dfs_preorder(g, 0)[0] == 0

    def test_reachable_from(self):
        g = DiGraph([(0, 1), (1, 2), (3, 0)])
        assert reachable_from(g, 0) == {0, 1, 2}
        assert reachable_from(g, 3) == {0, 1, 2, 3}
