"""Tests for the buffered repository tree."""

import random

import pytest

from repro.baselines.brt import BufferedRepositoryTree


class TestBasics:
    def test_insert_then_extract(self, device):
        brt = BufferedRepositoryTree(device, key_space=100)
        brt.insert(5, 42)
        assert brt.extract_all(5) == [42]

    def test_extract_is_destructive(self, device):
        brt = BufferedRepositoryTree(device, key_space=100)
        brt.insert(5, 42)
        brt.extract_all(5)
        assert brt.extract_all(5) == []

    def test_extract_missing_key(self, device):
        brt = BufferedRepositoryTree(device, key_space=100)
        assert brt.extract_all(7) == []

    def test_multiple_values_per_key(self, device):
        brt = BufferedRepositoryTree(device, key_space=100)
        for value in (1, 2, 3):
            brt.insert(9, value)
        assert sorted(brt.extract_all(9)) == [1, 2, 3]

    def test_keys_are_independent(self, device):
        brt = BufferedRepositoryTree(device, key_space=100)
        brt.insert(1, 10)
        brt.insert(2, 20)
        assert brt.extract_all(1) == [10]
        assert brt.extract_all(2) == [20]

    def test_key_out_of_range(self, device):
        brt = BufferedRepositoryTree(device, key_space=10)
        with pytest.raises(ValueError):
            brt.insert(10, 0)
        with pytest.raises(ValueError):
            brt.insert(-1, 0)


class TestBuffering:
    def test_staging_overflow_flushes_to_disk(self, device):
        # 64-byte blocks -> staging capacity 8 records.
        brt = BufferedRepositoryTree(device, key_space=1000)
        before = device.stats.total
        for i in range(100):
            brt.insert(i % 50, i)
        assert device.stats.total > before  # staged blocks hit the disk

    def test_extract_after_deep_flush(self, device):
        brt = BufferedRepositoryTree(device, key_space=4096, buffer_blocks=1)
        rng = random.Random(0)
        expected = {}
        for i in range(600):
            key = rng.randrange(4096)
            expected.setdefault(key, []).append(i)
            brt.insert(key, i)
        for key, values in list(expected.items())[:80]:
            assert sorted(brt.extract_all(key)) == sorted(values)

    def test_extract_charges_random_io(self, device):
        brt = BufferedRepositoryTree(device, key_space=1000, buffer_blocks=1)
        for i in range(200):
            brt.insert(i % 97, i)
        before = device.stats.snapshot()
        brt.extract_all(13)
        delta = device.stats.snapshot() - before
        assert delta.rand_reads > 0

    def test_drop_removes_files(self, device):
        brt = BufferedRepositoryTree(device, key_space=1000, name="mybrt")
        for i in range(200):
            brt.insert(i % 11, i)
        brt.drop()
        assert not any(name.startswith("mybrt") for name in device.list_files())


class TestStress:
    def test_randomized_against_dict(self, device):
        brt = BufferedRepositoryTree(device, key_space=256, buffer_blocks=2)
        rng = random.Random(42)
        oracle = {}
        for step in range(1500):
            if rng.random() < 0.7:
                key = rng.randrange(256)
                value = step
                oracle.setdefault(key, []).append(value)
                brt.insert(key, value)
            else:
                key = rng.randrange(256)
                expected = sorted(oracle.pop(key, []))
                assert sorted(brt.extract_all(key)) == expected
        for key, values in oracle.items():
            assert sorted(brt.extract_all(key)) == sorted(values)
