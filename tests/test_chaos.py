"""Transient-fault tolerance: retry/backoff policy, fault schedules,
parity read-repair, worker supervision, and the chaos property suite.

The load-bearing invariant, checked by the hypothesis suite at the bottom:
a run that survives an injected fault produces byte-identical SCC labels,
and the *only* ledger difference against the fault-free run is the
``retry`` / ``repair`` fault labels — every algorithm phase charges
exactly the same I/Os.
"""

import os
import stat
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ExtSCC, ExtSCCConfig, compute_sccs
from repro.exceptions import (
    ChannelOutageError,
    CorruptBlockError,
    RetryExhaustedError,
    StorageError,
    TransientIOError,
    WorkerCrashError,
)
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.io.parallel import StripedDevice, WorkerPool
from repro.io.parity import ParityStore, decode_records, encode_records, xor_bytes
from repro.io.stats import FAULT_PHASES, IOSnapshot, REPAIR_PHASE, RETRY_PHASE
from repro.recovery import FaultPolicy, FaultSchedule, FaultSpec


# ---------------------------------------------------------------------------
# FaultPolicy


class TestFaultPolicy:
    def test_backoff_is_deterministic(self):
        a = FaultPolicy(seed=7)
        b = FaultPolicy(seed=7)
        for attempt in (1, 2, 3):
            assert a.backoff_seconds(attempt, token=42) == \
                b.backoff_seconds(attempt, token=42)

    def test_backoff_grows_exponentially_within_jitter_bounds(self):
        policy = FaultPolicy(backoff_base=0.01, backoff_factor=2.0, jitter=0.1)
        for attempt in (1, 2, 3, 4):
            base = 0.01 * 2.0 ** (attempt - 1)
            seconds = policy.backoff_seconds(attempt)
            assert base <= seconds < base * 1.1

    def test_zero_jitter_is_exact(self):
        policy = FaultPolicy(backoff_base=0.5, backoff_factor=3.0, jitter=0.0)
        assert policy.backoff_seconds(1) == 0.5
        assert policy.backoff_seconds(2) == 1.5

    def test_token_varies_jitter_stream(self):
        policy = FaultPolicy(jitter=0.5)
        assert policy.backoff_seconds(1, token=1) != \
            policy.backoff_seconds(1, token=2)

    def test_parse_full_spec(self):
        policy = FaultPolicy.parse(
            "retries=5,backoff=0.01,factor=3,jitter=0,seed=9,"
            "deadline=2.5,timeout=1.5,sleep=1"
        )
        assert policy.max_retries == 5
        assert policy.backoff_base == 0.01
        assert policy.backoff_factor == 3.0
        assert policy.jitter == 0.0
        assert policy.seed == 9
        assert policy.phase_deadline == 2.5
        assert policy.task_timeout == 1.5
        assert policy.sleep is True

    def test_parse_empty_is_default(self):
        assert FaultPolicy.parse("") == FaultPolicy()

    @pytest.mark.parametrize("spec", ["bogus=1", "retries", "retries=x"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPolicy.parse(spec)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_base=-0.1)


class TestFaultSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor-strike", at_io=1)

    def test_device_kind_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            FaultSpec("transient-read")
        with pytest.raises(ValueError):
            FaultSpec("transient-read", at_io=1, in_phase="semi-scc")

    def test_worker_kind_needs_task_trigger(self):
        with pytest.raises(ValueError):
            FaultSpec("worker-die", at_io=1)
        FaultSpec("worker-die", at_task=1)  # fine


# ---------------------------------------------------------------------------
# Transient faults + retry on the base device


def _loaded_device(num_blocks=4, **kwargs):
    device = BlockDevice(block_size=64, **kwargs)
    f = device.create("data", record_size=2)
    for i in range(num_blocks):
        device.append_block(f, [(i, i + 1)] * 4)
    return device, f


class TestTransientRetry:
    def test_read_retries_then_succeeds(self):
        device, f = _loaded_device()
        FaultSchedule.single("transient-read", at_io=1, failures=2).attach(device)
        device.attach_policy(FaultPolicy(max_retries=3))
        before = device.stats.total
        assert device.read_block(f, 0, sequential=True) == ((0, 1),) * 4
        health = device.stats.health
        assert health.retries == 2
        assert device.stats.phase_total(RETRY_PHASE) == 2
        # failed attempts + the successful read are all charged
        assert device.stats.total - before == 3

    def test_write_retries_then_succeeds(self):
        device, f = _loaded_device()
        FaultSchedule.single("transient-write", at_io=1, failures=1).attach(device)
        device.attach_policy(FaultPolicy(max_retries=3))
        device.append_block(f, [(9, 9)] * 4)
        assert device.stats.health.retries == 1
        assert device.read_block(f, 4, sequential=False) == ((9, 9),) * 4

    def test_retry_exhaustion_escalates(self):
        device, f = _loaded_device()
        FaultSchedule.single("transient-read", at_io=1, failures=10).attach(device)
        device.attach_policy(FaultPolicy(max_retries=2))
        with pytest.raises(RetryExhaustedError) as excinfo:
            device.read_block(f, 0, sequential=True)
        assert excinfo.value.attempts == 3
        assert device.stats.health.escalations == 1
        # every failed attempt was still charged to the retry label
        assert device.stats.phase_total(RETRY_PHASE) == 3

    def test_phase_deadline_escalates_early(self):
        device, f = _loaded_device()
        FaultSchedule.single("transient-read", at_io=1, failures=10).attach(device)
        device.attach_policy(FaultPolicy(max_retries=50, phase_deadline=0.0))
        with pytest.raises(RetryExhaustedError, match="deadline"):
            device.read_block(f, 0, sequential=True)
        assert device.stats.health.escalations == 1

    def test_retries_do_not_shift_later_fault_ordinals(self):
        # Two schedules, same at_io targets; the first run retries, the
        # second doesn't — the second fault must land on the same logical
        # operation either way.
        def run(failures):
            device, f = _loaded_device()
            schedule = FaultSchedule([
                FaultSpec("transient-read", at_io=1, failures=failures),
                FaultSpec("transient-read", at_io=3, failures=1),
            ]).attach(device)
            device.attach_policy(FaultPolicy(max_retries=5))
            for i in range(3):
                device.read_block(f, i, sequential=True)
            return [s.fired_at for s in schedule.specs]

        assert run(3) == run(1)

    def test_default_policy_applies_without_attach(self):
        device, f = _loaded_device()
        FaultSchedule.single("transient-read", at_io=1, failures=2).attach(device)
        assert device.read_block(f, 0, sequential=True) == ((0, 1),) * 4
        assert device.stats.health.retries == 2

    def test_budget_still_enforced_on_retries(self):
        from repro.exceptions import IOBudgetExceeded
        from repro.io.stats import IOBudget

        device, f = _loaded_device()
        device.stats.budget = IOBudget(device.stats.total + 2)
        FaultSchedule.single("transient-read", at_io=1, failures=5).attach(device)
        device.attach_policy(FaultPolicy(max_retries=10))
        with pytest.raises(IOBudgetExceeded):
            device.read_block(f, 0, sequential=True)


# ---------------------------------------------------------------------------
# Corruption + parity read-repair


def _striped(num_blocks=4, parity=True, channels=2):
    device = StripedDevice(block_size=64, channels=channels, parity=parity)
    f = device.create("data", record_size=2)
    for i in range(num_blocks):
        device.append_block(f, [(i, i + 1)] * 4)
    return device, f


class TestCorruptRepair:
    def test_corrupt_block_is_read_repaired_from_parity(self):
        device, f = _striped()
        FaultSchedule.single("corrupt", at_io=1).attach(device)
        assert device.read_block(f, 0, sequential=True) == ((0, 1),) * 4
        health = device.stats.health
        assert health.repairs == 1
        assert any("read-repaired" in event for event in health.events)
        assert device.stats.phase_total(REPAIR_PHASE) > 0
        # the block was rewritten: a later read needs no repair
        assert device.read_block(f, 0, sequential=False) == ((0, 1),) * 4
        assert health.repairs == 1

    def test_repaired_block_passes_verification(self):
        device, f = _striped()
        FaultSchedule.single("corrupt", at_io=1).attach(device)
        device.read_block(f, 0, sequential=True)
        # verify_block stays outside the fault machinery by contract
        assert device.verify_block(f, 0) == ((0, 1),) * 4

    def test_corrupt_without_parity_raises(self):
        device, f = _loaded_device()
        FaultSchedule.single("corrupt", at_io=1).attach(device)
        with pytest.raises(CorruptBlockError):
            device.read_block(f, 0, sequential=True)

    def test_parity_maintenance_never_touches_main_ledger(self):
        plain = StripedDevice(block_size=64, channels=2, parity=False)
        withp = StripedDevice(block_size=64, channels=2, parity=True)
        for device in (plain, withp):
            f = device.create("data", record_size=2)
            for i in range(4):
                device.append_block(f, [(i, i)] * 4)
            device.overwrite_block(f, 1, [(7, 7)] * 4)
        assert withp.stats.snapshot() == plain.stats.snapshot()
        assert withp.stats.health.parity_writes == 5
        assert withp.parity_stats.total == 5


class TestChannelOutage:
    def test_outage_reads_served_degraded_from_parity(self):
        device, f = _striped()
        FaultSchedule.single("channel-outage", at_io=1, duration=8).attach(device)
        for i in range(4):
            assert device.read_block(f, i, sequential=True) == ((i, i + 1),) * 4
        health = device.stats.health
        assert health.repairs >= 1
        assert device.stats.phase_total(REPAIR_PHASE) > 0

    def test_outage_write_rides_out_window_under_retry(self):
        device, f = _striped()
        FaultSchedule.single("channel-outage", at_io=1, duration=2).attach(device)
        device.attach_policy(FaultPolicy(max_retries=5))
        device.append_block(f, [(9, 9)] * 4)
        assert device.stats.health.retries >= 1
        assert device.read_block(f, 4, sequential=False) == ((9, 9),) * 4

    def test_outage_on_unstriped_device_degrades_to_transient(self):
        device, f = _loaded_device()
        FaultSchedule.single("channel-outage", at_io=1, duration=2).attach(device)
        device.attach_policy(FaultPolicy(max_retries=5))
        assert device.read_block(f, 0, sequential=True) == ((0, 1),) * 4
        assert device.stats.health.retries >= 1


# ---------------------------------------------------------------------------
# Parity encoding + store


class TestParityStore:
    @pytest.mark.parametrize("records", [
        (),
        ((1, 2), (3, 4)),
        (5, -7, 1 << 40),
        (((1, 2), (3,)), (4,)),
    ])
    def test_encode_decode_roundtrip(self, records):
        assert decode_records(encode_records(records)) == records

    def test_decode_tolerates_trailing_zero_padding(self):
        data = encode_records(((1, 2), (3, 4)))
        assert decode_records(data + b"\x00" * 13) == ((1, 2), (3, 4))

    def test_xor_bytes_pads_shorter_operand(self):
        assert xor_bytes(b"\x0f", b"\xf0\xff") == b"\xff\xff"
        assert xor_bytes(xor_bytes(b"abc", b"xyzw"), b"xyzw") == b"abc\x00"

    def test_reconstruct_any_single_member(self):
        store = ParityStore(group_width=2)
        blocks = {0: ((1, 2), (3, 4)), 1: ((5, 6),)}
        for index, records in blocks.items():
            store.update(7, index, None, records)
        for lost in (0, 1):
            siblings = [blocks[i] for i in blocks if i != lost]
            assert store.reconstruct(7, lost, siblings) == blocks[lost]

    def test_incremental_update_tracks_overwrites(self):
        store = ParityStore(group_width=2)
        store.update(1, 0, None, ((1, 1),))
        store.update(1, 1, None, ((2, 2),))
        store.update(1, 0, ((1, 1),), ((9, 9),))
        assert store.reconstruct(1, 0, [((2, 2),)]) == ((9, 9),)

    def test_drop_file_forgets_parity(self):
        store = ParityStore(group_width=2)
        store.update(1, 0, None, ((1, 1),))
        store.update(2, 0, None, ((2, 2),))
        store.drop_file(1)
        assert store.reconstruct(1, 0, []) is None
        assert len(store) == 1

    def test_unsupported_payload_rejected(self):
        with pytest.raises(StorageError):
            encode_records(("strings", "nope"))


# ---------------------------------------------------------------------------
# Worker supervision


def _supervised_pool(backend="threads", workers=2, schedule=None, policy=None):
    device = BlockDevice(block_size=64)
    if schedule is not None:
        schedule.attach(device)
    if policy is not None:
        device.attach_policy(policy)
    pool = WorkerPool(workers=workers, backend=backend)
    device.attach_workers(pool)
    return device, pool


class TestWorkerSupervision:
    def test_dead_worker_task_is_redispatched(self):
        schedule = FaultSchedule.single("worker-die", at_task=1)
        device, pool = _supervised_pool(schedule=schedule)
        try:
            assert pool.run([lambda: 1, lambda: 2, lambda: 3]) == [1, 2, 3]
        finally:
            pool.close()
        health = device.stats.health
        assert health.redispatches == 1
        assert any("re-dispatched" in event for event in health.events)

    def test_hung_worker_task_is_redispatched(self):
        schedule = FaultSchedule.single("worker-hang", at_task=2)
        device, pool = _supervised_pool(schedule=schedule)
        try:
            assert pool.run([lambda: "a", lambda: "b"]) == ["a", "b"]
        finally:
            pool.close()
        assert device.stats.health.redispatches == 1

    def test_serial_inline_path_is_supervised_too(self):
        schedule = FaultSchedule.single("worker-die", at_task=1)
        device, pool = _supervised_pool(backend="serial", workers=1,
                                        schedule=schedule)
        assert pool.run([lambda: 10, lambda: 20]) == [10, 20]
        assert device.stats.health.redispatches == 1

    def test_run_windowed_redispatches(self):
        schedule = FaultSchedule.single("worker-die", at_task=1)
        device, pool = _supervised_pool(schedule=schedule)
        try:
            out = list(pool.run_windowed((lambda i=i: i for i in range(5)),
                                         window=2))
        finally:
            pool.close()
        assert out == list(range(5))
        assert device.stats.health.redispatches == 1

    def test_task_deadline_times_out_and_replays(self):
        device, pool = _supervised_pool(
            policy=FaultPolicy(task_timeout=0.05)
        )
        slow_done = threading.Event()

        def slow():
            if not slow_done.is_set():
                slow_done.set()
                time.sleep(0.3)
            return "slow"

        try:
            assert pool.run([slow, lambda: "fast"]) == ["slow", "fast"]
        finally:
            pool.close()
        assert device.stats.health.redispatches == 1

    def test_faults_never_touch_io_ledger(self):
        schedule = FaultSchedule.single("worker-die", at_task=1)
        device, pool = _supervised_pool(schedule=schedule)
        f = device.create("data", record_size=2)
        try:
            pool.run([
                lambda: device.append_block(f, [(1, 1)]),
                lambda: device.append_block(f, [(2, 2)]),
            ])
        finally:
            pool.close()
        # the re-dispatched task charged exactly one write, like a clean run
        assert device.stats.total == 2
        assert device.stats.health.redispatches == 1

    def test_close_twice_is_safe(self):
        _, pool = _supervised_pool()
        pool.run([lambda: 1, lambda: 2])
        pool.close()
        pool.close()
        # and the pool stays usable: executors are lazily recreated
        assert pool.run([lambda: 3, lambda: 4]) == [3, 4]
        pool.close()

    def test_close_shuts_processes_down_despite_interrupt(self):
        class Exploding:
            def shutdown(self, wait=True):
                raise KeyboardInterrupt

        class Recording:
            def __init__(self):
                self.closed = False

            def shutdown(self, wait=True):
                self.closed = True

        pool = WorkerPool(workers=2, backend="threads")
        procs = Recording()
        pool._executor = Exploding()
        pool._process_executor = procs
        with pytest.raises(KeyboardInterrupt):
            pool.close()
        assert procs.closed
        assert pool._executor is None and pool._process_executor is None


# ---------------------------------------------------------------------------
# Durable manifest sync (satellite regression)


class TestPersistentSyncDurability:
    def test_sync_fsyncs_manifest_then_parent_directory(self, tmp_path, monkeypatch):
        from repro.io.persistent import PersistentBlockDevice

        device = PersistentBlockDevice(str(tmp_path / "dev"), block_size=256)
        calls = []
        real_fsync = os.fsync

        def spy(fd):
            calls.append("dir" if stat.S_ISDIR(os.fstat(fd).st_mode) else "file")
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy)
        device.sync()
        assert "file" in calls and "dir" in calls
        # the directory entry is made durable after the manifest rename
        assert calls.index("dir") > calls.index("file")

    def test_sync_tolerates_unfsyncable_directory(self, tmp_path, monkeypatch):
        from repro.io.persistent import PersistentBlockDevice

        device = PersistentBlockDevice(str(tmp_path / "dev"), block_size=256)

        def refuse(path, flags):
            raise OSError("directories cannot be opened here")

        monkeypatch.setattr(os, "open", refuse)
        device.sync()  # must not raise


# ---------------------------------------------------------------------------
# End-to-end: faults through compute_sccs


class TestComputeSccsFaults:
    def test_fault_run_matches_clean_labels_and_health_delta(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
        clean = compute_sccs(edges, num_nodes=4, memory_bytes=1 << 14,
                             parity=True)
        schedule = FaultSchedule.single("transient-read", at_io=6, failures=2)
        faulty = compute_sccs(
            edges, num_nodes=4, memory_bytes=1 << 14, parity=True,
            fault_schedule=schedule, fault_policy=FaultPolicy(max_retries=4),
        )
        assert faulty.result.labels == clean.result.labels
        assert clean.health["retries"] == 0
        assert faulty.health["retries"] == 2
        assert faulty.io.total - clean.io.total == 2

    def test_parity_off_by_default(self):
        out = compute_sccs([(0, 1)], num_nodes=2, memory_bytes=1 << 14)
        assert out.health["parity_writes"] == 0


# ---------------------------------------------------------------------------
# Chaos property suite


N_NODES = 10

edges_strategy = st.lists(
    st.tuples(st.integers(0, N_NODES - 1), st.integers(0, N_NODES - 1)),
    min_size=1,
    max_size=30,
)

fault_strategy = st.fixed_dictionaries({
    "kind": st.sampled_from(
        ["transient-read", "transient-write", "corrupt", "channel-outage"]
    ),
    "trigger": st.one_of(
        st.just(("in_phase", "semi-scc")),
        st.tuples(st.just("at_io"), st.integers(1, 12)),
    ),
    "failures": st.integers(1, 2),
})


def _chaos_run(edges, schedule=None, policy=None):
    device = StripedDevice(block_size=256, channels=2, parity=True)
    if policy is not None:
        device.attach_policy(policy)
    if schedule is not None:
        schedule.attach(device)
    memory = MemoryBudget(1 << 14)
    edge_file = EdgeFile.from_edges(device, "edges", edges)
    node_file = NodeFile.from_ids(
        device, "nodes", range(N_NODES), memory, presorted=True
    )
    out = ExtSCC(ExtSCCConfig.optimized()).run(
        device, edge_file, memory, nodes=node_file
    )
    return out, device


CHAOS_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestChaosProperties:
    @CHAOS_SETTINGS
    @given(edges=edges_strategy, fault=fault_strategy)
    def test_single_fault_changes_only_the_fault_ledger(self, edges, fault):
        trigger_key, trigger_value = fault["trigger"]
        kwargs = {trigger_key: trigger_value}
        if fault["kind"] in ("transient-read", "transient-write"):
            kwargs["failures"] = fault["failures"]
        schedule = FaultSchedule.single(fault["kind"], **kwargs)

        clean_out, clean_dev = _chaos_run(edges)
        faulty_out, faulty_dev = _chaos_run(
            edges, schedule=schedule, policy=FaultPolicy(max_retries=6)
        )

        # 1. Output identity: byte-identical SCC labels.
        assert faulty_out.result.labels == clean_out.result.labels

        # 2. Every non-fault phase label charged exactly the same I/Os.
        empty = IOSnapshot()
        labels = set(clean_dev.stats.by_phase) | set(faulty_dev.stats.by_phase)
        for label in labels - set(FAULT_PHASES):
            assert faulty_dev.stats.by_phase.get(label, empty) == \
                clean_dev.stats.by_phase.get(label, empty), label

        # 3. The fault labels are the entire total-ledger delta.
        assert faulty_dev.stats.total - clean_dev.stats.total == \
            faulty_dev.stats.fault_total()
        assert clean_dev.stats.fault_total() == 0

        # 4. Health ledger: clean run spotless (parity maintenance aside);
        #    a fired fault shows up, an unfired one leaves no trace.
        assert clean_dev.stats.health.retries == 0
        assert clean_dev.stats.health.repairs == 0
        if not schedule.fired:
            assert faulty_dev.stats.fault_total() == 0
            assert faulty_dev.stats.health.retries == 0

    @CHAOS_SETTINGS
    @given(edges=edges_strategy)
    def test_policy_and_parity_alone_change_nothing(self, edges):
        baseline_out, baseline_dev = _chaos_run(edges)
        armed_out, armed_dev = _chaos_run(
            edges, policy=FaultPolicy(max_retries=5, phase_deadline=10.0)
        )
        assert armed_out.result.labels == baseline_out.result.labels
        assert armed_dev.stats.snapshot() == baseline_dev.stats.snapshot()
        assert armed_dev.stats.by_phase == baseline_dev.stats.by_phase
