"""Tests for the simulated block device."""

import pytest

from repro.exceptions import StorageError
from repro.io.blocks import BlockDevice


class TestFileNamespace:
    def test_create_and_open(self, device):
        f = device.create("data", record_size=8)
        assert device.open("data") is f
        assert device.exists("data")

    def test_create_duplicate_rejected(self, device):
        device.create("data", record_size=8)
        with pytest.raises(StorageError):
            device.create("data", record_size=8)

    def test_create_overwrite(self, device):
        device.create("data", record_size=8)
        f = device.create("data", record_size=4, overwrite=True)
        assert device.open("data") is f

    def test_open_missing(self, device):
        with pytest.raises(StorageError):
            device.open("ghost")

    def test_delete(self, device):
        device.create("data", record_size=8)
        device.delete("data")
        assert not device.exists("data")

    def test_delete_missing(self, device):
        with pytest.raises(StorageError):
            device.delete("ghost")

    def test_rename(self, device):
        device.create("old", record_size=8)
        device.rename("old", "new")
        assert device.exists("new")
        assert not device.exists("old")

    def test_temp_names_unique(self, device):
        names = {device.temp_name() for _ in range(100)}
        assert len(names) == 100

    def test_list_files_sorted(self, device):
        device.create("b", record_size=4)
        device.create("a", record_size=4)
        assert device.list_files() == ["a", "b"]


class TestBlockIO:
    def test_block_capacity_from_record_size(self, device):
        f = device.create("data", record_size=8)
        assert f.block_capacity == 64 // 8

    def test_record_wider_than_block_rejected(self, device):
        with pytest.raises(StorageError):
            device.create("data", record_size=128)

    def test_append_counts_sequential_write(self, device):
        f = device.create("data", record_size=8)
        device.append_block(f, [(1, 2)])
        assert device.stats.seq_writes == 1
        assert f.num_records == 1

    def test_append_overfull_block_rejected(self, device):
        f = device.create("data", record_size=32)  # capacity 2
        with pytest.raises(StorageError):
            device.append_block(f, [(1,), (2,), (3,)])

    def test_read_block_patterns(self, device):
        f = device.create("data", record_size=8)
        device.append_block(f, [(1, 2)])
        device.read_block(f, 0, sequential=True)
        device.read_block(f, 0, sequential=False)
        assert device.stats.seq_reads == 1
        assert device.stats.rand_reads == 1

    def test_read_block_out_of_range(self, device):
        f = device.create("data", record_size=8)
        with pytest.raises(StorageError):
            device.read_block(f, 0, sequential=True)

    def test_overwrite_block_counts_random_write(self, device):
        f = device.create("data", record_size=8)
        device.append_block(f, [(1, 2), (3, 4)])
        device.overwrite_block(f, 0, [(9, 9)])
        assert device.stats.rand_writes == 1
        assert f.num_records == 1
        assert list(device.read_block(f, 0, sequential=True)) == [(9, 9)]

    def test_total_blocks(self, device):
        f = device.create("a", record_size=8)
        g = device.create("b", record_size=8)
        device.append_block(f, [(1, 1)])
        device.append_block(g, [(2, 2)])
        device.append_block(g, [(3, 3)])
        assert device.total_blocks() == 3

    def test_invalid_block_size(self):
        with pytest.raises(StorageError):
            BlockDevice(block_size=0)
