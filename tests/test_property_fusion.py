"""Property-based tests (hypothesis) for operator fusion.

The fused pipeline — :func:`external_sort_stream` feeding a join directly —
must be *observationally identical* to the unfused one that materializes
the sorted file and re-scans it: same records, same order (stability
included), while performing no more block I/Os.  Random record files,
random memory budgets, and both join shapes (semi-join filter and merge
join) drive the equivalence.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.edge_file import NodeFile
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.join import merge_join, semi_join
from repro.io.memory import MemoryBudget
from repro.io.sort import external_sort_records, external_sort_stream

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

records_strategy = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 6)),
    min_size=0,
    max_size=120,
)

keys_strategy = st.lists(st.integers(0, 20), min_size=0, max_size=15, unique=True)

# MemoryBudget must be >= 2 blocks of 64B; small budgets force multi-run
# sorts, large ones hit the single-run shortcut.
memory_strategy = st.sampled_from([128, 192, 256, 512, 2048])


def _unfused_sort_then_semi_join(device, records, keys, memory):
    """Materialize the sorted file, then filter it — the pre-fusion shape."""
    sorted_file = external_sort_records(
        device, iter(records), 8, memory, key=lambda r: (r[0], r[1])
    )
    key_file = NodeFile.from_ids(device, "keys-a", keys, memory, presorted=True)
    out = list(semi_join(sorted_file.scan(), key_file.scan(), lambda r: r[0]))
    sorted_file.delete()
    return out


def _fused_sort_then_semi_join(device, records, keys, memory):
    """Stream the final merge straight into the filter — the fused shape."""
    stream = external_sort_stream(
        device, iter(records), 8, memory, key=lambda r: (r[0], r[1])
    )
    key_file = NodeFile.from_ids(device, "keys-b", keys, memory, presorted=True)
    return list(semi_join(stream, key_file.scan(), lambda r: r[0]))


class TestFusedSemiJoinEquivalence:
    @SETTINGS
    @given(records_strategy, keys_strategy, memory_strategy)
    def test_same_records_same_order_fewer_ios(self, records, keys, memory_bytes):
        memory = MemoryBudget(memory_bytes)

        unfused_device = BlockDevice(block_size=64)
        unfused = _unfused_sort_then_semi_join(unfused_device, records, keys, memory)

        fused_device = BlockDevice(block_size=64)
        fused = _fused_sort_then_semi_join(fused_device, records, keys, memory)

        assert fused == unfused
        assert fused_device.stats.total <= unfused_device.stats.total
        assert fused_device.stats.random == unfused_device.stats.random == 0

    @SETTINGS
    @given(records_strategy, keys_strategy, memory_strategy)
    def test_fusion_leaves_no_temp_files(self, records, keys, memory_bytes):
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(memory_bytes)
        before = set(device.list_files())
        _fused_sort_then_semi_join(device, records, keys, memory)
        assert set(device.list_files()) - before == {"keys-b"}


class TestFusedMergeJoinEquivalence:
    @SETTINGS
    @given(records_strategy, records_strategy, memory_strategy)
    def test_sort_into_merge_join(self, left, right, memory_bytes):
        """sort -> merge-join fused on the left input: identical pairs."""
        memory = MemoryBudget(memory_bytes)
        key = lambda r: r[0]  # noqa: E731

        unfused_device = BlockDevice(block_size=64)
        sorted_left = external_sort_records(
            unfused_device, iter(left), 8, memory, key=lambda r: (r[0], r[1])
        )
        right_file = ExternalFile.from_records(
            unfused_device, "right", sorted(right), 8
        )
        unfused = list(
            merge_join(sorted_left.scan(), right_file.scan(), key, key)
        )

        fused_device = BlockDevice(block_size=64)
        stream = external_sort_stream(
            fused_device, iter(left), 8, memory, key=lambda r: (r[0], r[1])
        )
        right_file2 = ExternalFile.from_records(
            fused_device, "right", sorted(right), 8
        )
        fused = list(merge_join(stream, right_file2.scan(), key, key))

        assert fused == unfused
        assert fused_device.stats.total <= unfused_device.stats.total

    @SETTINGS
    @given(records_strategy, memory_strategy)
    def test_unique_stream_matches_materialized_unique(self, records, memory_bytes):
        memory = MemoryBudget(memory_bytes)

        a = BlockDevice(block_size=64)
        out = external_sort_records(a, iter(records), 8, memory, unique=True)
        materialized = list(out.scan())

        b = BlockDevice(block_size=64)
        streamed = list(
            external_sort_stream(b, iter(records), 8, memory, unique=True)
        )

        assert streamed == materialized
        assert b.stats.total <= a.stats.total
