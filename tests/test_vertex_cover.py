"""Tests for the external vertex cover and the Type-2 bounded table."""

import pytest

from tests.conftest import random_edges

from repro.core.vertex_cover import BoundedCoverTable, external_vertex_cover
from repro.graph.edge_file import EdgeFile


def is_vertex_cover(cover, edges):
    return all(u in cover or v in cover for u, v in edges if u != v)


class TestExternalVertexCover:
    @pytest.mark.parametrize("seed", range(5))
    def test_result_is_a_cover(self, device, memory, seed):
        edges = random_edges(40, 90, seed)
        ef = EdgeFile.from_edges(device, "e", edges)
        cover = set(external_vertex_cover(ef, memory).scan())
        assert is_vertex_cover(cover, edges)

    def test_cover_is_proper_subset(self, device, memory):
        """Lemma 5.2: the smallest node never enters the cover."""
        edges = random_edges(30, 80, seed=1)
        nodes = {x for e in edges for x in e}
        ef = EdgeFile.from_edges(device, "e", edges)
        cover = set(external_vertex_cover(ef, memory).scan())
        assert cover < nodes

    def test_star_graph_picks_center(self, device, memory):
        edges = [(0, i) for i in range(1, 10)]
        ef = EdgeFile.from_edges(device, "e", edges)
        cover = list(external_vertex_cover(ef, memory).scan())
        assert cover == [0]

    def test_self_loops_ignored(self, device, memory):
        ef = EdgeFile.from_edges(device, "e", [(1, 1), (2, 2)])
        cover = list(external_vertex_cover(ef, memory).scan())
        assert cover == []

    def test_empty_graph(self, device, memory):
        ef = EdgeFile.from_edges(device, "e", [])
        assert list(external_vertex_cover(ef, memory).scan()) == []

    @pytest.mark.parametrize("product_operator", [False, True])
    @pytest.mark.parametrize("type2", [False, True])
    def test_variants_still_covers(self, device, memory, product_operator, type2):
        edges = random_edges(35, 100, seed=3)
        ef = EdgeFile.from_edges(device, "e", edges)
        cover = set(
            external_vertex_cover(
                ef, memory, product_operator=product_operator, type2_reduction=type2
            ).scan()
        )
        assert is_vertex_cover(cover, edges)

    def test_type2_reduces_cover_size(self, device, memory):
        edges = random_edges(60, 150, seed=5)
        ef = EdgeFile.from_edges(device, "e", edges)
        plain = set(external_vertex_cover(ef, memory).scan())
        reduced = set(
            external_vertex_cover(ef, memory, type2_reduction=True).scan()
        )
        assert len(reduced) <= len(plain)

    def test_only_sequential_io(self, device, memory):
        edges = random_edges(40, 90, seed=0)
        ef = EdgeFile.from_edges(device, "e", edges)
        external_vertex_cover(ef, memory)
        assert device.stats.random == 0


class TestBoundedCoverTable:
    def test_membership(self):
        table = BoundedCoverTable(4)
        table.add(1, (5, 1))
        assert 1 in table
        assert 2 not in table

    def test_eviction_keeps_smallest_keys(self):
        table = BoundedCoverTable(2)
        table.add(1, (10, 1))
        table.add(2, (5, 2))
        table.add(3, (1, 3))  # evicts the largest key (node 1)
        assert 1 not in table
        assert 2 in table
        assert 3 in table
        assert len(table) == 2

    def test_zero_capacity_never_stores(self):
        table = BoundedCoverTable(0)
        table.add(1, (1, 1))
        assert 1 not in table
        assert len(table) == 0

    def test_duplicate_add_is_noop(self):
        table = BoundedCoverTable(3)
        table.add(1, (1, 1))
        table.add(1, (1, 1))
        assert len(table) == 1

    def test_from_memory_sizing(self):
        assert BoundedCoverTable.from_memory(160).capacity == 10

    def test_stale_heap_entries_skipped(self):
        table = BoundedCoverTable(2)
        table.add(1, (9, 1))
        table.add(2, (8, 2))
        table.add(3, (7, 3))  # evicts 1
        table.add(1, (6, 1))  # re-add with a smaller key; evicts 2
        assert 1 in table
        assert 3 in table
        assert len(table) == 2
