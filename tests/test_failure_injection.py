"""Failure injection: budgets tripping mid-run, misuse, and recovery."""

import pytest

from tests.conftest import random_edges, reference_sccs

from repro.core import ExtSCC, ExtSCCConfig, compute_sccs
from repro.exceptions import IOBudgetExceeded, SimulatedCrash, StorageError
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.graph.generators import cycle_graph
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.stats import IOBudget
from repro.recovery import FaultInjector


def _cycle_workload(num_nodes: int, budget=None):
    """A cycle graph loaded onto a fresh 64-byte-block device."""
    device = BlockDevice(block_size=64, budget=budget)
    memory = MemoryBudget(300)
    g = cycle_graph(num_nodes)
    edge_file = EdgeFile.from_edges(device, "E", g.edges)
    node_file = NodeFile.from_ids(device, "V", range(num_nodes), memory,
                                  presorted=True)
    return device, edge_file, node_file, memory


class TestBudgetTrips:
    def test_ledger_stops_exactly_at_cap(self):
        g = cycle_graph(100)
        device = BlockDevice(block_size=64, budget=IOBudget(500))
        memory = MemoryBudget(300)
        edge_file = EdgeFile.from_edges(device, "E", g.edges)
        node_file = NodeFile.from_ids(device, "V", range(100), memory,
                                      presorted=True)
        with pytest.raises(IOBudgetExceeded) as excinfo:
            ExtSCC().run(device, edge_file, memory, nodes=node_file)
        assert excinfo.value.used == 501
        assert device.stats.total == 501

    def test_budget_in_contraction_phase(self):
        """The failure is attributable: the phase ledger shows where."""
        g = cycle_graph(100)
        device = BlockDevice(block_size=64, budget=IOBudget(300))
        memory = MemoryBudget(300)
        edge_file = EdgeFile.from_edges(device, "E", g.edges)
        node_file = NodeFile.from_ids(device, "V", range(100), memory,
                                      presorted=True)
        with pytest.raises(IOBudgetExceeded):
            ExtSCC().run(device, edge_file, memory, nodes=node_file)
        assert device.stats.by_phase["contraction"].total > 0

    def test_budget_in_semi_external_phase(self):
        """A cap landing inside the semi-external solve is attributed there:
        contraction shows its full cost, semi-scc a partial one."""
        clean_device, edge_file, node_file, memory = _cycle_workload(100)
        clean = ExtSCC().run(clean_device, edge_file, memory, nodes=node_file)
        clean_contract = clean_device.stats.by_phase["contraction"].total
        clean_semi = clean_device.stats.by_phase["semi-scc"].total
        assert clean_semi > 2  # the cap below lands strictly inside

        # The cap counts from device creation, so offset by the input
        # loading I/O that happens before the run starts.
        loading = clean_device.stats.total - clean.io.total
        cap = loading + clean.contraction_io.total + clean.semi_io.total // 2
        device, edge_file, node_file, memory = _cycle_workload(
            100, budget=IOBudget(cap)
        )
        with pytest.raises(IOBudgetExceeded):
            ExtSCC().run(device, edge_file, memory, nodes=node_file)
        assert device.stats.by_phase["contraction"].total == clean_contract
        semi_spent = device.stats.by_phase["semi-scc"].total
        assert 0 < semi_spent < clean_semi
        assert "expansion" not in device.stats.by_phase

    def test_budget_in_expansion_phase(self):
        """A cap landing inside expansion leaves contraction and semi-scc
        fully accounted and charges the overrun to the expansion ledger."""
        clean_device, edge_file, node_file, memory = _cycle_workload(100)
        clean = ExtSCC().run(clean_device, edge_file, memory, nodes=node_file)
        clean_expand = clean_device.stats.by_phase["expansion"].total
        assert clean_expand > 2

        loading = clean_device.stats.total - clean.io.total
        cap = (loading + clean.contraction_io.total + clean.semi_io.total
               + clean.expansion_io.total // 2)
        device, edge_file, node_file, memory = _cycle_workload(
            100, budget=IOBudget(cap)
        )
        with pytest.raises(IOBudgetExceeded):
            ExtSCC().run(device, edge_file, memory, nodes=node_file)
        assert (device.stats.by_phase["contraction"].total
                == clean_device.stats.by_phase["contraction"].total)
        assert (device.stats.by_phase["semi-scc"].total
                == clean_device.stats.by_phase["semi-scc"].total)
        expansion_spent = device.stats.by_phase["expansion"].total
        assert 0 < expansion_spent < clean_expand

    def test_rerun_after_budget_increase_succeeds(self):
        g = cycle_graph(60)
        with pytest.raises(IOBudgetExceeded):
            compute_sccs(g.edges, num_nodes=60, memory_bytes=300,
                         block_size=64, io_budget=100)
        out = compute_sccs(g.edges, num_nodes=60, memory_bytes=300,
                           block_size=64, io_budget=10_000_000)
        assert out.result.num_sccs == 1


class TestAbortHygiene:
    """Aborted runs must not leak half-built intermediates (satellite of
    the crash-consistency work: without a journal there is nothing to make
    them reachable, so they are deleted on the way out)."""

    def test_budget_abort_leaves_only_the_inputs(self):
        device, edge_file, node_file, memory = _cycle_workload(
            100, budget=IOBudget(500)
        )
        with pytest.raises(IOBudgetExceeded):
            ExtSCC().run(device, edge_file, memory, nodes=node_file)
        assert device.list_files() == ["E", "V"]
        # Cleanup is free: the ledger still shows the abort point.
        assert device.stats.total == 501

    def test_simulated_crash_without_checkpoint_leaves_only_the_inputs(self):
        device, edge_file, node_file, memory = _cycle_workload(100)
        FaultInjector(crash_at_io=400).attach(device)
        with pytest.raises(SimulatedCrash):
            ExtSCC().run(device, edge_file, memory, nodes=node_file)
        assert device.list_files() == ["E", "V"]

    def test_abort_preserves_caller_files_other_than_inputs(self):
        device, edge_file, node_file, memory = _cycle_workload(
            100, budget=IOBudget(500)
        )
        ExternalFile.from_records(device, "bystander", [(9, 9)], 8)
        with pytest.raises(IOBudgetExceeded):
            ExtSCC().run(device, edge_file, memory, nodes=node_file)
        assert device.list_files() == ["E", "V", "bystander"]


class TestMisuse:
    def test_scan_deleted_file(self, device):
        ef = ExternalFile.from_records(device, "x", [(1, 2)], 8)
        ef.delete()
        with pytest.raises(StorageError):
            list(ef.scan())

    def test_double_delete(self, device):
        ef = ExternalFile.from_records(device, "x", [(1, 2)], 8)
        ef.delete()
        with pytest.raises(StorageError):
            ef.delete()

    def test_rename_collision_guard(self, device):
        ExternalFile.from_records(device, "a", [(1, 2)], 8)
        b = ExternalFile.from_records(device, "b", [(3, 4)], 8)
        with pytest.raises(StorageError):
            b.rename("a", overwrite=False)

    def test_memory_below_two_blocks(self):
        g = cycle_graph(10)
        with pytest.raises(Exception):
            compute_sccs(g.edges, num_nodes=10, memory_bytes=100,
                         block_size=64)


class TestDeterminismAcrossReruns:
    def test_identical_ledger_for_identical_runs(self):
        edges = random_edges(60, 150, seed=8)
        outs = [
            compute_sccs(edges, num_nodes=60, memory_bytes=300, block_size=64)
            for _ in range(2)
        ]
        assert outs[0].io.total == outs[1].io.total
        assert outs[0].num_iterations == outs[1].num_iterations
        assert outs[0].result == outs[1].result


class TestProgressCallback:
    def test_callback_sees_every_iteration(self):
        g = cycle_graph(80)
        seen = []
        out = compute_sccs(g.edges, num_nodes=80, memory_bytes=300,
                           block_size=64, on_iteration=seen.append)
        assert len(seen) == out.num_iterations
        assert [r.level for r in seen] == list(range(1, out.num_iterations + 1))

    def test_callback_not_called_when_no_contraction(self):
        seen = []
        compute_sccs([(0, 1)], num_nodes=2, memory_bytes=4096,
                     block_size=64, on_iteration=seen.append)
        assert seen == []
