"""Crash-consistency: checkpoint/resume under deterministic fault injection.

The keystone property is the *crash matrix*: a crash is scheduled inside
every phase of the pipeline (each contraction iteration, the semi-external
solve, each expansion step, the final scan); after the crash the run is
resumed from the journal and must

* produce byte-identical SCC labels to the uninterrupted run, and
* never re-pay more I/O than the uninterrupted run still had ahead of it
  at the start of the interrupted phase (recovery validation reads are
  accounted separately under the ``recovery`` phase).

A second invariant is that checkpointing is free when nothing crashes:
the I/O ledger of a checkpointed uninterrupted run is identical to the
ledger without checkpointing.
"""

from __future__ import annotations

import json
from typing import List, Tuple

import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.core.config import ExtSCCConfig
from repro.core.ext_scc import ExtSCC
from repro.exceptions import (
    CheckpointError,
    CorruptBlockError,
    SimulatedCrash,
    StorageError,
)
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.persistent import PersistentBlockDevice
from repro.io.stats import RECOVERY_PHASE
from repro.recovery import CheckpointManager, FaultInjector

from .conftest import random_edges, reference_sccs

NUM_NODES = 100
EDGES = random_edges(NUM_NODES, 400, seed=20240731)
REFERENCE = reference_sccs(EDGES, NUM_NODES)
# pool_readahead=1 keeps request batching out of the picture so crash
# ordinals land exactly where scheduled.
CONFIG = ExtSCCConfig.baseline(pool_readahead=1)


def _load(device: BlockDevice) -> Tuple[EdgeFile, NodeFile, MemoryBudget]:
    memory = MemoryBudget(512)
    edge_file = EdgeFile.from_edges(device, "input-edges", EDGES)
    node_file = NodeFile.from_ids(
        device, "input-nodes", range(NUM_NODES), memory, presorted=True
    )
    return edge_file, node_file, memory


def _reopen_inputs(device: BlockDevice) -> Tuple[EdgeFile, NodeFile]:
    return (
        EdgeFile(ExternalFile.open(device, "input-edges")),
        NodeFile(ExternalFile.open(device, "input-nodes")),
    )


def _uninterrupted():
    device = BlockDevice(block_size=64)
    edge_file, node_file, memory = _load(device)
    out = ExtSCC(CONFIG).run(device, edge_file, memory, nodes=node_file)
    return device, out


def _phase_schedule(device, out) -> List[Tuple[str, int, int]]:
    """``(phase label, start ordinal, size)`` for every pipeline phase of an
    uninterrupted run, in execution order.  Ordinals are I/O counts from the
    start of the run; the inputs were loaded on the same device, so a crash
    injector attached right before the run sees the same numbering."""
    schedule: List[Tuple[str, int, int]] = []
    cursor = 0
    for record in out.iterations:
        schedule.append((f"contract-{record.level}", cursor, record.io.total))
        cursor += record.io.total
    schedule.append(("semi-scc", cursor, out.semi_io.total))
    cursor += out.semi_io.total
    for record in reversed(out.iterations):
        label = f"expand-{record.level}"
        size = device.stats.phase_total(label)
        schedule.append((label, cursor, size))
        cursor += size
    schedule.append(("final-scan", cursor, out.io.total - cursor))
    return schedule


def test_graph_contracts_at_least_twice():
    """The crash matrix only means something if the pipeline has depth."""
    _, out = _uninterrupted()
    assert out.num_iterations >= 2
    assert out.result == REFERENCE


def test_checkpointing_uninterrupted_is_io_free():
    """Zero-cost-when-on: identical ledger with and without a journal."""
    _, plain = _uninterrupted()

    device = BlockDevice(block_size=64)
    edge_file, node_file, memory = _load(device)
    manager = CheckpointManager(device)
    out = ExtSCC(CONFIG).run(
        device, edge_file, memory, nodes=node_file, checkpoint=manager
    )
    assert out.result == plain.result
    assert out.io == plain.io
    assert out.recovery_io.total == 0
    assert not out.resumed
    assert device.checkpoint_journal == []  # finish() cleared it
    assert device.stats.phase_total(RECOVERY_PHASE) == 0


def _crash_then_resume(ordinal: int, torn: bool = False):
    """Crash a checkpointed run at ``ordinal``, resume on the same device.

    Returns ``(crash, resume_output, device)``.
    """
    device = BlockDevice(block_size=64)
    edge_file, node_file, memory = _load(device)
    manager = CheckpointManager(device)
    FaultInjector(crash_at_io=ordinal, torn=torn).attach(device)
    with pytest.raises(SimulatedCrash) as excinfo:
        ExtSCC(CONFIG).run(
            device, edge_file, memory, nodes=node_file, checkpoint=manager
        )
    device.attach_injector(None)
    edge_file, node_file = _reopen_inputs(device)
    out = ExtSCC(CONFIG).run(
        device, edge_file, memory, nodes=node_file,
        checkpoint=CheckpointManager(device),
    )
    return excinfo.value, out, device


def test_crash_matrix():
    """The keystone: sweep a crash point through every phase."""
    base_device, baseline = _uninterrupted()
    total = baseline.io.total
    schedule = _phase_schedule(base_device, baseline)

    assert schedule[-1][0] == "final-scan" and schedule[-1][2] > 0
    assert len(schedule) >= 6  # >=2 contract + semi + >=2 expand + scan

    for label, start, size in schedule:
        assert size > 0, f"phase {label} did no I/O — schedule is broken"
        ordinal = start + size // 2 + 1  # strictly inside the phase
        crash, out, _ = _crash_then_resume(ordinal)
        assert crash.ordinal == ordinal
        # The schedule's phase arithmetic matches the ledger's attribution
        # (the final scan runs outside any labelled phase).
        expected_phase = None if label == "final-scan" else label
        assert crash.phase == expected_phase
        # Identical labels after crash + resume.
        assert out.resumed
        assert out.result == baseline.result, f"crash in {label} changed labels"
        # Never re-pay more than the uninterrupted run still had ahead of
        # it at the start of the crashed phase.
        repaid = out.io.total - out.recovery_io.total
        assert repaid <= total - start, (
            f"crash in {label}: repaid {repaid} > remaining {total - start}"
        )


def test_crash_matrix_with_torn_writes():
    """Torn half-written blocks are detected and discarded on resume."""
    _, baseline = _uninterrupted()
    # Crash on write-heavy early ordinals with torn blocks left behind.
    for ordinal in (25, 150, 600):
        crash, out, device = _crash_then_resume(ordinal, torn=True)
        assert out.resumed
        assert out.result == baseline.result
        # The resumed run left no half-written garbage behind.
        assert sorted(device.list_files()) == ["input-edges", "input-nodes"]


@seed(20240731)
@settings(max_examples=12, deadline=None, derandomize=True)
@given(st.integers(min_value=1, max_value=2000))
def test_crash_anywhere_resumes_to_identical_labels(ordinal: int):
    """Property: a crash at *any* I/O ordinal resumes to the same labels."""
    try:
        _, out, _ = _crash_then_resume(ordinal)
    except SimulatedCrash:  # pragma: no cover - cannot happen (one-shot)
        raise
    assert out.resumed
    assert out.result == REFERENCE


def test_torn_block_fails_its_checksum(device):
    """A torn append is caught by verify_block as CorruptBlockError."""
    f = device.create("victim", record_size=8)
    device.append_block(f, [(1, 2), (3, 4)])
    device._torn_write(f, [(5, 6), (7, 8)])
    device.verify_block(f, 0)  # intact block passes
    with pytest.raises(CorruptBlockError):
        device.verify_block(f, 1)


def test_journal_survives_reopen_and_resume(tmp_path):
    """Persistent round trip: crash, abandon the process, reopen, resume."""
    directory = tmp_path / "ckpt"
    device = PersistentBlockDevice(directory, block_size=64)
    edge_file, node_file, memory = _load(device)
    manager = CheckpointManager(device)
    FaultInjector(crash_at_io=500, torn=True).attach(device)
    with pytest.raises(SimulatedCrash):
        ExtSCC(CONFIG).run(
            device, edge_file, memory, nodes=node_file, checkpoint=manager
        )
    device.sync()  # what a crash handler would do; journal is in the manifest

    # A "new process": reopen the directory, resume from the journal.
    device2 = PersistentBlockDevice(directory, block_size=64)
    assert device2.checkpoint_journal, "journal did not survive the manifest"
    memory2 = MemoryBudget(512)
    edge_file2, node_file2 = _reopen_inputs(device2)
    out = ExtSCC(CONFIG).run(
        device2, edge_file2, memory2, nodes=node_file2,
        checkpoint=CheckpointManager(device2),
    )
    device2.close()
    assert out.resumed
    assert out.result == REFERENCE
    assert out.recovery_io.total > 0
    # Orphaned .blk debris of the crashed run was garbage-collected.
    assert sorted(device2.list_files()) == ["input-edges", "input-nodes"]
    blk_files = {p.name for p in directory.glob("*.blk")}
    assert len(blk_files) == 2


def test_truncated_manifest_raises_clear_storage_error(tmp_path):
    """Satellite (a): a half-written manifest must not brick silently."""
    directory = tmp_path / "dev"
    device = PersistentBlockDevice(directory, block_size=64)
    f = device.create("data", record_size=8)
    device.append_block(f, [(1, 2)])
    device.close()
    manifest = directory / "manifest.json"
    text = manifest.read_text()
    manifest.write_text(text[: len(text) // 2])  # simulate a torn sync
    with pytest.raises(StorageError, match="corrupt or truncated manifest"):
        PersistentBlockDevice(directory, block_size=64)


def test_manifest_sync_is_atomic(tmp_path):
    """sync() goes through a temp file + rename; no .tmp debris remains
    and the manifest parses even though it was rewritten in place."""
    directory = tmp_path / "dev"
    device = PersistentBlockDevice(directory, block_size=64)
    f = device.create("data", record_size=8)
    device.append_block(f, [(1, 2)])
    device.sync()
    device.sync()
    assert not (directory / "manifest.json.tmp").exists()
    json.loads((directory / "manifest.json").read_text())
    device.close()


def test_resume_refuses_mismatched_parameters():
    """A journal written under one configuration cannot be resumed under
    another — the contraction levels would not line up."""
    device = BlockDevice(block_size=64)
    edge_file, node_file, memory = _load(device)
    manager = CheckpointManager(device)
    FaultInjector(crash_at_io=400).attach(device)
    with pytest.raises(SimulatedCrash):
        ExtSCC(CONFIG).run(
            device, edge_file, memory, nodes=node_file, checkpoint=manager
        )
    device.attach_injector(None)
    edge_file, node_file = _reopen_inputs(device)

    with pytest.raises(CheckpointError, match="memory"):
        ExtSCC(CONFIG).run(
            device, edge_file, MemoryBudget(1024), nodes=node_file,
            checkpoint=CheckpointManager(device),
        )
    other = ExtSCCConfig.optimized(pool_readahead=1)
    with pytest.raises(CheckpointError, match="configuration"):
        ExtSCC(other).run(
            device, edge_file, memory, nodes=node_file,
            checkpoint=CheckpointManager(device),
        )
    # With the right parameters the journal is still usable.
    out = ExtSCC(CONFIG).run(
        device, edge_file, memory, nodes=node_file,
        checkpoint=CheckpointManager(device),
    )
    assert out.resumed and out.result == REFERENCE


def test_recovery_ios_live_in_their_own_phase():
    """Journal-validation reads are attributed to the 'recovery' phase."""
    _, out, device = _crash_then_resume(700)
    assert out.recovery_io.total > 0
    assert device.stats.phase_total(RECOVERY_PHASE) == out.recovery_io.total
    # Recovery performs sequential validation scans only.
    assert out.recovery_io.random == 0
