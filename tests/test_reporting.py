"""Tests for sweep rendering: tables, charts, summaries, JSON."""

import json

import pytest

from repro.bench.harness import RunResult, Sweep
from repro.bench.reporting import (
    ascii_chart,
    format_sweep,
    shape_summary,
    sweep_to_json,
)


@pytest.fixture
def sweep():
    s = Sweep(title="Fig X", x_label="M")
    s.runs = [
        RunResult("Ext-SCC", 100, "OK", io_total=5000, io_random=0,
                  io_sequential=5000, wall_seconds=1.5, num_sccs=7, iterations=3),
        RunResult("DFS-SCC", 100, "OK", io_total=50000, io_random=40000,
                  io_sequential=10000, wall_seconds=4.0, num_sccs=7),
        RunResult("Ext-SCC", 200, "OK", io_total=500, io_random=0,
                  io_sequential=500, wall_seconds=0.2, num_sccs=7, iterations=0),
        RunResult("DFS-SCC", 200, "INF"),
    ]
    return s


class TestFormatSweep:
    def test_io_table(self, sweep):
        table = format_sweep(sweep, "io")
        assert "Fig X" in table
        assert "5,000" in table
        assert "INF" in table

    def test_time_table(self, sweep):
        table = format_sweep(sweep, "time")
        assert "1.50s" in table

    def test_random_table(self, sweep):
        assert "40,000" in format_sweep(sweep, "random")

    def test_unknown_metric(self, sweep):
        with pytest.raises(ValueError):
            format_sweep(sweep, "joules")

    def test_header_row(self, sweep):
        first_line = format_sweep(sweep, "io").splitlines()[1]
        assert "M" in first_line
        assert "Ext-SCC" in first_line and "DFS-SCC" in first_line


class TestAsciiChart:
    def test_bars_scale_with_values(self, sweep):
        chart = ascii_chart(sweep, "io", width=40)
        lines = {line.split("|")[0].strip(): line for line in chart.splitlines()
                 if "|" in line and "#" in line}
        big = lines["DFS-SCC @ 100"].count("#")
        small = lines["Ext-SCC @ 200"].count("#")
        assert big > small

    def test_inf_rendered_as_status(self, sweep):
        chart = ascii_chart(sweep, "io")
        assert "INF" in chart

    def test_empty_sweep(self):
        s = Sweep(title="empty", x_label="x")
        assert "no finished runs" in ascii_chart(s)

    def test_time_metric(self, sweep):
        assert "log scale" in ascii_chart(sweep, "time")


class TestShapeSummary:
    def test_ratio_reported(self, sweep):
        text = shape_summary(sweep, "Ext-SCC", "DFS-SCC")
        assert "10.0x" in text

    def test_inf_reported(self, sweep):
        text = shape_summary(sweep, "Ext-SCC", "DFS-SCC")
        assert "DFS-SCC -> INF" in text


class TestPrintSweep:
    def test_prints_requested_metrics(self, sweep, capsys):
        from repro.bench.reporting import print_sweep

        print_sweep(sweep, ["io"])
        out = capsys.readouterr().out
        assert "metric: io" in out
        assert "metric: time" not in out

    def test_default_metrics(self, sweep, capsys):
        from repro.bench.reporting import print_sweep

        print_sweep(sweep)
        out = capsys.readouterr().out
        assert "metric: io" in out and "metric: time" in out


class TestJsonExport:
    def test_roundtrip(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        assert payload["title"] == "Fig X"
        assert len(payload["runs"]) == 4
        first = payload["runs"][0]
        assert first["algorithm"] == "Ext-SCC"
        assert first["io_total"] == 5000
        assert first["iterations"] == 3

    def test_inf_run_serialized(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        inf_runs = [r for r in payload["runs"] if r["status"] == "INF"]
        assert len(inf_runs) == 1
        assert inf_runs[0]["num_sccs"] is None


class TestPhaseTable:
    def test_renders_per_phase_rows_and_total(self):
        from repro.bench.reporting import format_phase_table

        run = RunResult(
            "Ext-SCC", 20, "OK", io_total=1500, io_random=0,
            io_sequential=1500, num_sccs=3, merge_passes=4, runs_formed=9,
            phases={
                "contraction": {"io_total": 900, "io_sequential": 900,
                                "io_random": 0, "merge_passes": 3,
                                "runs_formed": 6},
                "contract-1": {"io_total": 900, "io_sequential": 900,
                               "io_random": 0, "merge_passes": 3,
                               "runs_formed": 6},
                "expansion": {"io_total": 600, "io_sequential": 600,
                              "io_random": 0, "merge_passes": 1,
                              "runs_formed": 3},
            },
        )
        table = format_phase_table(run)
        assert "contract-1" in table
        assert "expansion" in table
        assert "(run total)" in table
        assert "1,500" in table
        lines = table.splitlines()
        assert len(lines) == 2 + 3 + 1 + 1  # title, header+rule, phases, total

    def test_json_export_includes_pass_counters(self, sweep):
        sweep.runs[0].merge_passes = 5
        sweep.runs[0].runs_formed = 11
        sweep.runs[0].phases = {"contraction": {
            "io_total": 1, "io_sequential": 1, "io_random": 0,
            "merge_passes": 5, "runs_formed": 11}}
        payload = json.loads(sweep_to_json(sweep))
        run = payload["runs"][0]
        assert run["merge_passes"] == 5
        assert run["runs_formed"] == 11
        assert run["phases"]["contraction"]["merge_passes"] == 5


class TestCompressionColumns:
    def make_run(self):
        return RunResult(
            "Ext-SCC", 20, "OK", io_total=1500, io_sequential=1500,
            num_sccs=3, records_written=1000, bytes_logical=8000,
            bytes_stored=3200, width_profile={8: 3.2},
            phases={
                "contraction": {"io_total": 900, "io_sequential": 900,
                                "io_random": 0, "merge_passes": 3,
                                "runs_formed": 6, "records_written": 1000,
                                "bytes_logical": 8000, "bytes_stored": 3200},
            },
        )

    def test_ratio_properties(self):
        run = self.make_run()
        assert run.compression_ratio == pytest.approx(2.5)
        assert run.bytes_per_record == pytest.approx(3.2)

    def test_empty_run_defaults(self):
        run = RunResult("Ext-SCC", 0, "OK")
        assert run.compression_ratio == 1.0
        assert run.bytes_per_record == 0.0

    def test_phase_table_columns(self):
        from repro.bench.reporting import format_phase_table

        table = format_phase_table(self.make_run())
        assert "compression_ratio" in table
        assert "bytes_per_record" in table
        assert "2.50" in table
        assert "3.20" in table

    def test_phase_table_tolerates_missing_byte_fields(self):
        from repro.bench.reporting import format_phase_table

        run = self.make_run()
        run.phases["expansion"] = {"io_total": 1, "io_sequential": 1,
                                   "io_random": 0, "merge_passes": 0,
                                   "runs_formed": 0}
        table = format_phase_table(run)
        assert "expansion" in table  # renders "-" instead of crashing

    def test_json_export_includes_byte_ledger(self):
        s = Sweep(title="Fig X", x_label="M")
        s.runs = [self.make_run()]
        payload = json.loads(sweep_to_json(s))
        run = payload["runs"][0]
        assert run["bytes_logical"] == 8000
        assert run["bytes_stored"] == 3200
        assert run["compression_ratio"] == pytest.approx(2.5)
        assert run["bytes_per_record"] == pytest.approx(3.2)
        assert run["width_profile"] == {"8": pytest.approx(3.2)}
        assert run["phases"]["contraction"]["bytes_stored"] == 3200

    def test_real_run_populates_ledger(self):
        from tests.conftest import random_edges

        from repro.bench.harness import run_algorithm

        edges = random_edges(60, 150, seed=7)
        run = run_algorithm("Ext-SCC", edges, 60, memory_bytes=400,
                            block_size=64, x=60)
        assert run.ok
        assert run.records_written > 0
        assert run.bytes_stored > 0
        # gap-varint is the default: stored bytes beat logical bytes
        assert run.compression_ratio > 1.0
        assert any(p.get("records_written") for p in run.phases.values())
