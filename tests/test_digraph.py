"""Tests for the in-memory DiGraph."""

from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty(self):
        g = DiGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_from_edges(self):
        g = DiGraph([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_explicit_nodes(self):
        g = DiGraph([(0, 1)], nodes=[5, 6])
        assert g.num_nodes == 4
        assert g.has_node(5)

    def test_parallel_edges_collapse(self):
        g = DiGraph([(0, 1), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_allowed(self):
        g = DiGraph([(3, 3)])
        assert g.has_edge(3, 3)
        assert g.num_nodes == 1


class TestQueries:
    def test_neighbors(self):
        g = DiGraph([(0, 1), (0, 2), (3, 0)])
        assert g.out_neighbors(0) == {1, 2}
        assert g.in_neighbors(0) == {3}

    def test_degrees(self):
        g = DiGraph([(0, 1), (0, 2), (3, 0)])
        assert g.out_degree(0) == 2
        assert g.in_degree(0) == 1
        assert g.degree(0) == 3

    def test_has_edge(self):
        g = DiGraph([(0, 1)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edges_iteration(self):
        edges = {(0, 1), (1, 2), (2, 0)}
        g = DiGraph(edges)
        assert set(g.edges()) == edges


class TestDerived:
    def test_reversed(self):
        g = DiGraph([(0, 1), (1, 2)])
        r = g.reversed()
        assert set(r.edges()) == {(1, 0), (2, 1)}
        assert r.num_nodes == g.num_nodes

    def test_reversed_keeps_isolated_nodes(self):
        g = DiGraph([(0, 1)], nodes=[9])
        assert g.reversed().has_node(9)

    def test_subgraph(self):
        g = DiGraph([(0, 1), (1, 2), (2, 0), (2, 3)])
        s = g.subgraph({0, 1, 2})
        assert set(s.edges()) == {(0, 1), (1, 2), (2, 0)}
        assert not s.has_node(3)

    def test_edge_list_sorted(self):
        g = DiGraph([(2, 0), (0, 1)])
        assert g.edge_list() == [(0, 1), (2, 0)]
