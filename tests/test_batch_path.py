"""Batch record path ≡ scalar path: the block-granularity equivalence suite.

The batch APIs (``Codec.encoded_sizes`` / ``encode_block`` /
``decode_block``, ``CompressedRecordFile.extend``'s greedy block walk,
``VarRecordFile.append_batch``, ``ExternalFile.extend``'s threshold-exact
fill) exist purely to cut host-CPU overhead; they must never change what
is *computed*.  This suite pins the contract at every layer:

* file layer — batch ``extend`` produces byte-identical files (block
  cuts, stored bytes, scan output) and an identical I/O ledger to
  per-record ``append`` loops, for every codec and across
  ``BATCH_CHUNK`` boundaries;
* error paths — an invalid record mid-batch raises the same exception
  with the same already-committed prefix as the scalar path;
* pipeline layer — Ext-SCC labels and the full ledger are invariant
  under ``set_batch_enabled`` for every codec;
* the optional numpy sizing path agrees exactly with the pure loop.
"""

import random

import pytest

from tests.conftest import reference_sccs

from repro.core.config import ExtSCCConfig
from repro.core.ext_scc import ExtSCC
from repro.exceptions import StorageError
from repro.graph.datasets import build_dataset
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.codecs import (
    BATCH_CHUNK,
    CompressedRecordFile,
    FixedCodec,
    GapVarintCodec,
    VarintCodec,
    batch_enabled,
    numpy_enabled,
    set_batch_enabled,
    set_numpy_enabled,
)
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget


def _has_numpy() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.fixture
def scalar_mode():
    """Force the scalar (per-record) path for the duration of a test."""
    previous = set_batch_enabled(False)
    yield
    set_batch_enabled(previous)


def _codecs():
    return [
        FixedCodec(8),
        VarintCodec(8),
        GapVarintCodec(8, gap_field=0),
        GapVarintCodec(8, gap_field=1),
    ]


def _random_records(count, seed, span=1 << 20):
    rng = random.Random(seed)
    return [(rng.randint(-span, span), rng.randint(-span, span))
            for _ in range(count)]


def _write_compressed(codec, records, block_size, batch):
    """Write ``records`` through one CompressedRecordFile; return the file
    state and the device's ledger."""
    previous = set_batch_enabled(batch)
    try:
        device = BlockDevice(block_size=block_size)
        store = CompressedRecordFile(device, "data", 8, codec)
        store.extend(records)
        store.close()
        return {
            "records": list(store.scan()),
            "blocks": [list(b) for b in store.scan_blocks()],
            "stored": store.stored_bytes,
            "num_blocks": store.num_blocks,
            "ledger": device.stats.snapshot(),
            "payload": (device.stats.records_written,
                        device.stats.bytes_logical,
                        device.stats.bytes_stored),
        }
    finally:
        set_batch_enabled(previous)


class TestFileLayerEquivalence:
    @pytest.mark.parametrize("block_size", [32, 64, 128])
    def test_compressed_file_identical(self, block_size):
        records = _random_records(700, seed=block_size)
        for codec in _codecs():
            batch = _write_compressed(codec, records, block_size, batch=True)
            scalar = _write_compressed(codec, records, block_size, batch=False)
            assert batch == scalar, codec

    def test_sorted_stream_and_generator_input(self):
        records = sorted(_random_records(900, seed=3))
        codec = GapVarintCodec(8, gap_field=0)
        batch = _write_compressed(codec, iter(records), 64, batch=True)
        scalar = _write_compressed(codec, records, 64, batch=False)
        assert batch == scalar

    def test_across_chunk_boundaries(self):
        # More records than one BATCH_CHUNK: the gap chain must carry
        # across chunk boundaries exactly as the scalar _prev does.
        records = sorted(_random_records(BATCH_CHUNK + 500, seed=11))
        codec = GapVarintCodec(8, gap_field=0)
        batch = _write_compressed(codec, records, 64, batch=True)
        scalar = _write_compressed(codec, records, 64, batch=False)
        assert batch == scalar

    @pytest.mark.parametrize("as_generator", [False, True])
    def test_external_file_extend_matches_append(self, as_generator):
        records = _random_records(500, seed=21)
        batch_device = BlockDevice(block_size=64)
        batch_file = ExternalFile.create(batch_device, "f", 8)
        batch_file.extend(iter(records) if as_generator else records)
        batch_file.close()
        scalar_device = BlockDevice(block_size=64)
        scalar_file = ExternalFile.create(scalar_device, "f", 8)
        for record in records:
            scalar_file.append(record)
        scalar_file.close()
        assert list(batch_file.scan()) == list(scalar_file.scan())
        assert batch_file.num_blocks == scalar_file.num_blocks
        assert batch_device.stats.snapshot() == scalar_device.stats.snapshot()

    def test_closed_file_rejects_extend(self):
        device = BlockDevice(block_size=64)
        store = CompressedRecordFile(device, "data", 8, VarintCodec(8))
        store.close()
        with pytest.raises(StorageError):
            store.extend([(1, 2)])


class TestErrorPathParity:
    def _oversized_run(self, batch):
        """Feed a record whose encoding exceeds the block size mid-stream;
        return (exception type, committed records, ledger)."""
        previous = set_batch_enabled(batch)
        try:
            device = BlockDevice(block_size=32)
            store = CompressedRecordFile(device, "data", 8, VarintCodec(8))
            good = [(i, i) for i in range(10)]
            bad = (1 << 400, 1 << 400)  # ~116 encoded bytes > the 32-byte block
            with pytest.raises(StorageError) as excinfo:
                store.extend(good + [bad] + [(7, 7)])
            store.close()
            return (str(excinfo.value), list(store.scan()),
                    device.stats.snapshot())
        finally:
            set_batch_enabled(previous)

    def test_oversized_record_identical_partial_state(self):
        assert self._oversized_run(batch=True) == self._oversized_run(batch=False)


class TestPipelineEquivalence:
    def _run(self, edges, num_nodes, codec):
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(512)
        edge_file = EdgeFile.from_edges(device, "edges", edges)
        node_file = NodeFile.from_ids(
            device, "nodes", range(num_nodes), memory, presorted=True
        )
        config = ExtSCCConfig.baseline(pool_readahead=1, codec=codec)
        before = device.stats.snapshot()
        out = ExtSCC(config).run(device, edge_file, memory, nodes=node_file)
        return out, device.stats.snapshot() - before

    @pytest.mark.parametrize("codec", ["fixed", "varint", "gap-varint"])
    def test_labels_and_ledger_invariant_under_batch_toggle(self, codec):
        graph = build_dataset("webspam", num_nodes=80, seed=5)
        edges, n = list(graph.edges), graph.num_nodes
        batch_out, batch_io = self._run(edges, n, codec)
        previous = set_batch_enabled(False)
        try:
            scalar_out, scalar_io = self._run(edges, n, codec)
        finally:
            set_batch_enabled(previous)
        assert batch_out.result.labels == scalar_out.result.labels
        assert batch_io == scalar_io
        assert batch_out.result == reference_sccs(edges, n)

    def test_phase_seconds_cover_top_level_phases(self):
        graph = build_dataset("large-scc", num_nodes=80, seed=9)
        out, _ = self._run(list(graph.edges), graph.num_nodes, "gap-varint")
        assert set(out.phase_seconds) >= {"contraction", "semi-scc", "expansion"}
        assert all(seconds >= 0.0 for seconds in out.phase_seconds.values())
        assert sum(out.phase_seconds.values()) <= out.wall_seconds + 0.25


@pytest.mark.skipif(not _has_numpy(), reason="numpy not installed")
class TestNumpySizingPath:
    def test_sizes_agree_with_pure_loop(self):
        records = sorted(_random_records(2000, seed=13, span=1 << 40))
        previous = set_numpy_enabled(True)
        try:
            assert numpy_enabled()
            for codec in _codecs():
                fast = codec.encoded_sizes(records)
                with_prev = codec.encoded_sizes(records, records[0])
                set_numpy_enabled(False)
                assert codec.encoded_sizes(records) == fast
                assert codec.encoded_sizes(records, records[0]) == with_prev
                set_numpy_enabled(True)
        finally:
            set_numpy_enabled(previous)

    def test_bigint_fallback(self):
        # Values beyond int64 overflow numpy's asarray; the sizing must
        # silently fall back to the pure loop and still be exact.
        records = [(1 << 100, -(1 << 90))] * 400
        codec = VarintCodec(8)
        previous = set_numpy_enabled(True)
        try:
            fast = codec.encoded_sizes(records)
        finally:
            set_numpy_enabled(previous)
        expected = []
        prev = None
        for record in records:
            expected.append(codec.encoded_size(record, prev))
            prev = record
        assert fast == expected


def test_batch_flag_roundtrip():
    assert batch_enabled()  # the default everywhere outside scalar_mode
    previous = set_batch_enabled(False)
    assert previous is True
    assert not batch_enabled()
    assert set_batch_enabled(True) is False
    assert batch_enabled()
