"""Tests for the contraction phase: the three Section V properties.

* contractible — ``V_{i+1}`` is a proper subset of ``V_i`` (Lemma 5.2);
* recoverable — ``V_{i+1}`` covers every edge of ``G_i`` (Lemma 5.1);
* SCC-preservable — strong connectivity between surviving nodes is
  unchanged in ``G_{i+1}`` (Lemma 5.3);

plus the removed-degree bound of Theorem 5.3 and the Section VII toggles.
"""

import math

import pytest

from tests.conftest import make_graph_files, random_edges, reference_sccs

from repro.core.config import ExtSCCConfig
from repro.core.contraction import contract
from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, planted_scc_graph


def contract_once(device, memory, edges, num_nodes, config):
    edge_file, node_file = make_graph_files(device, edges, num_nodes, memory)
    return contract(device, edge_file, node_file, memory, config, level=1)


CONFIGS = {
    "baseline": ExtSCCConfig.baseline(),
    "optimized": ExtSCCConfig.optimized(),
}


@pytest.fixture(params=sorted(CONFIGS), ids=str)
def config(request):
    return CONFIGS[request.param]


class TestContractible:
    @pytest.mark.parametrize("seed", range(4))
    def test_strictly_fewer_nodes(self, device, memory, config, seed):
        edges = random_edges(40, 100, seed)
        level = contract_once(device, memory, edges, 40, config)
        assert level.next_nodes.num_nodes < 40

    def test_progress_on_complete_graph(self, device, memory, config):
        edges = [(u, v) for u in range(8) for v in range(8) if u != v]
        level = contract_once(device, memory, edges, 8, config)
        assert level.next_nodes.num_nodes < 8

    def test_progress_with_self_loops_everywhere(self, device, memory, config):
        edges = [(i, i) for i in range(6)] + [(0, 1), (1, 2)]
        level = contract_once(device, memory, edges, 6, config)
        assert level.next_nodes.num_nodes < 6


class TestRecoverable:
    @pytest.mark.parametrize("seed", range(4))
    def test_cover_property(self, device, memory, config, seed):
        """Every edge of G_i has an endpoint in V_{i+1} — except edges
        incident to Type-1-trimmed dead-end nodes in optimized mode."""
        edges = random_edges(40, 100, seed)
        level = contract_once(device, memory, edges, 40, config)
        cover = set(level.next_nodes.scan())
        graph = DiGraph(edges, nodes=range(40))
        for u, v in edges:
            if u == v:
                continue
            if config.trim_type1:
                trimmed = (
                    graph.in_degree(u) == 0 or graph.out_degree(u) == 0
                    or graph.in_degree(v) == 0 or graph.out_degree(v) == 0
                )
                if trimmed:
                    continue
            assert u in cover or v in cover, (u, v)

    def test_removed_and_next_partition_nodes(self, device, memory, config):
        edges = random_edges(30, 70, seed=7)
        level = contract_once(device, memory, edges, 30, config)
        removed = list(level.removed.scan())
        kept = list(level.next_nodes.scan())
        assert sorted(removed + kept) == list(range(30))


class TestSCCPreservable:
    @pytest.mark.parametrize("seed", range(6))
    def test_pairwise_equivalence(self, device, memory, config, seed):
        """Lemma 5.3 on surviving nodes, against the in-memory reference."""
        edges = random_edges(35, 90, seed, self_loops=True)
        level = contract_once(device, memory, edges, 35, config)
        kept = list(level.next_nodes.scan())
        before = reference_sccs(edges, 35)
        after = reference_sccs(list(level.next_edges.scan()), 35)
        for i, u in enumerate(kept):
            for v in kept[i + 1:]:
                assert before.strongly_connected(u, v) == after.strongly_connected(u, v), (u, v)

    def test_next_edges_reference_only_next_nodes(self, device, memory, config):
        edges = random_edges(35, 90, seed=2, self_loops=True)
        level = contract_once(device, memory, edges, 35, config)
        kept = set(level.next_nodes.scan())
        for u, v in level.next_edges.scan():
            assert u in kept and v in kept


class TestTheorem53:
    @pytest.mark.parametrize("seed", range(3))
    def test_removed_degree_bound(self, device, memory, seed):
        """deg(v, G_i) <= sqrt(2 |E_i|) for every removed node (base op)."""
        edges = random_edges(40, 110, seed)
        level = contract_once(device, memory, edges, 40, ExtSCCConfig.baseline())
        graph = DiGraph(edges, nodes=range(40))
        bound = math.sqrt(2 * len(edges))
        for v in level.removed.scan():
            assert graph.degree(v) <= bound


class TestSectionVII:
    def test_type1_removes_dead_end_nodes(self, device, memory):
        # 0 -> 1 -> 2 with a 2-cycle {3,4}: 0 (indeg 0) and 2 (outdeg 0)
        # are trimmed under Type-1.
        edges = [(0, 1), (1, 2), (3, 4), (4, 3), (1, 3)]
        level = contract_once(device, memory, edges, 5, ExtSCCConfig.optimized())
        kept = set(level.next_nodes.scan())
        assert 0 not in kept
        assert 2 not in kept

    def test_self_loop_removal(self, device, memory):
        # Removing node 1 of 0 -> 1 -> 0 creates the bypass self-loop (0,0).
        edges = [(0, 1), (1, 0), (0, 2), (2, 0), (2, 3), (3, 2)]
        base = contract_once(device, memory, edges, 4, ExtSCCConfig.baseline())
        opt = contract_once(
            device, memory, edges, 4,
            ExtSCCConfig(remove_self_loops=True),
        )
        base_loops = sum(1 for u, v in base.next_edges.scan() if u == v)
        opt_loops = sum(1 for u, v in opt.next_edges.scan() if u == v)
        assert opt_loops == 0
        assert base_loops >= opt_loops

    def test_dedupe_reduces_edge_records(self, device, memory):
        edges = random_edges(20, 50, seed=0) * 3  # heavy parallels
        base = contract_once(device, memory, edges, 20, ExtSCCConfig.baseline())
        opt = contract_once(
            device, memory, edges, 20, ExtSCCConfig(dedupe_parallel_edges=True)
        )
        assert opt.next_edges.num_edges < base.next_edges.num_edges

    @pytest.mark.parametrize("seed", range(3))
    def test_optimized_never_more_nodes(self, device, memory, seed):
        edges = random_edges(40, 100, seed)
        base = contract_once(device, memory, edges, 40, ExtSCCConfig.baseline())
        opt = contract_once(device, memory, edges, 40, ExtSCCConfig.optimized())
        assert opt.next_nodes.num_nodes <= base.next_nodes.num_nodes


class TestIOProfile:
    def test_contraction_only_sequential(self, device, memory, config):
        edges = random_edges(40, 100, seed=0)
        contract_once(device, memory, edges, 40, config)
        assert device.stats.random == 0

    def test_iteration_metadata(self, device, memory, config):
        edges = random_edges(25, 60, seed=0)
        level = contract_once(device, memory, edges, 25, config)
        assert level.level == 1
        assert level.num_nodes == 25
        assert level.num_edges == 60
