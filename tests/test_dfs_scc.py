"""Tests for the DFS-SCC baseline (external Kosaraju, [8])."""

import pytest

from tests.conftest import make_graph_files, random_edges, reference_sccs

from repro.baselines import dfs_scc
from repro.exceptions import IOBudgetExceeded
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.graph.generators import cycle_graph, path_graph, random_dag, webspam_like
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.io.stats import IOBudget


def run_dfs(edges, num_nodes, block_size=64, memory_bytes=512, io_budget=None):
    budget = IOBudget(io_budget) if io_budget is not None else None
    device = BlockDevice(block_size=block_size, budget=budget)
    memory = MemoryBudget(memory_bytes)
    edge_file = EdgeFile.from_edges(device, "E", edges)
    node_file = NodeFile.from_ids(device, "V", range(num_nodes), memory, presorted=True)
    return dfs_scc(device, edge_file, node_file, memory), device


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        edges = random_edges(40, 100, seed, self_loops=True)
        out, _ = run_dfs(edges, 40)
        assert out.result == reference_sccs(edges, 40)

    def test_cycle(self):
        out, _ = run_dfs(cycle_graph(30).edges, 30)
        assert out.result.num_sccs == 1

    def test_path(self):
        out, _ = run_dfs(path_graph(30).edges, 30)
        assert out.result.num_sccs == 30

    def test_dag(self):
        g = random_dag(50, 120, seed=3)
        out, _ = run_dfs(g.edges, 50)
        assert out.result.num_sccs == 50

    def test_isolated_nodes(self):
        out, _ = run_dfs([(0, 1), (1, 0)], 6)
        assert out.result.num_sccs == 5

    def test_webspam(self):
        g = webspam_like(150, avg_degree=4.0, seed=1)
        out, _ = run_dfs(g.edges, 150, memory_bytes=1024)
        assert out.result == reference_sccs(g.edges, 150)

    def test_parallel_edges(self):
        edges = [(0, 1), (0, 1), (1, 0), (1, 0)]
        out, _ = run_dfs(edges, 2)
        assert out.result.num_sccs == 1

    def test_empty_graph(self):
        out, _ = run_dfs([], 4)
        assert out.result.num_sccs == 4


class TestIOProfile:
    def test_generates_random_io(self):
        """The paper's critique: external DFS is random-I/O bound."""
        edges = random_edges(60, 150, seed=0)
        out, device = run_dfs(edges, 60)
        assert out.io.random > 0
        assert out.io.random > out.io.sequential * 0.2

    def test_brt_messages_flow(self):
        edges = random_edges(40, 100, seed=1)
        out, _ = run_dfs(edges, 40)
        # Two passes x one message per non-self-loop edge endpoint visit.
        assert out.brt_messages > 0

    def test_budget_can_inf_it(self):
        edges = random_edges(80, 220, seed=2)
        with pytest.raises(IOBudgetExceeded):
            run_dfs(edges, 80, io_budget=200)

    def test_more_io_than_ext_scc(self):
        """The paper's headline comparison at equal memory."""
        from repro.core import compute_sccs

        edges = random_edges(80, 200, seed=5)
        ext = compute_sccs(edges, num_nodes=80, memory_bytes=512,
                           block_size=64, optimized=True)
        dfs, _ = run_dfs(edges, 80, memory_bytes=512)
        assert dfs.result == ext.result
        assert dfs.io.random > ext.io.random  # ext random is 0
