"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_size
from repro.graph.io_formats import read_edge_text, write_edge_text
from repro.graph.generators import cycle_graph


class TestParseSize:
    def test_plain_number(self):
        assert parse_size("4096") == 4096

    def test_suffixes(self):
        assert parse_size("64K") == 64 * 1024
        assert parse_size("4M") == 4 * 1024 * 1024
        assert parse_size("1G") == 1 << 30

    def test_lowercase_and_spaces(self):
        assert parse_size(" 2k ") == 2048

    def test_fractional(self):
        assert parse_size("0.5M") == 512 * 1024

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_size("lots")


class TestGenerate:
    def test_generate_text(self, tmp_path):
        out = tmp_path / "g.txt"
        code = main(["generate", "large-scc", str(out),
                     "--nodes", "300", "--seed", "3"])
        assert code == 0
        edges = list(read_edge_text(out))
        assert len(edges) > 300

    def test_generate_binary(self, tmp_path):
        out = tmp_path / "g.bin"
        code = main(["generate", "webspam", str(out),
                     "--nodes", "200", "--binary"])
        assert code == 0
        from repro.graph.io_formats import read_edge_binary

        assert len(list(read_edge_binary(out))) > 0

    def test_generate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["generate", "small-scc", str(a), "--nodes", "300", "--seed", "9"])
        main(["generate", "small-scc", str(b), "--nodes", "300", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestScc:
    @pytest.fixture
    def edge_path(self, tmp_path):
        path = tmp_path / "cycle.txt"
        write_edge_text(path, cycle_graph(50).edges)
        return path

    def test_scc_labels_file(self, tmp_path, edge_path, capsys):
        labels_path = tmp_path / "labels.txt"
        code = main(["scc", str(edge_path), "-o", str(labels_path),
                     "-m", "300", "-b", "64"])
        assert code == 0
        lines = labels_path.read_text().splitlines()
        assert len(lines) == 50
        labels = {int(l.split()[1]) for l in lines}
        assert labels == {0}  # one SCC
        assert "sccs: 1" in capsys.readouterr().err

    def test_scc_baseline_algorithm(self, edge_path, capsys):
        code = main(["scc", str(edge_path), "-m", "300", "-b", "64",
                     "--algorithm", "ext-scc"])
        assert code == 0
        assert "iterations:" in capsys.readouterr().err

    def test_scc_explicit_node_count(self, tmp_path, capsys):
        path = tmp_path / "e.txt"
        write_edge_text(path, [(0, 1)])
        code = main(["scc", str(path), "--nodes", "5", "-m", "16K"])
        assert code == 0
        assert "sccs: 5" in capsys.readouterr().err

    def test_missing_input(self, capsys):
        code = main(["scc", "/nonexistent/file.txt"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSccCheckpoint:
    @pytest.fixture
    def edge_path(self, tmp_path):
        path = tmp_path / "cycle.txt"
        write_edge_text(path, cycle_graph(50).edges)
        return path

    def test_checkpointed_run_writes_labels(self, tmp_path, edge_path, capsys):
        labels_path = tmp_path / "labels.txt"
        ckpt = tmp_path / "ckpt"
        code = main(["scc", str(edge_path), "-o", str(labels_path),
                     "-m", "300", "-b", "64", "--checkpoint-dir", str(ckpt)])
        assert code == 0
        lines = labels_path.read_text().splitlines()
        assert len(lines) == 50
        assert {int(l.split()[1]) for l in lines} == {0}
        assert (ckpt / "manifest.json").exists()
        assert "sccs: 1" in capsys.readouterr().err

    def test_crash_then_resume(self, tmp_path, edge_path, capsys, monkeypatch):
        """A killed checkpointed run is picked back up by --resume."""
        import repro.io.persistent as persistent
        from repro.recovery import FaultInjector

        real = persistent.PersistentBlockDevice

        class Crashing(real):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                FaultInjector(crash_at_io=100).attach(self)

        monkeypatch.setattr(persistent, "PersistentBlockDevice", Crashing)
        labels_path = tmp_path / "labels.txt"
        ckpt = tmp_path / "ckpt"
        argv = ["scc", str(edge_path), "-o", str(labels_path),
                "-m", "300", "-b", "64", "--checkpoint-dir", str(ckpt)]
        code = main(argv)
        assert code == 2
        assert "error:" in capsys.readouterr().err
        assert not labels_path.exists()

        monkeypatch.setattr(persistent, "PersistentBlockDevice", real)
        code = main(argv + ["--resume"])
        err = capsys.readouterr().err
        assert code == 0
        assert "resumed from checkpoint" in err
        lines = labels_path.read_text().splitlines()
        assert len(lines) == 50
        assert {int(l.split()[1]) for l in lines} == {0}


class TestBench:
    @pytest.fixture
    def edge_path(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_text(path, cycle_graph(80).edges)
        return path

    def test_bench_ok(self, edge_path, capsys):
        code = main(["bench", str(edge_path), "-a", "Ext-SCC-Op",
                     "-m", "400", "-b", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ext-SCC-Op: OK" in out

    def test_bench_inf_exit_code(self, edge_path, capsys):
        code = main(["bench", str(edge_path), "-a", "DFS-SCC",
                     "-m", "400", "-b", "64", "--io-budget", "10"])
        assert code == 1
        assert "INF" in capsys.readouterr().out

    def test_bench_derives_node_count(self, edge_path, capsys):
        code = main(["bench", str(edge_path), "-m", "16K"])
        assert code == 0
        assert "sccs: 1" in capsys.readouterr().out


class TestStats:
    def test_stats_output(self, tmp_path, capsys):
        path = tmp_path / "star.txt"
        write_edge_text(path, [(0, i) for i in range(1, 6)])
        code = main(["stats", str(path), "-m", "16K"])
        assert code == 0
        out = capsys.readouterr().out
        assert "edges:           5" in out
        assert "sources/sinks:   1/5" in out

    def test_stats_histogram(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_text(path, cycle_graph(4).edges)
        code = main(["stats", str(path), "--histogram", "-m", "16K"])
        assert code == 0
        assert "deg     2: 4" in capsys.readouterr().out


class TestVerify:
    @pytest.fixture
    def workload(self, tmp_path):
        edge_path = tmp_path / "g.txt"
        write_edge_text(edge_path, cycle_graph(20).edges)
        labels_path = tmp_path / "labels.txt"
        assert main(["scc", str(edge_path), "-o", str(labels_path),
                     "-m", "16K"]) == 0
        return edge_path, labels_path

    def test_verify_ok(self, workload, capsys):
        edge_path, labels_path = workload
        assert main(["verify", str(edge_path), str(labels_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_detects_corruption(self, workload, tmp_path, capsys):
        edge_path, labels_path = workload
        lines = labels_path.read_text().splitlines()
        lines[3] = "3 3"  # break node 3 out of the cycle's SCC
        bad = tmp_path / "bad.txt"
        bad.write_text("\n".join(lines) + "\n")
        assert main(["verify", str(edge_path), str(bad)]) == 1
        assert "MISMATCH" in capsys.readouterr().err


class TestExplain:
    def test_feasible_plan(self, capsys):
        code = main(["explain", "--nodes", "10000", "--edges", "40000",
                     "-m", "40K", "-b", "512"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ext-SCC plan" in out
        assert "TOTAL predicted" in out

    def test_infeasible_plan_exit_code(self, capsys):
        code = main(["explain", "--nodes", "10000", "--edges", "40000",
                     "-m", "40K", "-b", "512", "--node-retention", "1.0"])
        assert code == 1
        assert "NOT FEASIBLE" in capsys.readouterr().out

    def test_no_iterations_when_fits(self, capsys):
        code = main(["explain", "--nodes", "100", "--edges", "300", "-m", "1M"])
        assert code == 0
        assert "(0 iterations)" in capsys.readouterr().out


class TestVerboseScc:
    def test_verbose_prints_iterations(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_text(path, cycle_graph(60).edges)
        code = main(["scc", str(path), "-m", "300", "-b", "64", "-v"])
        assert code == 0
        assert "iteration 1:" in capsys.readouterr().err


class TestWorkerValidation:
    """``--workers 0`` used to be silently accepted (and ran serial);
    it must now be an argparse error, like any other malformed value."""

    @pytest.fixture
    def edge_path(self, tmp_path):
        path = tmp_path / "cycle.txt"
        write_edge_text(path, cycle_graph(20).edges)
        return path

    @pytest.mark.parametrize("value", ["0", "-2", "two"])
    @pytest.mark.parametrize("command", ["scc", "bench"])
    def test_bad_workers_rejected(self, edge_path, capsys, command, value):
        with pytest.raises(SystemExit) as excinfo:
            main([command, str(edge_path), "--workers", value])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["scc", "bench"])
    def test_unknown_executor_rejected(self, edge_path, capsys, command):
        with pytest.raises(SystemExit) as excinfo:
            main([command, str(edge_path), "--executor", "fibers"])
        assert excinfo.value.code == 2
        assert "--executor" in capsys.readouterr().err

    def test_workers_one_is_fine(self, edge_path, capsys):
        assert main(["scc", str(edge_path), "-m", "16K",
                     "--workers", "1"]) == 0


class TestExplainAndTrace:
    @pytest.fixture
    def edge_path(self, tmp_path):
        path = tmp_path / "cycle.txt"
        write_edge_text(path, cycle_graph(60).edges)
        return path

    def test_explain_prints_operator_dag(self, edge_path, capsys):
        code = main(["scc", str(edge_path), "-m", "300", "-b", "64",
                     "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan contract-1" in out
        assert "pred.I/Os" in out
        assert "rewrites:" in out
        assert "Ext-SCC plan:" in out  # the analytic schedule follows

    def test_explain_semi_when_input_fits(self, edge_path, capsys):
        code = main(["scc", str(edge_path), "-m", "16K", "--explain"])
        assert code == 0
        assert "plan semi-scc" in capsys.readouterr().out

    def test_explain_runs_nothing(self, tmp_path, edge_path, capsys):
        labels = tmp_path / "labels.txt"
        code = main(["scc", str(edge_path), "-m", "300", "-b", "64",
                     "--explain", "-o", str(labels)])
        assert code == 0
        assert not labels.exists()
        assert "sccs:" not in capsys.readouterr().err

    def test_trace_json_written(self, tmp_path, edge_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(["scc", str(edge_path), "-m", "300", "-b", "64",
                     "--trace-json", str(trace_path)])
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert payload["spans"]
        assert payload["total_measured"] > 0
        stages = {(s["plan"], s["stage"]) for s in payload["spans"]}
        assert ("semi-scc", "semi-scc") in stages
        assert "trace (" in capsys.readouterr().err


class TestAutotuneCli:
    @pytest.fixture
    def edge_path(self, tmp_path):
        path = tmp_path / "cycle.txt"
        write_edge_text(path, cycle_graph(60).edges)
        return path

    def test_autotune_run_reports_decision(self, edge_path, capsys):
        code = main(["scc", str(edge_path), "-m", "16K", "--autotune"])
        assert code == 0
        err = capsys.readouterr().err
        assert "autotune[io]:" in err
        assert "candidates" in err
        assert "sccs: 1" in err

    def test_explain_autotune_prints_candidate_table(self, edge_path, capsys):
        code = main(["scc", str(edge_path), "-m", "16K", "--explain",
                     "--autotune"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rank codec" in out
        assert "pred.I/Os" in out
        assert "->" in out  # the chosen row's marker
        assert "autotune[io]=" in out  # provenance in the plan rewrites

    def test_objective_flag_threads_through(self, edge_path, capsys):
        code = main(["scc", str(edge_path), "-m", "16K", "--autotune",
                     "--objective", "wallclock"])
        assert code == 0
        assert "autotune[wallclock]:" in capsys.readouterr().err

    def test_autotune_resume_refused(self, edge_path, capsys):
        code = main(["scc", str(edge_path), "-m", "16K", "--autotune",
                     "--resume"])
        assert code == 2
        assert "--autotune" in capsys.readouterr().err

    def test_bench_autotune_only_for_ext_scc(self, edge_path, capsys):
        code = main(["bench", str(edge_path), "-a", "DFS-SCC", "-m", "16K",
                     "--autotune"])
        assert code == 2
        assert "Ext-SCC" in capsys.readouterr().err

    def test_bench_autotune_reports_decision(self, edge_path, capsys):
        code = main(["bench", str(edge_path), "-m", "16K", "--autotune"])
        assert code == 0
        out = capsys.readouterr().out
        assert "autotune[io]:" in out
        assert "candidates" in out

    def test_plan_cache_warm_hit(self, tmp_path, edge_path, capsys):
        cache_path = tmp_path / "plans.json"
        argv = ["scc", str(edge_path), "-m", "16K", "--autotune",
                "--plan-cache", str(cache_path)]
        assert main(argv) == 0
        assert "candidates in" in capsys.readouterr().err
        assert cache_path.exists()
        assert main(argv) == 0
        assert "(plan cache)" in capsys.readouterr().err

    def test_calibration_written_and_reused(self, tmp_path, edge_path,
                                            capsys):
        cal_path = tmp_path / "calibration.json"
        argv = ["scc", str(edge_path), "-m", "16K",
                "--calibration", str(cal_path)]
        assert main(argv) == 0
        assert "calibration profile updated" in capsys.readouterr().err
        import json

        payload = json.loads(cal_path.read_text())
        assert payload["runs"] == 1
        assert main(argv) == 0
        assert json.loads(cal_path.read_text())["runs"] == 2

    def test_checkpoint_dir_gets_calibration_by_convention(
            self, tmp_path, edge_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(["scc", str(edge_path), "-m", "300", "-b", "64",
                     "--checkpoint-dir", str(ckpt)])
        assert code == 0
        assert (ckpt / "calibration.json").exists()

    def test_trace_json_carries_plans_and_context(self, tmp_path, edge_path):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(["scc", str(edge_path), "-m", "16K", "--autotune",
                     "--trace-json", str(trace_path)])
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert payload["plans"], "executed plans must be serialized"
        plan = payload["plans"][0]
        assert any("autotune[io]=" in r for r in plan["rewrites"])
        assert all("predicted_makespan" in op for op in plan["ops"])
        context = payload["context"]
        assert context["codec"] == payload["context"]["autotune"][
            "candidates"][context["autotune"]["chosen"]]["codec"]
        assert context["bytes_by_width"]
        planning = [s for s in payload["spans"] if s["phase"] == "planning"]
        assert len(planning) == 1


class TestProcessesExecutorCli:
    """``--executor processes`` is a first-class choice: accepted where the
    platform can fork/spawn, rejected with a clear message (exit 2, not a
    crash) where it cannot."""

    @pytest.fixture
    def edge_path(self, tmp_path):
        path = tmp_path / "cycle.txt"
        write_edge_text(path, cycle_graph(20).edges)
        return path

    def test_accepted_when_available(self, edge_path, capsys, monkeypatch):
        from repro.io import parallel

        monkeypatch.setattr(parallel, "_processes_override", True)
        assert main(["scc", str(edge_path), "-m", "16K",
                     "--executor", "processes"]) == 0

    @pytest.mark.parametrize("command", ["scc", "bench"])
    def test_rejected_when_unavailable(self, edge_path, capsys, monkeypatch,
                                       command):
        from repro.io import parallel

        monkeypatch.setattr(parallel, "_processes_override", False)
        code = main([command, str(edge_path), "--executor", "processes"])
        assert code == 2
        err = capsys.readouterr().err
        assert "processes" in err and "unavailable" in err

    def test_verbose_scc_reports_wall_by_phase(self, edge_path, capsys):
        assert main(["scc", str(edge_path), "-m", "300", "-b", "64",
                     "-v"]) == 0
        err = capsys.readouterr().err
        assert "wall by phase:" in err
        assert "semi-scc" in err

    def test_bench_reports_wall_by_phase(self, edge_path, capsys):
        assert main(["bench", str(edge_path), "-m", "300", "-b", "64"]) == 0
        out = capsys.readouterr().out
        assert "wall:" in out
        assert "wall by phase:" in out


class TestFaultToleranceFlags:
    @pytest.fixture
    def edge_path(self, tmp_path):
        path = tmp_path / "cycle.txt"
        write_edge_text(path, cycle_graph(50).edges)
        return path

    def test_fault_policy_and_parity_run_clean(self, edge_path, capsys):
        code = main(["scc", str(edge_path), "-m", "16K", "-v",
                     "--fault-policy", "retries=5,seed=7", "--parity"])
        assert code == 0
        err = capsys.readouterr().err
        assert "health: retries=0" in err
        assert "escalations=0" in err

    def test_health_line_absent_without_fault_machinery(self, edge_path, capsys):
        assert main(["scc", str(edge_path), "-m", "16K", "-v"]) == 0
        assert "health:" not in capsys.readouterr().err

    def test_bench_accepts_fault_flags(self, edge_path, capsys):
        code = main(["bench", str(edge_path), "-m", "16K",
                     "--fault-policy", "retries=2", "--parity"])
        assert code == 0
        assert "health:" in capsys.readouterr().out

    def test_bad_fault_policy_spec_is_usage_error(self, edge_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["scc", str(edge_path), "--fault-policy", "bogus=1"])
        assert excinfo.value.code == 2
        assert "fault-policy" in capsys.readouterr().err

    def test_parity_refused_with_checkpoint_dir(self, edge_path, tmp_path, capsys):
        code = main(["scc", str(edge_path), "--parity",
                     "--checkpoint-dir", str(tmp_path / "ckpt")])
        assert code == 2
        assert "--parity" in capsys.readouterr().err

    def test_trace_json_carries_health(self, edge_path, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(["scc", str(edge_path), "-m", "16K", "--parity",
                     "--trace-json", str(trace_path)])
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert payload["context"]["health"]["parity_writes"] > 0
        assert payload["context"]["health"]["retries"] == 0


class TestFaultExitCodes:
    """The documented exit-code contract: 5 = retries exhausted,
    4 = unrecoverable corruption, 3 = storage fault, 2 = everything else
    (including the fail-stop SimulatedCrash, unchanged since PR 3)."""

    @pytest.fixture
    def edge_path(self, tmp_path):
        path = tmp_path / "e.txt"
        write_edge_text(path, [(0, 1), (1, 0)])
        return path

    def _run_raising(self, monkeypatch, edge_path, exc):
        import repro.cli as cli

        def boom(*args, **kwargs):
            raise exc

        monkeypatch.setattr(cli, "compute_sccs", boom)
        return main(["scc", str(edge_path), "-m", "16K"])

    def test_retry_exhaustion_exits_5(self, edge_path, capsys, monkeypatch):
        from repro.exceptions import RetryExhaustedError, TransientIOError

        code = self._run_raising(
            monkeypatch, edge_path,
            RetryExhaustedError(4, TransientIOError("flaky read")),
        )
        assert code == 5
        err = capsys.readouterr().err
        assert "error:" in err
        assert "retries exhausted" in err and "--fault-policy" in err

    def test_corrupt_block_exits_4(self, edge_path, capsys, monkeypatch):
        from repro.exceptions import CorruptBlockError

        code = self._run_raising(
            monkeypatch, edge_path, CorruptBlockError("edges", 3)
        )
        assert code == 4
        err = capsys.readouterr().err
        assert "error:" in err and "--parity" in err

    def test_storage_error_exits_3(self, edge_path, capsys, monkeypatch):
        from repro.exceptions import StorageError

        code = self._run_raising(monkeypatch, edge_path, StorageError("no such file"))
        assert code == 3
        assert "error:" in capsys.readouterr().err

    def test_repro_error_still_exits_2(self, edge_path, capsys, monkeypatch):
        from repro.exceptions import NonTermination

        code = self._run_raising(monkeypatch, edge_path, NonTermination("loop"))
        assert code == 2

    def test_real_retry_exhaustion_through_the_device(self, edge_path, capsys,
                                                      monkeypatch):
        # End-to-end: a persistent transient fault escalates out of the
        # device, through compute_sccs, to exit code 5.
        import repro.cli as cli
        from repro.core import compute_sccs as real_compute
        from repro.recovery import FaultSchedule

        def with_fault(*args, **kwargs):
            kwargs["fault_schedule"] = FaultSchedule.single(
                "transient-read", at_io=1, failures=100
            )
            return real_compute(*args, **kwargs)

        monkeypatch.setattr(cli, "compute_sccs", with_fault)
        code = main(["scc", str(edge_path), "-m", "16K",
                     "--fault-policy", "retries=2"])
        assert code == 5
        assert "retries exhausted" in capsys.readouterr().err


class TestServeAndQuery:
    EDGES = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]

    def build(self, tmp_path, capsys):
        edge_path = tmp_path / "edges.txt"
        write_edge_text(edge_path, self.EDGES)
        rc = main(["serve", str(tmp_path / "store"),
                   "--build", str(edge_path), "--build-only",
                   "--block-size", "64"])
        assert rc == 0
        assert "store built" in capsys.readouterr().err
        return tmp_path / "store"

    def serve(self, store_dir):
        from repro.service import LabelStore, QueryDaemon

        store = LabelStore(store_dir)
        daemon = QueryDaemon(store, epoch_seconds=0.001, owns_store=True)
        daemon.start()
        return daemon

    def test_build_only(self, tmp_path, capsys):
        store_dir = self.build(tmp_path, capsys)
        assert (store_dir / "service-meta.json").exists()

    def test_query_labels(self, tmp_path, capsys):
        daemon = self.serve(self.build(tmp_path, capsys))
        try:
            rc = main(["query", "scc-label", "0", "1", "3", "9",
                       "--port", str(daemon.address[1])])
            assert rc == 0
            out = capsys.readouterr().out
            assert "0 0" in out and "3 3" in out and "9 -" in out
        finally:
            daemon.close()

    def test_query_relations_and_stats(self, tmp_path, capsys):
        daemon = self.serve(self.build(tmp_path, capsys))
        port = str(daemon.address[1])
        try:
            assert main(["query", "same-component", "0", "2",
                         "--port", port]) == 0
            assert "same" in capsys.readouterr().out
            assert main(["query", "reachable", "0", "4", "--port", port]) == 0
            assert "reachable" in capsys.readouterr().out
            assert main(["query", "topo-order", "0", "3",
                         "--port", port]) == 0
            out = capsys.readouterr().out
            assert "layer=" in out
            assert main(["query", "server-stats", "--port", port]) == 0
            assert "physical I/O" in capsys.readouterr().out
        finally:
            daemon.close()

    def test_query_trace_json(self, tmp_path, capsys):
        import json

        daemon = self.serve(self.build(tmp_path, capsys))
        trace = tmp_path / "trace.json"
        try:
            rc = main(["query", "scc-label", "0", "--port",
                       str(daemon.address[1]), "--tenant", "acme",
                       "--trace-json", str(trace)])
            assert rc == 0
            payload = json.loads(trace.read_text())
            assert payload["session"]["tenant"] == "acme"
            assert "physical_io" in payload["server"]
        finally:
            daemon.close()

    def test_query_unknown_node_exit_2(self, tmp_path, capsys):
        daemon = self.serve(self.build(tmp_path, capsys))
        try:
            rc = main(["query", "same-component", "99", "0",
                       "--port", str(daemon.address[1])])
            assert rc == 2
            assert "not in the label store" in capsys.readouterr().err
        finally:
            daemon.close()

    def test_query_throttled_exit_2(self, tmp_path, capsys):
        daemon = self.serve(self.build(tmp_path, capsys))
        try:
            rc = main(["query", "scc-label", "0", "--port",
                       str(daemon.address[1]), "--io-budget", "0"])
            # The daemon's label cache may already hold node 0 from no
            # prior query here — cold store, so the lookup needs a read.
            assert rc == 2
            assert "budget" in capsys.readouterr().err
        finally:
            daemon.close()

    def test_query_arity_validation(self, tmp_path, capsys):
        rc = main(["query", "same-component", "1", "--port", "1"])
        assert rc == 2
        assert "exactly two" in capsys.readouterr().err
        rc = main(["query", "scc-label", "--port", "1"])
        assert rc == 2
        assert "at least one" in capsys.readouterr().err

    def test_query_connection_refused_exit_2(self, tmp_path):
        # Port 1 is never listening; OSError maps to exit 2.
        assert main(["query", "server-stats", "--port", "1"]) == 2
