"""Tests for the benchmark workload builders."""

import pytest

from repro.bench.workloads import (
    BENCH_NODES,
    BLOCK_SIZE,
    DEFAULT_MEMORY_RATIO,
    MEMORY_RATIOS,
    WEBSPAM_MEMORY_RATIOS,
    family_graph,
    memory_for_ratio,
    semi_threshold,
    shuffled_edges,
    subsample_edges,
    webspam_graph,
)


class TestConstants:
    def test_memory_ratios_span_feasible_range(self):
        assert MEMORY_RATIOS[0] >= 0.35
        assert MEMORY_RATIOS[-1] <= 1.0
        assert list(MEMORY_RATIOS) == sorted(MEMORY_RATIOS)

    def test_webspam_ratios_cross_the_threshold(self):
        """Fig 7's sweep must include a >= 1.0 point (the sharp drop)."""
        assert WEBSPAM_MEMORY_RATIOS[0] < 1.0 < WEBSPAM_MEMORY_RATIOS[-1]

    def test_default_ratio_matches_table1(self):
        # Paper default M=400M against 8|V|=800M.
        assert DEFAULT_MEMORY_RATIO == 0.5


class TestMemoryHelpers:
    def test_threshold_formula(self):
        assert semi_threshold(1000) == 8 * 1000 + BLOCK_SIZE

    def test_ratio_one_reaches_threshold(self):
        n = 5000
        assert memory_for_ratio(n, 1.0) == semi_threshold(n)

    def test_ratio_below_one_forces_contraction(self):
        n = 5000
        assert memory_for_ratio(n, 0.5) < semi_threshold(n)

    def test_model_floor(self):
        assert memory_for_ratio(1, 0.0001) == 2 * BLOCK_SIZE


class TestGraphBuilders:
    def test_webspam_default_size(self):
        g = webspam_graph(num_nodes=500)
        assert g.num_nodes == 500
        assert g.num_edges >= 500 * 6  # degree-6 stand-in

    def test_family_graph_uses_bench_scale(self):
        g = family_graph("large-scc")
        assert g.num_nodes == BENCH_NODES

    def test_family_overrides(self):
        g = family_graph("small-scc", num_nodes=800, avg_degree=2.0, seed=5)
        assert g.num_nodes == 800
        assert g.num_edges == pytest.approx(1600, rel=0.1)

    def test_shuffle_preserves_multiset(self):
        g = family_graph("massive-scc", num_nodes=500)
        shuffled = shuffled_edges(g, seed=3)
        assert sorted(shuffled) == sorted(g.edges)
        assert shuffled != g.edges

    def test_subsample_fraction(self):
        edges = [(i, i + 1) for i in range(1000)]
        assert len(subsample_edges(edges, 30)) == 300
