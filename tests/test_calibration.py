"""Tests for the trace-calibrated cost constants
(:mod:`repro.analysis.calibration`)."""

import json

import pytest

from repro.analysis.calibration import (
    CALIBRATION_SCHEMA_VERSION,
    CalibrationProfile,
    DEFAULT_SECONDS_PER_BLOCK,
    DEFAULT_SEMI_PASSES,
    calibration_path_for,
)
from repro.analysis.cost_model import CostModel
from repro.core import compute_sccs
from repro.graph.generators import cycle_graph


def _ingest(profile, **overrides):
    """One synthetic measurement with sensible defaults."""
    kwargs = dict(
        codec="gap-varint", executor="serial", workers=1,
        solver="spanning-tree", bytes_by_width={8: (100, 300)},
        io_total=50, wall_seconds=0.005,
    )
    kwargs.update(overrides)
    profile._ingest_measurements(**kwargs)


class TestDefaults:
    def test_empty_profile_is_uncalibrated(self):
        profile = CalibrationProfile()
        assert not profile.calibrated
        assert profile.runs == 0
        assert profile.fallback_reason is None

    def test_empty_profile_prices_like_analytic_model(self):
        profile = CalibrationProfile()
        model = profile.model(1024, 32 * 1024, "gap-varint")
        analytic = CostModel(1024, 32 * 1024)
        assert model.blocks(1000, 8) == analytic.blocks(1000, 8)

    def test_default_wall_constants(self):
        profile = CalibrationProfile()
        assert profile.wall_constants("serial", 1) == \
            (DEFAULT_SECONDS_PER_BLOCK, 0.0)
        assert profile.seconds(100, "threads", 4) == \
            pytest.approx(100 * DEFAULT_SECONDS_PER_BLOCK)

    def test_default_semi_passes(self):
        assert CalibrationProfile().semi_passes("coloring") == \
            DEFAULT_SEMI_PASSES

    def test_default_spawn_overhead_zero(self):
        assert CalibrationProfile().spawn_seconds("processes") == 0.0

    def test_path_convention(self, tmp_path):
        assert calibration_path_for(str(tmp_path)) == \
            str(tmp_path / "calibration.json")


class TestBytesFit:
    def test_bytes_per_record_is_count_weighted_mean(self):
        profile = CalibrationProfile()
        _ingest(profile, bytes_by_width={8: (100, 300)})
        _ingest(profile, bytes_by_width={8: (300, 500)})
        # (300 + 500) stored over (100 + 300) records.
        assert profile.bytes_per_record("gap-varint") == {8: 2.0}

    def test_codecs_fit_independently(self):
        profile = CalibrationProfile()
        _ingest(profile, codec="fixed", bytes_by_width={8: (10, 80)})
        _ingest(profile, codec="gap-varint", bytes_by_width={8: (10, 25)})
        assert profile.bytes_per_record("fixed") == {8: 8.0}
        assert profile.bytes_per_record("gap-varint") == {8: 2.5}

    def test_zero_record_entries_skipped(self):
        profile = CalibrationProfile()
        _ingest(profile, bytes_by_width={8: (100, 300), 4: (0, 0)})
        assert 4 not in profile.bytes_per_record("gap-varint")

    def test_fitted_model_prices_stored_width(self):
        profile = CalibrationProfile()
        _ingest(profile, codec="gap-varint", bytes_by_width={8: (1000, 2000)})
        fitted = profile.model(1024, 32 * 1024, "gap-varint")
        analytic = CostModel(1024, 32 * 1024)
        # 2 stored bytes/record packs 4x more records per block than the
        # 8-byte logical width.
        assert fitted.blocks(4096, 8) < analytic.blocks(4096, 8)


class TestWallFit:
    def test_single_sample_pins_slope_through_origin(self):
        profile = CalibrationProfile()
        _ingest(profile, io_total=200, wall_seconds=0.01)
        slope, intercept = profile.wall_constants("serial", 1)
        assert slope == pytest.approx(5e-5)
        assert intercept == 0.0

    def test_two_samples_fit_affine_intercept(self):
        profile = CalibrationProfile()
        # seconds = 1e-4 * blocks + 0.5 exactly.
        _ingest(profile, executor="processes", workers=4,
                io_total=100, wall_seconds=0.51)
        _ingest(profile, executor="processes", workers=4,
                io_total=1100, wall_seconds=0.61)
        slope, intercept = profile.wall_constants("processes", 4)
        assert slope == pytest.approx(1e-4)
        assert intercept == pytest.approx(0.5)
        assert profile.spawn_seconds("processes") == pytest.approx(0.5)

    def test_fallback_nearest_k_same_executor(self):
        profile = CalibrationProfile()
        _ingest(profile, executor="threads", workers=2,
                io_total=100, wall_seconds=0.02)
        assert profile.wall_constants("threads", 8) == \
            profile.wall_constants("threads", 2)

    def test_fallback_serial_then_default(self):
        profile = CalibrationProfile()
        _ingest(profile, executor="serial", workers=1,
                io_total=100, wall_seconds=0.02)
        # threads never measured -> serial's fit.
        assert profile.wall_constants("threads", 4) == \
            profile.wall_constants("serial", 1)
        assert CalibrationProfile().wall_constants("threads", 4) == \
            (DEFAULT_SECONDS_PER_BLOCK, 0.0)

    def test_codec_specific_slopes(self):
        """A compressed codec's CPU cost shows up as a higher fitted
        seconds-per-block; each codec fits its own samples, and an
        unfitted codec borrows the pooled fit."""
        profile = CalibrationProfile()
        _ingest(profile, codec="fixed", io_total=1000, wall_seconds=0.05)
        _ingest(profile, codec="gap-varint", io_total=500, wall_seconds=0.1)
        fixed_slope, _ = profile.wall_constants("serial", 1, "fixed")
        gv_slope, _ = profile.wall_constants("serial", 1, "gap-varint")
        assert fixed_slope == pytest.approx(5e-5)
        assert gv_slope == pytest.approx(2e-4)
        # varint never measured -> pooled over both codecs' samples.
        pooled_slope, _ = profile.wall_constants("serial", 1, "varint")
        assert fixed_slope < pooled_slope < gv_slope

    def test_negative_slope_degenerates_to_ratio_mean(self):
        profile = CalibrationProfile()
        _ingest(profile, io_total=100, wall_seconds=0.2)
        _ingest(profile, io_total=200, wall_seconds=0.1)
        slope, intercept = profile.wall_constants("serial", 1)
        assert slope > 0
        assert intercept == 0.0


class TestSemiPassesFit:
    def test_passes_fit_from_semi_io_over_scan_blocks(self):
        profile = CalibrationProfile()
        scan = CostModel(1024, 1).blocks(500, 8)
        # No byte stats ingested, so the scan is priced at logical widths.
        _ingest(profile, solver="coloring", bytes_by_width={},
                semi_io_total=scan * 4, final_edges=500, block_size=1024)
        assert profile.semi_passes("coloring") == pytest.approx(4.0)

    def test_passes_clamped_at_one(self):
        profile = CalibrationProfile()
        _ingest(profile, solver="coloring", semi_io_total=1,
                final_edges=10_000, block_size=1024)
        assert profile.semi_passes("coloring") >= 1.0

    def test_skipped_without_block_size(self):
        profile = CalibrationProfile()
        _ingest(profile, solver="coloring", semi_io_total=100,
                final_edges=500, block_size=None)
        assert profile.semi_passes("coloring") == DEFAULT_SEMI_PASSES


class TestVersion:
    def test_version_carries_schema_prefix(self):
        assert CalibrationProfile().version.startswith(
            f"{CALIBRATION_SCHEMA_VERSION}:"
        )

    def test_empty_profiles_share_version(self):
        assert CalibrationProfile().version == CalibrationProfile().version

    def test_ingestion_changes_version(self):
        profile = CalibrationProfile()
        before = profile.version
        _ingest(profile)
        assert profile.version != before


class TestPersistence:
    def test_round_trip(self, tmp_path):
        profile = CalibrationProfile()
        _ingest(profile, executor="threads", workers=4,
                io_total=100, wall_seconds=0.02,
                semi_io_total=120, final_edges=500, block_size=1024)
        path = str(tmp_path / "calibration.json")
        profile.save(path)
        loaded = CalibrationProfile.load(path)
        assert loaded.version == profile.version
        assert loaded.runs == profile.runs
        assert loaded.bytes_per_record("gap-varint") == \
            profile.bytes_per_record("gap-varint")
        assert loaded.wall_constants("threads", 4) == \
            profile.wall_constants("threads", 4)
        assert loaded.semi_passes("spanning-tree") == \
            profile.semi_passes("spanning-tree")

    def test_missing_file_falls_back(self, tmp_path):
        loaded = CalibrationProfile.load(str(tmp_path / "absent.json"))
        assert not loaded.calibrated
        assert loaded.fallback_reason == "missing"

    def test_corrupt_json_falls_back(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text("{not json")
        loaded = CalibrationProfile.load(str(path))
        assert not loaded.calibrated
        assert loaded.fallback_reason == "unreadable"

    def test_schema_mismatch_falls_back(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps({"schema": 999, "runs": 7}))
        loaded = CalibrationProfile.load(str(path))
        assert not loaded.calibrated
        assert "schema" in loaded.fallback_reason

    def test_malformed_payload_falls_back(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps({
            "schema": CALIBRATION_SCHEMA_VERSION,
            "runs": 1,
            "wall": {"serial": {"1": [["x", "y"]]}},
        }))
        loaded = CalibrationProfile.load(str(path))
        assert not loaded.calibrated
        assert loaded.fallback_reason == "malformed"


class TestIngestRun:
    def test_ingest_run_fits_codec_and_wall(self):
        out = compute_sccs(cycle_graph(200).edges, memory_bytes=2 * 1024,
                           block_size=256)
        profile = CalibrationProfile()
        profile.ingest_run(out, block_size=256)
        assert profile.calibrated
        fitted = profile.bytes_per_record(out.config.codec)
        assert 8 in fitted and fitted[8] <= 8.0
        slope, _ = profile.wall_constants(out.config.executor,
                                          out.config.workers)
        assert slope > 0


class TestIngestTraceJson:
    def test_ingest_cli_trace_artifact(self, tmp_path):
        from repro.cli import main
        from repro.graph.io_formats import write_edge_text

        edge_path = tmp_path / "g.txt"
        write_edge_text(edge_path, cycle_graph(60).edges)
        trace_path = tmp_path / "trace.json"
        assert main(["scc", str(edge_path), "-m", "300", "-b", "64",
                     "--trace-json", str(trace_path)]) == 0
        profile = CalibrationProfile()
        assert profile.ingest_trace_json(str(trace_path))
        assert profile.calibrated
        assert profile.bytes_per_record("gap-varint")

    def test_trace_without_context_is_skipped(self, tmp_path):
        path = tmp_path / "old-trace.json"
        path.write_text(json.dumps({"spans": [], "total_measured": 0}))
        profile = CalibrationProfile()
        assert not profile.ingest_trace_json(str(path))
        assert not profile.calibrated

    def test_unreadable_trace_is_skipped(self, tmp_path):
        profile = CalibrationProfile()
        assert not profile.ingest_trace_json(str(tmp_path / "nope.json"))
