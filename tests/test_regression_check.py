"""Tests for the sweep regression checker."""

import json

import pytest

from repro.bench.regression import compare_files, compare_sweeps, render


def payload(runs, title="Fig T"):
    return {"title": title, "x_label": "M", "runs": runs}


def run(algorithm, x, status="OK", io_total=1000):
    return {"algorithm": algorithm, "x": x, "status": status,
            "io_total": io_total, "io_random": 0, "io_sequential": io_total,
            "wall_seconds": 1.0, "num_sccs": 5, "iterations": 2}


class TestComparison:
    def test_identical_sweeps_ok(self):
        base = payload([run("A", 1), run("A", 2)])
        comparison = compare_sweeps(base, base)
        assert comparison.ok
        assert comparison.regressions == []
        assert "no regressions" in render(comparison)

    def test_io_growth_within_tolerance_ok(self):
        base = payload([run("A", 1, io_total=1000)])
        cand = payload([run("A", 1, io_total=1050)])
        assert compare_sweeps(base, cand, tolerance=0.10).ok

    def test_io_growth_beyond_tolerance_flagged(self):
        base = payload([run("A", 1, io_total=1000)])
        cand = payload([run("A", 1, io_total=1300)])
        comparison = compare_sweeps(base, cand, tolerance=0.10)
        assert not comparison.ok
        assert len(comparison.regressions) == 1
        assert "1.30x" in render(comparison)

    def test_status_flip_to_inf_flagged(self):
        base = payload([run("A", 1)])
        cand = payload([run("A", 1, status="INF", io_total=0)])
        comparison = compare_sweeps(base, cand)
        assert comparison.regressions[0].status_changed
        assert "OK -> INF" in render(comparison)

    def test_improvement_reported_not_flagged(self):
        base = payload([run("A", 1, io_total=1000)])
        cand = payload([run("A", 1, io_total=500)])
        comparison = compare_sweeps(base, cand)
        assert comparison.ok
        assert len(comparison.improvements) == 1
        assert "improved" in render(comparison)

    def test_recovery_from_inf_is_improvement(self):
        base = payload([run("A", 1, status="INF", io_total=0)])
        cand = payload([run("A", 1, io_total=800)])
        comparison = compare_sweeps(base, cand)
        assert comparison.ok
        assert len(comparison.improvements) == 1

    def test_missing_point_flagged(self):
        base = payload([run("A", 1), run("A", 2)])
        cand = payload([run("A", 1)])
        comparison = compare_sweeps(base, cand)
        assert not comparison.ok
        assert comparison.missing_points == [("A", 2)]
        assert "MISSING" in render(comparison)

    def test_zero_baseline_io(self):
        base = payload([run("A", 1, io_total=0)])
        cand = payload([run("A", 1, io_total=0)])
        assert compare_sweeps(base, cand).deltas[0].io_ratio == 1.0


class TestFiles:
    def test_compare_files(self, tmp_path):
        base_path = tmp_path / "base.json"
        cand_path = tmp_path / "cand.json"
        base_path.write_text(json.dumps(payload([run("A", 1, io_total=100)])))
        cand_path.write_text(json.dumps(payload([run("A", 1, io_total=400)])))
        comparison = compare_files(str(base_path), str(cand_path))
        assert not comparison.ok

    def test_against_real_benchmark_json(self, tmp_path):
        """Round-trip with the real sweep_to_json producer."""
        from repro.bench import run_sweep, sweep_to_json
        from repro.graph.generators import random_digraph

        g = random_digraph(30, 70, seed=0)
        points = [(m, g.edges, 30, m) for m in (256, 512)]
        sweep = run_sweep("t", "M", points, ["Ext-SCC"], block_size=64)
        path = tmp_path / "s.json"
        path.write_text(sweep_to_json(sweep))
        comparison = compare_files(str(path), str(path))
        assert comparison.ok
        assert len(comparison.deltas) == 2
