"""Tests for the cached external node table."""

import random

import pytest

from repro.baselines.node_table import NodeTable
from repro.exceptions import StorageError
from repro.io.memory import MemoryBudget


def make_table(device, n=50, memory_bytes=512):
    records = [(i * 3, i, i * 2, 0) for i in range(n)]  # sparse ids 0,3,6,...
    table = NodeTable(device, records, 16, MemoryBudget(memory_bytes))
    return table, records


class TestLookup:
    def test_get_present(self, device):
        table, records = make_table(device)
        assert table.get(9) == (9, 3, 6, 0)

    def test_get_absent_between_keys(self, device):
        table, _ = make_table(device)
        assert table.get(10) is None

    def test_get_first_and_last(self, device):
        table, records = make_table(device)
        assert table.get(records[0][0]) == records[0]
        assert table.get(records[-1][0]) == records[-1]

    def test_get_beyond_range(self, device):
        table, _ = make_table(device)
        assert table.get(10_000) is None

    def test_empty_table(self, device):
        table = NodeTable(device, [], 16, MemoryBudget(512))
        assert table.get(0) is None


class TestUpdate:
    def test_update_roundtrip(self, device):
        table, _ = make_table(device)
        table.update(9, (9, 3, 6, 1))
        assert table.get(9) == (9, 3, 6, 1)

    def test_update_missing_rejected(self, device):
        table, _ = make_table(device)
        with pytest.raises(StorageError):
            table.update(10, (10, 0, 0, 0))

    def test_update_wrong_key_rejected(self, device):
        table, _ = make_table(device)
        with pytest.raises(StorageError):
            table.update(9, (8, 0, 0, 0))

    def test_updates_survive_eviction(self, device):
        # Tiny cache: 1 block; walk across many blocks to force evictions.
        table, records = make_table(device, n=60, memory_bytes=128)
        for node, *_ in records:
            table.update(node, (node, 0, 0, 1))
        for node, *_ in records:
            assert table.get(node) == (node, 0, 0, 1)

    def test_scan_sees_flushed_updates(self, device):
        table, records = make_table(device)
        table.update(0, (0, 0, 0, 1))
        scanned = list(table.scan())
        assert scanned[0] == (0, 0, 0, 1)
        assert len(scanned) == len(records)


class TestIOAccounting:
    def test_cache_miss_charges_random_read(self, device):
        table, _ = make_table(device, n=60, memory_bytes=128)
        before = device.stats.snapshot()
        table.get(0)
        table.get(177)  # far block: miss
        delta = device.stats.snapshot() - before
        assert delta.rand_reads >= 1

    def test_cache_hit_is_free(self, device):
        table, _ = make_table(device)
        table.get(9)
        before = device.stats.snapshot()
        table.get(9)
        delta = device.stats.snapshot() - before
        assert delta.total == 0

    def test_dirty_eviction_charges_random_write(self, device):
        table, records = make_table(device, n=80, memory_bytes=128)
        before = device.stats.snapshot()
        for node, *_ in records:
            table.update(node, (node, 0, 0, 1))
        delta = device.stats.snapshot() - before
        assert delta.rand_writes >= 1


class TestStress:
    def test_randomized_against_dict(self, device):
        table, records = make_table(device, n=70, memory_bytes=192)
        oracle = {r[0]: r for r in records}
        rng = random.Random(7)
        keys = list(oracle)
        for step in range(800):
            node = rng.choice(keys)
            if rng.random() < 0.5:
                updated = (node, step, step + 1, step % 2)
                oracle[node] = updated
                table.update(node, updated)
            else:
                assert table.get(node) == oracle[node]


class TestBatchLookups:
    def test_get_batch_matches_pointwise(self, device):
        table, records = make_table(device, n=60, memory_bytes=128)
        nodes = [r[0] for r in records] + [1, 10, 10_000]
        batched = table.get_batch(nodes)
        assert batched == {n: table.get(n) for n in set(nodes)}

    def test_get_batch_reads_each_block_once(self, device):
        table, records = make_table(device, n=60, memory_bytes=128)
        table.get_batch([r[0] for r in records])  # warms the lazy fence
        assert table.batch_block_reads == table.file.num_blocks
        assert table.batch_lookups == len(records)
        before = device.stats.snapshot()
        table.get_batch([r[0] for r in records])
        # Fence warm: exactly one data read per block, nothing to locate.
        assert (device.stats.snapshot() - before).total == table.file.num_blocks

    def test_get_batch_dedupes(self, device):
        table, _ = make_table(device)
        table.get_batch([9])  # warm the fence
        before = device.stats.snapshot()
        result = table.get_batch([9, 9, 9, 9])
        assert result == {9: (9, 3, 6, 0)}
        assert (device.stats.snapshot() - before).total == 1

    def test_single_block_batch_is_random_read(self, device):
        table, _ = make_table(device, n=60, memory_bytes=128)
        table.get_batch([0])  # warm the fence
        before = device.stats.snapshot()
        table.get_batch([0])
        delta = device.stats.snapshot() - before
        assert delta.rand_reads == 1
        assert delta.seq_reads == 0

    def test_multi_block_batch_is_sequential(self, device):
        table, records = make_table(device, n=60, memory_bytes=128)
        table.get_batch([r[0] for r in records])  # warm the fence
        before = device.stats.snapshot()
        table.get_batch([r[0] for r in records])
        delta = device.stats.snapshot() - before
        assert delta.seq_reads == table.file.num_blocks
        assert delta.rand_reads == 0

    def test_empty_and_absent_batches(self, device):
        table, _ = make_table(device)
        assert table.get_batch([]) == {}
        assert table.get_batch([1, 2]) == {1: None, 2: None}

    def test_empty_table_batch(self, device):
        table = NodeTable(device, [], 16, MemoryBudget(512))
        assert table.get_batch([3, 4]) == {3: None, 4: None}


class TestOpenWithFences:
    def test_open_existing_file(self, device):
        table, records = make_table(device)
        reopened = NodeTable.open(
            device, table.file.name, MemoryBudget(512)
        )
        assert reopened.get(9) == (9, 3, 6, 0)

    def test_fence_prefill_avoids_probe_reads(self, device):
        table, records = make_table(device, n=60, memory_bytes=128)
        fence = [
            block[0][0] for block in table.file.scan_blocks() if block
        ]
        fresh = NodeTable.open(
            device, table.file.name, MemoryBudget(128), fence=fence
        )
        before = device.stats.snapshot()
        fresh.get_batch([r[0] for r in records])
        # Locating blocks costs nothing; only the data reads are paid.
        assert (device.stats.snapshot() - before).total == fresh.file.num_blocks

    def test_wrong_fence_length_rejected(self, device):
        table, _ = make_table(device)
        with pytest.raises(StorageError):
            NodeTable.open(
                device, table.file.name, MemoryBudget(512), fence=[0]
                * (table.file.num_blocks + 1)
            )


class TestHitRateZeroSafety:
    def test_zero_lookups_is_zero_rate(self, device):
        table, _ = make_table(device)
        assert table.cache_hit_rate == 0.0
        assert table.cache_hits == 0
        assert table.cache_misses == 0

    def test_rate_after_lookups(self, device):
        table, _ = make_table(device)
        table.get(9)
        table.get(9)
        assert 0.0 < table.cache_hit_rate <= 1.0
