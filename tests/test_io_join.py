"""Tests for merge joins and grouping over sorted streams."""

from repro.io.join import anti_join, cogroup, grouped, merge_join, semi_join


def key0(record):
    return record[0]


class TestGrouped:
    def test_basic_groups(self):
        records = [(1, "a"), (1, "b"), (2, "c")]
        assert list(grouped(records, key0)) == [
            (1, [(1, "a"), (1, "b")]),
            (2, [(2, "c")]),
        ]

    def test_empty(self):
        assert list(grouped([], key0)) == []

    def test_single_group(self):
        assert list(grouped([(5,), (5,)], key0)) == [(5, [(5,), (5,)])]


class TestCogroup:
    def test_aligned_keys(self):
        left = [(1, "l")]
        right = [(1, "r")]
        assert list(cogroup(left, right, key0, key0)) == [(1, [(1, "l")], [(1, "r")])]

    def test_left_only_key(self):
        out = list(cogroup([(1, "l")], [(2, "r")], key0, key0))
        assert out == [(1, [(1, "l")], []), (2, [], [(2, "r")])]

    def test_interleaved(self):
        left = [(1, 0), (3, 0), (5, 0)]
        right = [(2, 1), (3, 1), (6, 1)]
        keys = [k for k, _, _ in cogroup(left, right, key0, key0)]
        assert keys == [1, 2, 3, 5, 6]

    def test_both_empty(self):
        assert list(cogroup([], [], key0, key0)) == []

    def test_one_empty(self):
        out = list(cogroup([(1, 0)], [], key0, key0))
        assert out == [(1, [(1, 0)], [])]


class TestMergeJoin:
    def test_inner_join_pairs(self):
        left = [(1, "a"), (2, "b"), (2, "c")]
        right = [(2, "x"), (2, "y"), (3, "z")]
        pairs = list(merge_join(left, right, key0, key0))
        assert pairs == [
            ((2, "b"), (2, "x")),
            ((2, "b"), (2, "y")),
            ((2, "c"), (2, "x")),
            ((2, "c"), (2, "y")),
        ]

    def test_no_common_keys(self):
        assert list(merge_join([(1,)], [(2,)], key0, key0)) == []


class TestMembershipJoins:
    def test_semi_join(self):
        records = [(1, 0), (2, 0), (3, 0), (4, 0)]
        assert list(semi_join(records, [2, 4], key0)) == [(2, 0), (4, 0)]

    def test_anti_join(self):
        records = [(1, 0), (2, 0), (3, 0), (4, 0)]
        assert list(anti_join(records, [2, 4], key0)) == [(1, 0), (3, 0)]

    def test_semi_join_duplicate_records(self):
        records = [(2, 0), (2, 1), (3, 0)]
        assert list(semi_join(records, [2], key0)) == [(2, 0), (2, 1)]

    def test_anti_join_empty_keys(self):
        records = [(1, 0), (2, 0)]
        assert list(anti_join(records, [], key0)) == records

    def test_semi_join_empty_keys(self):
        assert list(semi_join([(1, 0)], [], key0)) == []

    def test_keys_beyond_records(self):
        assert list(semi_join([(1, 0)], [1, 2, 3], key0)) == [(1, 0)]

    def test_partition_property(self):
        """semi + anti is a partition of the input."""
        records = [(i, i % 3) for i in range(20)]
        keys = [0, 4, 7, 13, 19]
        kept = list(semi_join(records, keys, key0))
        dropped = list(anti_join(records, keys, key0))
        assert sorted(kept + dropped) == records
        assert all(r[0] in keys for r in kept)
        assert all(r[0] not in keys for r in dropped)


class TestEdgeCases:
    """Degenerate stream shapes: empty sides, lone groups, and the
    duplicate-heavy joins Theorem 5.3 bounds by sqrt(2|E|)."""

    def test_merge_join_empty_sides(self):
        assert list(merge_join([], [(1,)], key0, key0)) == []
        assert list(merge_join([(1,)], [], key0, key0)) == []
        assert list(merge_join([], [], key0, key0)) == []

    def test_semi_anti_join_empty_records(self):
        assert list(semi_join([], [1, 2], key0)) == []
        assert list(anti_join([], [1, 2], key0)) == []

    def test_duplicate_heavy_merge_join_is_cross_product(self):
        """A single hot key on both sides yields the full cross product
        (one group per side held in memory, as in the degree co-scan)."""
        left = [(7, i) for i in range(40)]
        right = [(7, j) for j in range(25)]
        pairs = list(merge_join(left, right, key0, key0))
        assert len(pairs) == 40 * 25
        assert pairs[0] == ((7, 0), (7, 0))
        assert pairs[-1] == ((7, 39), (7, 24))

    def test_duplicate_heavy_cogroup(self):
        left = [(1, i) for i in range(30)] + [(2, 0)]
        right = [(2, j) for j in range(30)]
        out = list(cogroup(left, right, key0, key0))
        assert [(k, len(l), len(r)) for k, l, r in out] == [
            (1, 30, 0), (2, 1, 30),
        ]

    def test_membership_joins_with_duplicate_keys(self):
        """A sorted key stream with repeats filters like a set."""
        records = [(1, 0), (2, 0), (3, 0)]
        keys = [2, 2, 2]
        assert list(semi_join(records, keys, key0)) == [(2, 0)]
        assert list(anti_join(records, keys, key0)) == [(1, 0), (3, 0)]

    def test_grouped_single_record(self):
        assert list(grouped([(9, "x")], key0)) == [(9, [(9, "x")])]

    def test_merge_join_duplicates_interleaved_with_misses(self):
        left = [(1, "a"), (2, "b"), (2, "c"), (4, "d")]
        right = [(0, "w"), (2, "x"), (2, "y"), (5, "z")]
        pairs = list(merge_join(left, right, key0, key0))
        assert pairs == [
            ((2, "b"), (2, "x")),
            ((2, "b"), (2, "y")),
            ((2, "c"), (2, "x")),
            ((2, "c"), (2, "y")),
        ]


class TestChunkedJoinEquivalence:
    """The chunked membership/lookup joins against naive references.

    Both joins process :data:`repro.io.join.JOIN_CHUNK` records per step
    with a rolling key window; these properties pin that the chunking is
    invisible — including streams much longer than one chunk, duplicate
    keys straddling a chunk boundary, and windows that must shrink.
    """

    def _random_sorted(self, rng, n, key_range):
        return sorted((rng.randrange(key_range), i) for i in range(n))

    def test_membership_joins_match_set_filter_across_chunks(self):
        import random

        from repro.io import join as join_mod

        rng = random.Random(7)
        chunk = join_mod.JOIN_CHUNK
        records = self._random_sorted(rng, 3 * chunk + 17, 2 * chunk)
        keys = sorted(rng.randrange(2 * chunk) for _ in range(chunk + 13))
        present = set(keys)
        assert list(semi_join(records, keys, key0)) == [
            r for r in records if r[0] in present
        ]
        assert list(anti_join(records, keys, key0)) == [
            r for r in records if r[0] not in present
        ]

    def test_lookup_join_matches_merge_join_on_unique_table(self):
        import random

        from repro.io.join import lookup_join
        from repro.io import join as join_mod

        rng = random.Random(11)
        chunk = join_mod.JOIN_CHUNK
        records = self._random_sorted(rng, 2 * chunk + 31, chunk)
        # Unique-keyed table (one row per key), the lookup_join contract.
        table = [(k, k * 3) for k in sorted(rng.sample(range(chunk), chunk // 2))]
        expected = list(merge_join(records, table, key0, key0))
        got = list(lookup_join(iter(records), iter(table), key0, key0))
        assert got == expected

    def test_lookup_join_duplicate_records_single_match(self):
        from repro.io.join import lookup_join

        records = [(2, "a"), (2, "b"), (3, "c")]
        table = [(2, "T2"), (4, "T4")]
        assert list(lookup_join(records, table, key0, key0)) == [
            ((2, "a"), (2, "T2")),
            ((2, "b"), (2, "T2")),
        ]
