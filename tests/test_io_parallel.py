"""The parallelism substrate: worker pools, striped devices, the makespan
meter, ranged scans, and the thread-safety of the shared ledger.

The load-bearing invariants, each pinned here:

* a :class:`~repro.io.parallel.StripedDevice`'s per-channel ledgers are an
  *exact partition* of the main ledger (striping moves charges, it never
  adds or drops any);
* with one channel the makespan equals the total I/O delta — the K=1
  identity every scaling claim rests on;
* scanning a file's shard ranges in order charges exactly what one
  whole-file scan charges;
* :class:`~repro.io.stats.IOStats` survives concurrent recording without
  losing a count (worker shards of a threads-backend pool all write to it);
* the shared buffer pool's cache keys are :attr:`DiskFile.uid`-based and
  invalidated on ``rename(overwrite=True)`` — the id-reuse collision and
  the silent-clobber hole this PR closed.
"""

import threading

import pytest

from repro.exceptions import StorageError
from repro.io.blocks import BlockDevice, DiskFile
from repro.io.files import ExternalFile
from repro.io.parallel import (
    EXECUTOR_BACKENDS,
    MakespanMeter,
    StripedDevice,
    WorkerPool,
    shard_ranges,
)
from repro.io.pool import SharedBufferPool
from repro.io.stats import IOStats


# -- WorkerPool --------------------------------------------------------------


class TestWorkerPool:
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_run_preserves_submission_order(self, backend):
        pool = WorkerPool(workers=4, backend=backend)
        try:
            results = pool.run([(lambda i=i: i * i) for i in range(20)])
            assert results == [i * i for i in range(20)]
        finally:
            pool.close()

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_map(self, backend):
        pool = WorkerPool(workers=3, backend=backend)
        try:
            assert pool.map(lambda x: x + 1, range(7)) == list(range(1, 8))
        finally:
            pool.close()

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_run_windowed_yields_in_order(self, backend):
        pool = WorkerPool(workers=2, backend=backend)
        try:
            out = list(pool.run_windowed(((lambda i=i: i) for i in range(10)), window=2))
            assert out == list(range(10))
        finally:
            pool.close()

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_exceptions_propagate(self, backend):
        pool = WorkerPool(workers=2, backend=backend)

        def boom():
            raise RuntimeError("shard failed")

        try:
            with pytest.raises(RuntimeError, match="shard failed"):
                pool.run([lambda: 1, boom, lambda: 3])
        finally:
            pool.close()

    def test_nested_submission_runs_inline(self):
        """A parallel operator inside a parallel operator must not deadlock:
        with every pool thread busy on outer tasks, inner tasks run inline
        on the worker thread instead of queueing forever."""
        pool = WorkerPool(workers=2, backend="threads")

        def outer(i):
            # Submitting from inside a task would starve with only 2
            # threads and 2 outer tasks; the inline guard makes it safe.
            return sum(pool.map(lambda x: x * i, range(4)))

        try:
            assert pool.map(outer, range(3)) == [0, 6, 12]
        finally:
            pool.close()

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(workers=2, backend="fibers")


# -- shard_ranges ------------------------------------------------------------


class TestShardRanges:
    def test_partitions_exactly(self):
        for num_blocks in (1, 2, 5, 16, 17, 100):
            for shards in (1, 2, 3, 8):
                ranges = shard_ranges(num_blocks, shards)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == num_blocks
                for (_, a_stop), (b_start, _) in zip(ranges, ranges[1:]):
                    assert a_stop == b_start
                sizes = [stop - start for start, stop in ranges]
                assert sum(sizes) == num_blocks
                assert max(sizes) - min(sizes) <= 1  # near-even
                assert len(ranges) == min(shards, num_blocks)

    def test_empty_file(self):
        assert shard_ranges(0, 4) == []

    def test_rejects_bad_shards(self):
        with pytest.raises(ValueError):
            shard_ranges(10, 0)


# -- StripedDevice -----------------------------------------------------------


def _exercise(device, blocks=40):
    """Create, write, scan, and randomly read a couple of files."""
    capacity = device.block_size // 16
    a = ExternalFile.from_records(
        device, "a", [(i, i) for i in range(blocks * capacity)], 16
    )
    b = ExternalFile.from_records(
        device, "b", [(i, 0) for i in range(blocks * capacity // 2)], 16
    )
    list(a.scan())
    list(b.scan())
    a.read_block_random(1)
    return a, b


class TestStripedDevice:
    def test_channels_partition_the_ledger(self):
        device = StripedDevice(block_size=64, channels=4)
        _exercise(device)
        assert sum(device.channel_totals()) == device.stats.total
        # The split holds per counter class, not just in total.
        assert sum(c.sequential for c in device.channels) == device.stats.sequential
        assert sum(c.random for c in device.channels) == device.stats.random

    def test_identical_totals_to_plain_device(self):
        plain = BlockDevice(block_size=64)
        _exercise(plain)
        striped = StripedDevice(block_size=64, channels=4)
        _exercise(striped)
        assert striped.stats.snapshot() == plain.stats.snapshot()

    def test_phase_attribution_partitions_too(self):
        device = StripedDevice(block_size=64, channels=3)
        with device.stats.phase("work"):
            _exercise(device)
        main = device.stats.by_phase["work"].total
        per_channel = sum(
            c.by_phase.get("work", None).total
            for c in device.channels
            if c.by_phase.get("work") is not None
        )
        assert per_channel == main

    def test_striping_rotates_start_channel_per_file(self):
        device = StripedDevice(block_size=64, channels=4)
        _exercise(device)
        busy = [c.total for c in device.channels]
        # Round-robin over two multi-block files: no channel may idle.
        assert all(total > 0 for total in busy)

    def test_single_channel_allowed(self):
        device = StripedDevice(block_size=64, channels=1)
        _exercise(device)
        assert device.channel_totals() == [device.stats.total]

    def test_rejects_zero_channels(self):
        with pytest.raises(StorageError):
            StripedDevice(block_size=64, channels=0)


# -- MakespanMeter -----------------------------------------------------------


class TestMakespanMeter:
    def test_k1_makespan_equals_total(self):
        device = StripedDevice(block_size=64, channels=1)
        meter = MakespanMeter(device)
        with device.stats.phase("alpha"):
            _exercise(device)
        assert meter.makespan() == device.stats.total

    def test_plain_device_acts_as_one_channel(self):
        device = BlockDevice(block_size=64)
        meter = MakespanMeter(device)
        _exercise(device)
        assert meter.makespan() == device.stats.total
        assert meter.channel_snapshot() == [device.stats.total]

    def test_striped_makespan_bounded_by_total_and_fair_share(self):
        device = StripedDevice(block_size=64, channels=4)
        meter = MakespanMeter(device)
        with device.stats.phase("alpha"):
            _exercise(device)
        makespan = meter.makespan()
        total = device.stats.total
        assert makespan <= total
        assert makespan >= total / 4  # cannot beat perfect striping

    def test_phases_are_barriers(self):
        """Two sequential phases each contribute their own busiest channel
        — the meter must sum per-phase maxima, not take a global max."""
        device = StripedDevice(block_size=64, channels=2)
        meter = MakespanMeter(device)
        with device.stats.phase("p1"):
            ExternalFile.from_records(device, "x", [(i, 0) for i in range(40)], 16)
        with device.stats.phase("p2"):
            ExternalFile.from_records(device, "y", [(i, 0) for i in range(40)], 16)
        per_phase = meter.phase_makespans()
        assert set(per_phase) == {"p1", "p2"}
        assert meter.makespan() == per_phase["p1"] + per_phase["p2"]

    def test_meter_windows_only_its_own_delta(self):
        device = StripedDevice(block_size=64, channels=2)
        _exercise(device)  # pre-meter traffic must not count
        meter = MakespanMeter(device)
        assert meter.makespan() == 0
        with device.stats.phase("later"):
            ExternalFile.from_records(device, "z", [(i, 0) for i in range(40)], 16)
        assert 0 < meter.makespan() <= device.stats.total


# -- ranged scans ------------------------------------------------------------


class TestRangedScans:
    def _file(self, device):
        capacity = device.block_size // 16
        return ExternalFile.from_records(
            device, "data", [(i, i * 2) for i in range(10 * capacity + 3)], 16
        )

    def test_shards_reproduce_whole_scan_records(self):
        device = BlockDevice(block_size=64)
        f = self._file(device)
        whole = list(f.scan())
        for shards in (1, 2, 3, 7):
            ranges = shard_ranges(f.num_blocks, shards)
            pieces = [r for start, stop in ranges for r in f.scan_range(start, stop)]
            assert pieces == whole

    def test_shards_charge_exactly_one_scan(self):
        device = BlockDevice(block_size=64)
        f = self._file(device)
        before = device.stats.snapshot()
        list(f.scan())
        one_scan = device.stats.snapshot() - before

        before = device.stats.snapshot()
        for start, stop in shard_ranges(f.num_blocks, 4):
            list(f.scan_range(start, stop))
        sharded = device.stats.snapshot() - before
        assert sharded == one_scan

    def test_ranged_scan_with_pool_readahead(self):
        plain = BlockDevice(block_size=64)
        f = self._file(plain)
        before = plain.stats.snapshot()
        list(f.scan())
        unpooled = plain.stats.snapshot() - before

        pooled_device = BlockDevice(block_size=64)
        SharedBufferPool(pooled_device, readahead=4)
        g = self._file(pooled_device)
        before = pooled_device.stats.snapshot()
        for start, stop in shard_ranges(g.num_blocks, 3):
            list(g.scan_range(start, stop))
        pooled = pooled_device.stats.snapshot() - before
        assert pooled == unpooled


# -- IOStats thread safety ---------------------------------------------------


class TestIOStatsConcurrency:
    def test_concurrent_recording_loses_nothing(self):
        stats = IOStats()
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for i in range(per_thread):
                stats.record_read(sequential=(i % 2 == 0))
                stats.record_write(sequential=(i % 3 != 0))
                if i % 50 == 0:
                    stats.record_merge_pass()
                    stats.record_runs_formed(1)
                    stats.record_payload_write(1, 16, 8, 16)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()

        n = threads * per_thread
        assert stats.seq_reads == n // 2
        assert stats.rand_reads == n - n // 2
        assert stats.seq_writes + stats.rand_writes == n
        assert stats.total == 2 * n
        bursts = threads * len(range(0, per_thread, 50))
        assert stats.merge_passes == bursts
        assert stats.runs_formed == bursts
        assert stats.records_written == bursts
        assert stats.bytes_stored == 8 * bursts

    def test_concurrent_phase_attribution(self):
        stats = IOStats()
        with stats.phase("work"):
            threads = [
                threading.Thread(
                    target=lambda: [stats.record_read(True) for _ in range(1000)]
                )
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert stats.by_phase["work"].total == 6000
        assert stats.top_level_phases == ["work"]


# -- DiskFile.uid and pool cache keys ----------------------------------------


class TestUidKeys:
    def test_uids_are_monotonic_and_never_reused(self):
        device = BlockDevice(block_size=64)
        seen = set()
        for i in range(50):
            f = device.create(f"f{i}", 16)
            assert f.uid not in seen
            seen.add(f.uid)
            device.delete(f"f{i}")
        g = device.create("fresh", 16)
        assert g.uid not in seen

    def test_rename_overwrite_invalidates_cached_target(self):
        """The latent bug this PR fixed: rename(overwrite=True) silently
        clobbered the target while its blocks sat in the shared cache; a
        later open + read could then be served the dead file's content."""
        device = BlockDevice(block_size=64)
        pool = SharedBufferPool(device, readahead=2, cache_blocks=32)
        capacity = device.block_size // 16

        old = ExternalFile.from_records(
            device, "target", [(1, 1)] * (3 * capacity), 16
        )
        list(old.scan())  # populate the cache with the doomed content

        replacement = ExternalFile.from_records(
            device, "incoming", [(2, 2)] * (3 * capacity), 16
        )
        device.rename("incoming", "target", overwrite=True)

        reopened = ExternalFile.open(device, "target")
        assert all(r == (2, 2) for r in reopened.scan())
        assert replacement.num_records == 3 * capacity
        # And uid keys keep even a re-created name distinct in the cache.
        assert reopened.num_records == 3 * capacity
        assert pool.cache_blocks > 0

    def test_cache_never_serves_dead_files_after_gc(self):
        """uid-keyed caching: a new DiskFile re-using a dead file's memory
        address must not hit the dead file's cached blocks."""
        import gc

        device = BlockDevice(block_size=64)
        SharedBufferPool(device, readahead=1, cache_blocks=64)
        capacity = device.block_size // 16
        for round_no in range(10):
            f = ExternalFile.from_records(
                device, "scratch", [(round_no, round_no)] * (2 * capacity), 16
            )
            assert all(r == (round_no, round_no) for r in f.scan())
            f.delete()
            del f
            gc.collect()


# -- processes backend -------------------------------------------------------


def _square(value):
    """Module-level so the processes backend can pickle it."""
    return value * value


class TestProcessesBackend:
    def test_backends_tuple(self):
        assert EXECUTOR_BACKENDS == ("serial", "threads", "processes")

    def test_run_pure_preserves_submission_order(self):
        pool = WorkerPool(workers=2, backend="processes")
        try:
            assert pool.run_pure(_square, [(i,) for i in range(10)]) == [
                i * i for i in range(10)
            ]
        finally:
            pool.close()

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_run_pure_is_inline_for_other_backends(self, backend):
        pool = WorkerPool(workers=4, backend=backend)
        try:
            assert pool.run_pure(_square, [(3,), (4,)]) == [9, 16]
        finally:
            pool.close()

    def test_run_pure_empty_tasks(self):
        pool = WorkerPool(workers=2, backend="processes")
        try:
            assert pool.run_pure(_square, []) == []
        finally:
            pool.close()

    def test_generic_thunks_run_on_threads(self):
        # Thunks closing over local state cannot be pickled; the processes
        # backend must still run them (on its thread executor).
        state = []
        pool = WorkerPool(workers=2, backend="processes")
        try:
            results = pool.run([lambda i=i: (state.append(i), i)[1]
                                for i in range(6)])
            assert results == list(range(6))
            assert sorted(state) == list(range(6))
        finally:
            pool.close()

    def test_unavailable_platform_warns_once_then_runs_inline(self):
        from repro.io.parallel import set_processes_available
        import warnings as warnings_mod

        previous = set_processes_available(False)
        pool = WorkerPool(workers=2, backend="processes")
        try:
            with pytest.warns(RuntimeWarning, match="processes executor"):
                assert pool.run_pure(_square, [(3,)]) == [9]
            with warnings_mod.catch_warnings():
                warnings_mod.simplefilter("error")
                assert pool.run_pure(_square, [(4,)]) == [16]  # no 2nd warning
        finally:
            set_processes_available(previous)
            pool.close()

    def test_close_keeps_pool_usable(self):
        pool = WorkerPool(workers=2, backend="processes")
        try:
            assert pool.run_pure(_square, [(2,)]) == [4]
            pool.close()
            assert pool.run_pure(_square, [(5,)]) == [25]
            assert pool.run([lambda: 1, lambda: 2]) == [1, 2]
        finally:
            pool.close()

    def test_processes_available_override_roundtrip(self):
        from repro.io.parallel import processes_available, set_processes_available

        previous = set_processes_available(True)
        try:
            assert processes_available()
            set_processes_available(False)
            assert not processes_available()
        finally:
            set_processes_available(previous)
