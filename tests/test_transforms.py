"""Tests for the external edge-file transforms."""

import pytest

from tests.conftest import random_edges

from repro.constants import SCC_RECORD_BYTES
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.graph.transforms import (
    induced_subgraph,
    merge_edge_files,
    relabel,
    remove_self_loops,
    subsample,
    symmetrize,
)
from repro.io.files import ExternalFile


EDGES = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 3)]


@pytest.fixture
def edge_file(device):
    return EdgeFile.from_edges(device, "E", EDGES)


class TestSubsample:
    def test_full_fraction_keeps_all(self, edge_file):
        assert list(subsample(edge_file, 1.0).scan()) == EDGES

    def test_zero_fraction_keeps_none(self, edge_file):
        assert list(subsample(edge_file, 0.0).scan()) == []

    def test_subset_property(self, device):
        edges = random_edges(30, 300, seed=0)
        ef = EdgeFile.from_edges(device, "E", edges)
        sample = list(subsample(ef, 0.5, seed=1).scan())
        assert 0 < len(sample) < 300
        remaining = list(edges)
        for edge in sample:
            remaining.remove(edge)  # multiset-subset check

    def test_deterministic(self, edge_file):
        a = list(subsample(edge_file, 0.5, seed=7, out_name="a").scan())
        b = list(subsample(edge_file, 0.5, seed=7, out_name="b").scan())
        assert a == b

    def test_invalid_fraction(self, edge_file):
        with pytest.raises(ValueError):
            subsample(edge_file, 1.5)


class TestRelabel:
    def test_identity(self, device, memory, edge_file):
        mapping = ExternalFile.from_records(
            device, "map", [(i, i) for i in range(4)], SCC_RECORD_BYTES
        )
        out = relabel(edge_file, mapping, memory)
        assert sorted(out.scan()) == sorted(EDGES)

    def test_permutation(self, device, memory, edge_file):
        perm = {0: 10, 1: 11, 2: 12, 3: 13}
        mapping = ExternalFile.from_records(
            device, "map", sorted(perm.items()), SCC_RECORD_BYTES
        )
        out = relabel(edge_file, mapping, memory)
        expected = sorted((perm[u], perm[v]) for u, v in EDGES)
        assert sorted(out.scan()) == expected

    def test_contraction_map(self, device, memory, edge_file):
        mapping = ExternalFile.from_records(
            device, "map", [(0, 0), (1, 0), (2, 0), (3, 3)], SCC_RECORD_BYTES
        )
        out = relabel(edge_file, mapping, memory)
        assert sorted(out.scan()) == sorted(
            [(0, 0), (0, 0), (0, 0), (0, 3), (3, 3)]
        )


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, device, memory, edge_file):
        nodes = NodeFile.from_ids(device, "N", [0, 1, 2], memory)
        out = induced_subgraph(edge_file, nodes, memory)
        assert sorted(out.scan()) == [(0, 1), (1, 2), (2, 0)]

    def test_empty_node_set(self, device, memory, edge_file):
        nodes = NodeFile.from_ids(device, "N", [], memory)
        assert list(induced_subgraph(edge_file, nodes, memory).scan()) == []


class TestMergeAndSymmetrize:
    def test_merge_concatenates(self, device, edge_file):
        other = EdgeFile.from_edges(device, "E2", [(7, 8)])
        out = merge_edge_files(edge_file, other)
        assert out.num_edges == len(EDGES) + 1

    def test_symmetrize_adds_reverses(self, device, memory):
        ef = EdgeFile.from_edges(device, "E", [(0, 1)])
        out = symmetrize(ef, memory)
        assert sorted(out.scan()) == [(0, 1), (1, 0)]

    def test_symmetrize_dedupes(self, device, memory):
        ef = EdgeFile.from_edges(device, "E", [(0, 1), (1, 0), (0, 1)])
        out = symmetrize(ef, memory)
        assert sorted(out.scan()) == [(0, 1), (1, 0)]

    def test_remove_self_loops(self, device, edge_file):
        out = remove_self_loops(edge_file)
        assert (3, 3) not in list(out.scan())
        assert out.num_edges == len(EDGES) - 1


class TestIOProfile:
    def test_transforms_sequential_only(self, device, memory, edge_file):
        nodes = NodeFile.from_ids(device, "N", [0, 1, 2], memory)
        subsample(edge_file, 0.5)
        induced_subgraph(edge_file, nodes, memory)
        symmetrize(edge_file, memory)
        remove_self_loops(edge_file)
        assert device.stats.random == 0
