"""Tests for the Definition 5.1 / 7.1 node-order operators."""

from repro.core.operators import basic_key, make_key_fn, product_key


class TestBasicKey:
    def test_degree_dominates(self):
        assert basic_key(1, 10) > basic_key(99, 9)

    def test_id_breaks_ties(self):
        assert basic_key(5, 10) > basic_key(4, 10)

    def test_total_order(self):
        keys = [basic_key(i, d) for i in range(5) for d in range(5)]
        assert len(set(keys)) == len(keys)


class TestProductKey:
    def test_degree_still_dominates(self):
        assert product_key(1, 10, 0) > product_key(2, 9, 100)

    def test_product_breaks_degree_ties(self):
        # Equal degree: the node whose removal creates more edges is larger
        # (kept in the cover) — Definition 7.1's edge-reduction lever.
        assert product_key(1, 10, 25) > product_key(2, 10, 9)

    def test_id_breaks_full_ties(self):
        assert product_key(7, 10, 25) > product_key(6, 10, 25)


class TestMakeKeyFn:
    def test_basic_fn(self):
        key = make_key_fn(product_operator=False)
        assert key(3, (8,)) == (8, 3)

    def test_product_fn(self):
        key = make_key_fn(product_operator=True)
        assert key(3, (8, 15)) == (8, 15, 3)

    def test_consistency_with_module_functions(self):
        basic = make_key_fn(False)
        prod = make_key_fn(True)
        assert basic(4, (9,)) == basic_key(4, 9)
        assert prod(4, (9, 14)) == product_key(4, 9, 14)
