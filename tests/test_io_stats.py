"""Tests for the I/O ledger: counting, phases, snapshots, budgets."""

import pytest

from repro.exceptions import IOBudgetExceeded
from repro.io.stats import IOBudget, IOSnapshot, IOStats


class TestCounters:
    def test_starts_at_zero(self):
        stats = IOStats()
        assert stats.total == 0
        assert stats.sequential == 0
        assert stats.random == 0

    def test_sequential_read_counts(self):
        stats = IOStats()
        stats.record_read(sequential=True)
        assert stats.seq_reads == 1
        assert stats.total == 1
        assert stats.random == 0

    def test_random_write_counts(self):
        stats = IOStats()
        stats.record_write(sequential=False, blocks=3)
        assert stats.rand_writes == 3
        assert stats.random == 3
        assert stats.sequential == 0

    def test_mixed_totals(self):
        stats = IOStats()
        stats.record_read(sequential=True, blocks=2)
        stats.record_read(sequential=False)
        stats.record_write(sequential=True, blocks=4)
        stats.record_write(sequential=False, blocks=5)
        assert stats.total == 12
        assert stats.sequential == 6
        assert stats.random == 6

    def test_reset(self):
        stats = IOStats()
        stats.record_read(sequential=True)
        with stats.phase("p"):
            stats.record_write(sequential=True)
        stats.reset()
        assert stats.total == 0
        assert stats.by_phase == {}


class TestSnapshots:
    def test_snapshot_is_frozen(self):
        stats = IOStats()
        stats.record_read(sequential=True)
        snap = stats.snapshot()
        stats.record_read(sequential=True)
        assert snap.seq_reads == 1
        assert stats.seq_reads == 2

    def test_snapshot_delta(self):
        stats = IOStats()
        stats.record_read(sequential=True)
        before = stats.snapshot()
        stats.record_write(sequential=False, blocks=2)
        delta = stats.snapshot() - before
        assert delta.total == 2
        assert delta.rand_writes == 2
        assert delta.seq_reads == 0

    def test_snapshot_properties(self):
        snap = IOSnapshot(seq_reads=1, seq_writes=2, rand_reads=3, rand_writes=4)
        assert snap.total == 10
        assert snap.sequential == 3
        assert snap.random == 7


class TestPhases:
    def test_phase_attribution(self):
        stats = IOStats()
        with stats.phase("sort"):
            stats.record_read(sequential=True)
            stats.record_write(sequential=True)
        stats.record_read(sequential=True)  # outside any phase
        assert stats.by_phase["sort"].total == 2
        assert stats.total == 3

    def test_nested_phases_charge_both(self):
        stats = IOStats()
        with stats.phase("outer"):
            with stats.phase("inner"):
                stats.record_read(sequential=False)
        assert stats.by_phase["outer"].rand_reads == 1
        assert stats.by_phase["inner"].rand_reads == 1

    def test_phase_reenter_accumulates(self):
        stats = IOStats()
        for _ in range(2):
            with stats.phase("p"):
                stats.record_write(sequential=True)
        assert stats.by_phase["p"].seq_writes == 2


class TestBudget:
    def test_budget_allows_under_cap(self):
        stats = IOStats(budget=IOBudget(3))
        for _ in range(3):
            stats.record_read(sequential=True)
        assert stats.total == 3

    def test_budget_raises_over_cap(self):
        stats = IOStats(budget=IOBudget(2))
        stats.record_read(sequential=True)
        stats.record_read(sequential=True)
        with pytest.raises(IOBudgetExceeded) as excinfo:
            stats.record_read(sequential=True)
        assert excinfo.value.used == 3
        assert excinfo.value.budget == 2

    def test_budget_counts_all_kinds(self):
        stats = IOStats(budget=IOBudget(1))
        stats.record_write(sequential=False)
        with pytest.raises(IOBudgetExceeded):
            stats.record_write(sequential=True)


class TestMergePassCounters:
    def test_start_at_zero(self):
        stats = IOStats()
        assert stats.merge_passes == 0
        assert stats.runs_formed == 0

    def test_record_merge_pass(self):
        stats = IOStats()
        stats.record_merge_pass()
        stats.record_merge_pass(2)
        assert stats.merge_passes == 3

    def test_record_runs_formed(self):
        stats = IOStats()
        stats.record_runs_formed(4)
        stats.record_runs_formed(1)
        assert stats.runs_formed == 5

    def test_attributed_to_nested_phases(self):
        stats = IOStats()
        with stats.phase("contraction"):
            with stats.phase("contract-1"):
                stats.record_merge_pass()
                stats.record_runs_formed(3)
        assert stats.passes_by_phase == {"contraction": 1, "contract-1": 1}
        assert stats.runs_by_phase == {"contraction": 3, "contract-1": 3}

    def test_no_attribution_outside_phase(self):
        stats = IOStats()
        stats.record_merge_pass()
        assert stats.merge_passes == 1
        assert stats.passes_by_phase == {}

    def test_reset_clears_pass_counters(self):
        stats = IOStats()
        with stats.phase("p"):
            stats.record_merge_pass()
            stats.record_runs_formed(2)
        stats.reset()
        assert stats.merge_passes == 0
        assert stats.runs_formed == 0
        assert stats.passes_by_phase == {}
        assert stats.runs_by_phase == {}

    def test_budget_not_charged_by_pass_counters(self):
        stats = IOStats(budget=IOBudget(1))
        stats.record_merge_pass(50)  # passes are bookkeeping, not I/Os
        stats.record_read(sequential=True)
        assert stats.total == 1


class TestSnapshotRollUp:
    """``IOSnapshot + IOSnapshot`` powers the service's per-tenant
    ledger roll-up; ``to_dict`` is its JSON wire form."""

    def test_add_is_counterwise(self):
        a = IOStats()
        a.record_read(sequential=True, blocks=2)
        a.record_write(sequential=False, blocks=3)
        b = IOStats()
        b.record_read(sequential=False, blocks=5)
        total = a.snapshot() + b.snapshot()
        assert total.seq_reads == 2
        assert total.rand_writes == 3
        assert total.rand_reads == 5
        assert total.total == 10

    def test_add_identity(self):
        a = IOStats()
        a.record_read(sequential=True)
        snap = a.snapshot()
        summed = snap + IOSnapshot()
        assert summed.total == snap.total
        assert summed.seq_reads == snap.seq_reads

    def test_to_dict_round_trips_counters(self):
        stats = IOStats()
        stats.record_read(sequential=True, blocks=2)
        stats.record_read(sequential=False)
        stats.record_write(sequential=True, blocks=4)
        d = stats.snapshot().to_dict()
        assert d["seq_reads"] == 2
        assert d["rand_reads"] == 1
        assert d["seq_writes"] == 4
        assert d["rand_writes"] == 0
        assert d["sequential"] == 6
        assert d["random"] == 1
        assert d["total"] == 7

    def test_sum_of_many_sessions(self):
        parts = []
        for k in range(5):
            s = IOStats()
            s.record_read(sequential=False, blocks=k + 1)
            parts.append(s.snapshot())
        total = IOSnapshot()
        for part in parts:
            total = total + part
        assert total.rand_reads == 1 + 2 + 3 + 4 + 5
        assert total.to_dict()["total"] == 15
