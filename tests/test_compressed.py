"""Tests for variable-record files and gap-compressed edge storage."""

import pytest

from tests.conftest import random_edges

from repro.exceptions import StorageError
from repro.graph.compressed import CompressedEdgeFile
from repro.graph.edge_file import EdgeFile
from repro.io.varfile import VarRecordFile, varint_size


class TestVarintSize:
    def test_one_byte(self):
        assert varint_size(0) == 1
        assert varint_size(127) == 1

    def test_two_bytes(self):
        assert varint_size(128) == 2
        assert varint_size(16383) == 2

    def test_larger(self):
        assert varint_size(16384) == 3
        assert varint_size(1 << 28) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint_size(-1)


class TestVarRecordFile:
    def test_roundtrip(self, device):
        f = VarRecordFile(device, "v")
        payloads = [f"rec{i}" for i in range(20)]
        for i, payload in enumerate(payloads):
            f.append(payload, nbytes=5 + i % 3)
        f.close()
        assert list(f.scan()) == payloads
        assert f.num_records == 20

    def test_blocks_fill_by_bytes(self, device):
        f = VarRecordFile(device, "v")  # 64-byte blocks
        for i in range(8):
            f.append(i, nbytes=16)  # 4 per block
        f.close()
        assert f.num_blocks == 2

    def test_oversized_record_rejected(self, device):
        f = VarRecordFile(device, "v")
        with pytest.raises(StorageError):
            f.append("big", nbytes=65)

    def test_zero_size_rejected(self, device):
        f = VarRecordFile(device, "v")
        with pytest.raises(ValueError):
            f.append("x", nbytes=0)

    def test_scan_before_close_rejected(self, device):
        f = VarRecordFile(device, "v")
        f.append("x", 4)
        with pytest.raises(StorageError):
            list(f.scan())

    def test_append_after_close_rejected(self, device):
        f = VarRecordFile(device, "v")
        f.close()
        with pytest.raises(StorageError):
            f.append("x", 4)


class TestCompressedEdgeFile:
    def test_roundtrip_preserves_sorted_edges(self, device, memory):
        edges = sorted(random_edges(40, 120, seed=0))
        cf = CompressedEdgeFile.from_sorted_edges(device, "c", edges)
        assert list(cf.scan()) == edges
        assert cf.num_edges == 120

    def test_from_edge_file_sorts_first(self, device, memory):
        edges = random_edges(30, 90, seed=1)
        ef = EdgeFile.from_edges(device, "e", edges)
        cf = CompressedEdgeFile.from_edge_file(ef, memory)
        assert list(cf.scan()) == sorted(edges)

    def test_unsorted_input_rejected(self, device):
        with pytest.raises(ValueError):
            CompressedEdgeFile.from_sorted_edges(device, "c", [(5, 0), (1, 0)])

    def test_parallel_edges_preserved(self, device):
        edges = [(0, 3), (0, 3), (0, 3)]
        cf = CompressedEdgeFile.from_sorted_edges(device, "c", edges)
        assert list(cf.scan()) == edges

    def test_adjacency_groups(self, device):
        edges = [(0, 1), (0, 4), (2, 0)]
        cf = CompressedEdgeFile.from_sorted_edges(device, "c", edges)
        assert list(cf.scan_adjacency()) == [(0, (1, 4)), (2, (0,))]

    def test_compression_beats_fixed_width(self, device, memory):
        """Sorted local ids -> small gaps -> well under 8 bytes/edge."""
        edges = sorted(random_edges(60, 400, seed=2))
        cf = CompressedEdgeFile.from_sorted_edges(device, "c", edges)
        assert cf.compression_ratio > 2.0
        assert cf.compressed_bytes < cf.uncompressed_bytes

    def test_fewer_scan_ios_than_plain(self, device, memory):
        edges = sorted(random_edges(60, 400, seed=3))
        plain = EdgeFile.from_edges(device, "plain", edges)
        cf = CompressedEdgeFile.from_sorted_edges(device, "comp", edges)
        before = device.stats.snapshot()
        assert sum(1 for _ in plain.scan()) == 400
        plain_cost = (device.stats.snapshot() - before).total
        before = device.stats.snapshot()
        assert sum(1 for _ in cf.scan()) == 400
        comp_cost = (device.stats.snapshot() - before).total
        assert comp_cost < plain_cost

    def test_empty(self, device):
        cf = CompressedEdgeFile.from_sorted_edges(device, "c", [])
        assert list(cf.scan()) == []
        assert cf.compression_ratio == 1.0

    def test_sequential_io_only(self, device, memory):
        edges = random_edges(40, 150, seed=4)
        ef = EdgeFile.from_edges(device, "e", edges)
        CompressedEdgeFile.from_edge_file(ef, memory)
        assert device.stats.random == 0

    def test_flipped_matches_dst_sorted_plain(self, device):
        edges = random_edges(25, 70, seed=5)
        dst_sorted = sorted(edges, key=lambda e: (e[1], e[0]))
        cf = CompressedEdgeFile.from_sorted_edges(
            device, "c", ((v, u) for u, v in dst_sorted), flipped=True
        )
        assert list(cf.scan()) == dst_sorted


class TestCompressedPipeline:
    """The codec knob inside Ext-SCC."""

    @pytest.mark.parametrize("seed", range(6))
    def test_same_sccs_as_fixed(self, seed):
        from tests.conftest import reference_sccs

        from repro.core import ExtSCCConfig, compute_sccs

        edges = random_edges(50, 130, seed, self_loops=True)
        config = ExtSCCConfig.optimized(codec="gap-varint")
        out = compute_sccs(edges, num_nodes=50, memory_bytes=300,
                           block_size=64, config=config)
        assert out.result == reference_sccs(edges, 50)

    def test_saves_io_on_larger_graphs(self):
        from repro.core import ExtSCCConfig, compute_sccs
        from repro.graph.generators import large_scc_graph

        g = large_scc_graph(num_nodes=800, seed=3)
        base = compute_sccs(g.edges, num_nodes=800, memory_bytes=3200,
                            block_size=512,
                            config=ExtSCCConfig.optimized(codec="fixed"))
        comp = compute_sccs(
            g.edges, num_nodes=800, memory_bytes=3200, block_size=512,
            config=ExtSCCConfig.optimized(codec="gap-varint"),
        )
        assert comp.result == base.result
        assert comp.io.total < base.io.total

    def test_removed_shim_rejected(self):
        """The PR 2 ``compress_edge_lists`` shim is gone; passing it is a
        hard error, not a silent no-op."""
        from repro.core import ExtSCCConfig

        with pytest.raises(TypeError):
            ExtSCCConfig(codec="fixed", compress_edge_lists=True)

    def test_unknown_codec_rejected(self):
        from repro.core import ExtSCC, ExtSCCConfig
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            ExtSCC(ExtSCCConfig(codec="lz4"))

    def test_config_name_still_custom(self):
        from repro.core import ExtSCCConfig

        config = ExtSCCConfig(codec="gap-varint")
        assert config.name == "Ext-SCC"  # not a Section VII lever
