"""The parallel (Jacobi, worker-sharded) forward–backward solver.

The generic solver-registry tests in ``test_semi_external.py`` already run
``parallel-fw-bw`` against every known graph and the Tarjan reference;
this module pins what is specific to the *parallel* restatement:

* labels identical to the serial Gauss-Seidel FW-BW solver (not just a
  valid SCC partition — the same canonical labeling);
* the I/O ledger is identical for every worker count, because each round
  is one full sequential scan whether it ran as one shard or as K;
* the trim rounds resolve DAGs without ever entering the pivot loop's
  reachability rounds (scan count stays linear in the trim depth);
* the solver works end to end as Ext-SCC's semi-external substrate via
  ``ExtSCCConfig(semi_scc="parallel-fw-bw")``.
"""

import pytest

from tests.conftest import make_graph_files, random_edges, reference_sccs

from repro.core import ExtSCC, ExtSCCConfig
from repro.core.result import SCCResult
from repro.exceptions import InsufficientMemory
from repro.graph.edge_file import EdgeFile
from repro.graph.generators import cycle_graph, path_graph, planted_scc_graph
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.io.parallel import WorkerPool
from repro.semi_external import (
    SEMI_SCC_SOLVERS,
    forward_backward_scc,
    parallel_fw_bw_scc,
    spanning_tree_scc,
)


def _run(edges, num_nodes, workers=1, backend="serial"):
    """Run the parallel solver on a fresh device; returns (labels, stats)."""
    device = BlockDevice(block_size=64)
    if workers > 1:
        device.attach_workers(WorkerPool(workers=workers, backend=backend))
    edge_file = EdgeFile.from_edges(device, "edges", edges)
    before = device.stats.snapshot()
    labels = parallel_fw_bw_scc(edge_file, range(num_nodes))
    return labels, device.stats.snapshot() - before


class TestLabelIdentity:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_serial_fw_bw_exactly(self, device, seed):
        edges = random_edges(40, 100, seed, self_loops=True)
        edge_file = EdgeFile.from_edges(device, "e", edges)
        serial = forward_backward_scc(edge_file, range(40))
        parallel, _ = _run(edges, 40)
        assert parallel == serial

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_spanning_tree_exactly(self, device, seed):
        edges = random_edges(40, 100, seed)
        edge_file = EdgeFile.from_edges(device, "e", edges)
        tree = spanning_tree_scc(edge_file, range(40))
        parallel, _ = _run(edges, 40)
        assert parallel == tree

    def test_registered_in_solver_map(self):
        assert SEMI_SCC_SOLVERS["parallel-fw-bw"] is parallel_fw_bw_scc


class TestWorkerInvariance:
    @pytest.mark.parametrize("seed", range(4))
    def test_labels_and_ledger_identical_across_k(self, seed):
        edges = random_edges(50, 140, seed, self_loops=True)
        base_labels, base_io = _run(edges, 50, workers=1)
        for workers in (2, 3, 4, 8):
            labels, io = _run(edges, 50, workers=workers)
            assert labels == base_labels, workers
            assert io == base_io, workers

    def test_threads_backend_matches_serial(self):
        edges = random_edges(60, 200, seed=9)
        serial_labels, serial_io = _run(edges, 60, workers=4, backend="serial")
        thread_labels, thread_io = _run(edges, 60, workers=4, backend="threads")
        assert thread_labels == serial_labels
        assert thread_io == serial_io

    def test_correct_at_every_k(self):
        edges = random_edges(35, 90, seed=3)
        expected = reference_sccs(edges, 35)
        for workers in (1, 2, 5):
            labels, _ = _run(edges, 35, workers=workers)
            assert SCCResult(labels) == expected


class TestTrim:
    def test_dag_resolved_entirely_by_trim(self):
        """A path graph is all singletons: trim must resolve every node, so
        the scan count is the trim fixpoint depth — no pivot rounds."""
        n = 12
        labels, io = _run(path_graph(n).edges, n)
        assert SCCResult(labels).num_sccs == n
        # Edge file: 12 edges of 8B in 64B blocks -> 2 blocks; writing it
        # is excluded by the snapshot.  Trim scans the file repeatedly; a
        # pivot phase would at least double the reads seen here.
        edge_blocks = 2
        max_trim_rounds = n  # each round peels at least the endpoints
        assert io.total <= edge_blocks * max_trim_rounds
        assert io.random == 0

    def test_cycle_survives_trim(self):
        n = 10
        labels, _ = _run(cycle_graph(n).edges, n)
        result = SCCResult(labels)
        assert result.num_sccs == 1
        assert result.largest_size == n

    def test_trim_is_partition_aware(self):
        """Two cycles bridged by one edge: the bridge must not give its
        endpoints in/out degrees that shield them from a later trim."""
        edges = (
            [(i, (i + 1) % 4) for i in range(4)]
            + [(4 + i, 4 + (i + 1) % 4) for i in range(4)]
            + [(0, 4)]
        )
        labels, _ = _run(edges, 8)
        result = SCCResult(labels)
        assert result.num_sccs == 2
        assert result.strongly_connected(0, 1)
        assert result.strongly_connected(4, 5)
        assert not result.strongly_connected(0, 4)

    def test_isolated_and_empty(self):
        labels, io = _run([], 5)
        assert SCCResult(labels).num_sccs == 5
        assert io.total == 0  # nothing to scan
        assert _run([], 0)[0] == {}


class TestAsExtSCCSubstrate:
    def test_ext_scc_with_parallel_substrate(self, device, memory):
        graph = planted_scc_graph(
            num_nodes=60, avg_degree=2.5, scc_sizes=[12, 8, 5], seed=5
        )
        edge_file, node_file = make_graph_files(
            device, graph.edges, graph.num_nodes, memory
        )
        config = ExtSCCConfig(semi_scc="parallel-fw-bw")
        out = ExtSCC(config).run(device, edge_file, memory, nodes=node_file)
        assert out.result == reference_sccs(graph.edges, graph.num_nodes)

    def test_memory_check(self, device):
        edge_file = EdgeFile.from_edges(device, "e", [(0, 1), (1, 0)])
        with pytest.raises(InsufficientMemory):
            parallel_fw_bw_scc(edge_file, range(2), memory=MemoryBudget(8))

    def test_max_rounds_safety_valve(self, device):
        edge_file = EdgeFile.from_edges(device, "e", cycle_graph(30).edges)
        with pytest.raises(RuntimeError, match="rounds"):
            parallel_fw_bw_scc(edge_file, range(30), max_rounds=0)
