"""Tests for the analysis layer: cost model, graph stats, time-forward."""

import math

import pytest

from tests.conftest import random_edges

from repro.analysis import (
    BowTie,
    CostModel,
    arboricity_upper_bound,
    bowtie_decomposition,
    dag_levels,
    degree_stats,
)
from repro.core import compute_sccs
from repro.graph.digraph import DiGraph
from repro.graph.edge_file import EdgeFile
from repro.graph.generators import path_graph, random_dag, webspam_like
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.memory_scc import tarjan_scc, topological_order


class TestCostModelPrimitives:
    model = CostModel(block_size=64, memory_bytes=512)

    def test_blocks(self):
        assert self.model.blocks(16, 8) == 2
        assert self.model.blocks(17, 8) == 3
        assert self.model.blocks(0, 8) == 0

    def test_scan_equals_blocks(self):
        assert self.model.scan(100, 8) == self.model.blocks(100, 8)

    def test_sort_zero(self):
        assert self.model.sort(0, 8) == 0

    def test_sort_single_run(self):
        # 40 records of 8B fit in one 512B run: formation writes only —
        # the single-run shortcut renames the run into the output file.
        blocks = self.model.blocks(40, 8)
        assert self.model.sort(40, 8) == blocks
        # The streamed variant reads the run back into the consumer.
        assert self.model.sort_streamed(40, 8) == 2 * blocks

    def test_sort_replacement_selection_run_count(self):
        # 200 records of 8B against 512B memory: classic formation would
        # produce ceil(200/64) = 4 runs; replacement selection expects 2.
        assert self.model.expected_runs(200, 8) == 2

    def test_sort_grows_with_less_memory(self):
        small = CostModel(block_size=64, memory_bytes=128)
        big = CostModel(block_size=64, memory_bytes=4096)
        assert small.sort(2000, 8) > big.sort(2000, 8)

    def test_matches_measured_sort(self, device):
        """Predicted sort cost within 2x of the real ledger."""
        from repro.io.sort import external_sort_records

        records = [(i * 37 % 997, i) for i in range(1500)]
        before = device.stats.snapshot()
        external_sort_records(
            device, iter(records), 8, MemoryBudget(512), codec="fixed"
        )
        measured = (device.stats.snapshot() - before).total
        predicted = CostModel(64, 512).sort(1500, 8)
        assert predicted / 2 <= measured <= predicted * 2

    def test_matches_measured_compressed_sort(self, device):
        """With measured bytes/record, the model tracks the compressed sort."""
        from repro.io.sort import external_sort_records

        records = [(i * 37 % 997, i) for i in range(1500)]
        before = device.stats.snapshot()
        external_sort_records(
            device, iter(records), 8, MemoryBudget(512), codec="gap-varint"
        )
        measured = (device.stats.snapshot() - before).total
        calibration = {
            width: stored / count
            for width, (count, stored) in device.stats.bytes_by_width.items()
        }
        predicted = CostModel(64, 512, bytes_per_record=calibration).sort(1500, 8)
        assert predicted / 2 <= measured <= predicted * 2
        # The calibrated prediction must be well below the fixed-width one.
        assert predicted < CostModel(64, 512).sort(1500, 8)


class TestCostModelPipeline:
    def test_predicts_ext_scc_within_factor(self):
        """End-to-end: Theorems 5.1/5.2/6.1 instantiated vs. the ledger."""
        from repro.core import ExtSCCConfig

        edges = random_edges(80, 200, seed=0)
        out = compute_sccs(edges, num_nodes=80, memory_bytes=300,
                           block_size=64,
                           config=ExtSCCConfig.baseline(codec="fixed"))
        assert out.num_iterations >= 1
        model = CostModel(block_size=64, memory_bytes=300)
        predicted = model.ext_scc(out.iterations)
        measured = out.io.total
        assert predicted / 3 <= measured <= predicted * 3, (predicted, measured)

    def test_predicts_compressed_ext_scc_with_calibration(self):
        """The calibrated model tracks the gap-varint pipeline's ledger."""
        from repro.core import ExtSCC, ExtSCCConfig
        from repro.graph.edge_file import NodeFile

        edges = random_edges(80, 200, seed=0)
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(300)
        edge_file = EdgeFile.from_edges(device, "E", edges)
        node_file = NodeFile.from_ids(device, "V", range(80), memory,
                                      presorted=True)
        out = ExtSCC(ExtSCCConfig.baseline(codec="gap-varint")).run(
            device, edge_file, memory, nodes=node_file
        )
        assert out.num_iterations >= 1
        calibration = {
            width: stored / count
            for width, (count, stored) in device.stats.bytes_by_width.items()
        }
        model = CostModel(block_size=64, memory_bytes=300,
                          bytes_per_record=calibration)
        predicted = model.ext_scc(out.iterations)
        measured = out.io.total
        assert predicted / 3 <= measured <= predicted * 3, (predicted, measured)

    def test_iteration_costs_scale_with_edges(self):
        model = CostModel(block_size=64, memory_bytes=512)
        small = model.get_v(100, 200)
        large = model.get_v(100, 2000)
        assert large > small


class TestMultiBfsMemoryTrade:
    """The cost model prices the multi-bfs mask-column memory trade via
    the solver's own ``source_budget`` (satellite: pinned pricing)."""

    def test_source_budget_delegation_pinned(self):
        # n=1000, B=1024, M = 8n + B + 2000: spare = 2000 bytes, each
        # batch of 8 sources costs 2n = 2000 mask bytes -> S = 8.
        model = CostModel(block_size=1024, memory_bytes=8 * 1000 + 1024 + 2000)
        assert model.multi_bfs_sources(1000) == 8
        assert model.multi_bfs_mask_bytes(1000, 8) == 2000
        # Covering the requested 64-source batch at 8 per round takes
        # ceil(64 / 8) = 8 rounds of edge scans.
        assert model.multi_bfs_round_factor(1000) == 8

    def test_matches_solver_source_budget(self):
        from repro.io.memory import MemoryBudget
        from repro.semi_external.multi_bfs import source_budget

        for nbytes in (8 * 500 + 64 + 1, 8 * 500 + 64 + 500, 1 << 20):
            model = CostModel(block_size=64, memory_bytes=nbytes)
            assert model.multi_bfs_sources(500) == source_budget(
                500, MemoryBudget(nbytes), 64
            )

    def test_ample_memory_factor_is_one(self):
        model = CostModel(block_size=1024, memory_bytes=1 << 20)
        assert model.multi_bfs_round_factor(1000) == 1
        # ... so the multi-bfs price collapses to the plain semi-SCC one.
        assert model.semi_scc_multi_bfs(5000, 1000, 3) == model.semi_scc(5000, 3)

    def test_tight_memory_scales_semi_scc(self):
        model = CostModel(block_size=1024, memory_bytes=8 * 1000 + 1024 + 2000)
        assert model.semi_scc_multi_bfs(5000, 1000, 3) == 8 * model.semi_scc(5000, 3)

    def test_makespan_solver_aware(self):
        from repro.core.ext_scc import IterationRecord
        from repro.io.stats import IOSnapshot

        record = IterationRecord(
            level=1, num_nodes=2000, num_edges=8000,
            next_num_nodes=1000, next_num_edges=5000, io=IOSnapshot(),
        )
        tight = CostModel(block_size=1024, memory_bytes=8 * 1000 + 1024 + 2000)
        plain = tight.ext_scc_makespan([record], workers=1)
        bfs = tight.ext_scc_makespan(
            [record], workers=1, solver="multi-bfs", final_nodes=1000
        )
        extra = 8 * tight.semi_scc(5000, 3) - tight.semi_scc(5000, 3)
        assert bfs == plain + extra
        # Non-multi-bfs solvers are priced exactly as before.
        assert tight.ext_scc_makespan(
            [record], workers=1, solver="spanning-tree", final_nodes=1000
        ) == plain


class TestDegreeStats:
    def test_star_graph(self, device, memory):
        edges = [(0, i) for i in range(1, 9)]
        ef = EdgeFile.from_edges(device, "e", edges)
        stats = degree_stats(ef, memory)
        assert stats.num_nodes == 9
        assert stats.max_out_degree == 8
        assert stats.max_in_degree == 1
        assert stats.num_sources == 1   # the hub has indeg 0
        assert stats.num_sinks == 8
        assert stats.histogram[8] == 1
        assert stats.histogram[1] == 8

    def test_average_degree(self, device, memory):
        edges = random_edges(20, 60, seed=1)
        ef = EdgeFile.from_edges(device, "e", edges)
        stats = degree_stats(ef, memory)
        assert stats.num_edges == 60
        assert stats.average_degree == pytest.approx(60 / stats.num_nodes)

    def test_empty(self, device, memory):
        ef = EdgeFile.from_edges(device, "e", [])
        stats = degree_stats(ef, memory)
        assert stats.num_nodes == 0
        assert stats.average_degree == 0.0

    def test_arboricity_bound(self, device, memory):
        edges = random_edges(30, 100, seed=2)
        stats = degree_stats(EdgeFile.from_edges(device, "e", edges), memory)
        bound = arboricity_upper_bound(stats)
        assert bound <= math.ceil(math.sqrt(100))
        assert bound <= stats.max_total_degree

    def test_arboricity_empty(self, device, memory):
        stats = degree_stats(EdgeFile.from_edges(device, "e", []), memory)
        assert arboricity_upper_bound(stats) == 0


class TestBowTie:
    def test_simple_bowtie(self):
        # IN(0) -> CORE{1,2} -> OUT(3); 4 isolated-ish tendril (5).
        edges = [(0, 1), (1, 2), (2, 1), (2, 3)]
        graph = DiGraph(edges, nodes=[0, 1, 2, 3, 5])
        labels = tarjan_scc(graph)
        tie = bowtie_decomposition(graph, labels)
        assert tie.core == 2
        assert tie.in_size == 1
        assert tie.out_size == 1
        assert tie.tendrils == 1
        assert tie.total == 5

    def test_webspam_core_dominates(self):
        g = webspam_like(400, avg_degree=5.0, seed=3)
        graph = DiGraph(g.edges, nodes=range(400))
        tie = bowtie_decomposition(graph, tarjan_scc(graph))
        assert tie.core >= len(g.planted_sccs[0])
        assert tie.total == 400


class TestTimeForward:
    def run_levels(self, edges, num_nodes, block=64, mem=512):
        device = BlockDevice(block_size=block)
        memory = MemoryBudget(mem)
        ef = EdgeFile.from_edges(device, "E", edges)
        graph = DiGraph(edges, nodes=range(num_nodes))
        order = topological_order(graph)
        out = dag_levels(device, ef, order, memory)
        return dict(out.scan()), device

    def test_path_levels(self):
        levels, _ = self.run_levels(path_graph(10).edges, 10)
        assert levels == {i: i for i in range(10)}

    def test_diamond(self):
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        levels, _ = self.run_levels(edges, 4)
        assert levels == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_isolated_nodes_level_zero(self):
        levels, _ = self.run_levels([(0, 1)], 4)
        assert levels[2] == 0
        assert levels[3] == 0

    def test_matches_longest_path_on_random_dags(self):
        for seed in range(4):
            g = random_dag(40, 100, seed=seed)
            levels, _ = self.run_levels(g.edges, 40)
            graph = DiGraph(g.edges, nodes=range(40))
            expected = {}
            for v in topological_order(graph):
                expected[v] = max(
                    (expected[u] + 1 for u in graph.in_neighbors(v)), default=0
                )
            assert levels == expected

    def test_rejects_cycles(self):
        device = BlockDevice(block_size=64)
        ef = EdgeFile.from_edges(device, "E", [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            dag_levels(device, ef, [0, 1], MemoryBudget(512))

    def test_no_random_io(self):
        g = random_dag(50, 140, seed=9)
        _, device = self.run_levels(g.edges, 50)
        assert device.stats.random == 0

    def test_every_edge_strictly_raises_level(self):
        g = random_dag(35, 90, seed=5)
        levels, _ = self.run_levels(g.edges, 35)
        for u, v in g.edges:
            assert levels[v] >= levels[u] + 1
