"""Tests for the plan layer: operators, planner rewrites, executor, trace.

The load-bearing invariants:

* a contract/expand/semi plan's per-operator predictions sum to *exactly*
  the matching :class:`CostModel` phase formula (the plans mirror the
  model term for term);
* executing a plan produces the same ledger as the code it wraps (covered
  exhaustively by the pipeline equivalence tests; spot-checked here);
* the executor fires checkpoint hooks at ``Materialize`` stages and emits
  one span per stage.
"""

import json

import pytest

from tests.conftest import make_graph_files, random_edges, reference_sccs

from repro.analysis.cost_model import CostModel
from repro.analysis.planner import optimize_plan, predict_plan
from repro.core.config import ExtSCCConfig
from repro.core.contraction import build_contract_plan, contract
from repro.core.ext_scc import compute_sccs
from repro.core.expansion import build_expand_plan
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.plan import (
    ExtPlan,
    Materialize,
    PlanExecutor,
    Rewrite,
    Scan,
    TraceLedger,
)
from repro.semi_external import (
    SEMI_SCC_PRICED_PASSES,
    build_semi_plan,
    run_semi_scc_to_file,
    spanning_tree_scc,
)


def run_pipeline(memory_bytes=2600, block_size=256, config=None,
                 num_nodes=400, num_edges=3000, seed=7):
    edges = random_edges(num_nodes, num_edges, seed, self_loops=True)
    return compute_sccs(
        edges, num_nodes=num_nodes, memory_bytes=memory_bytes,
        block_size=block_size, config=config,
    )


class TestPlanStructure:
    def test_add_assigns_ids_and_stage_covers_ops(self):
        plan = ExtPlan("p")
        a = plan.add(Scan("a", records=10, record_size=8))
        b = plan.add(Materialize("b", inputs=("a",), records=10, record_size=8))
        stage = plan.stage("s", [a, b], lambda ctx: 42)
        assert (a.id, b.id) == (0, 1)
        assert plan.stage_ops(stage) == [a, b]
        assert plan.op_by_label("b") is b
        with pytest.raises(KeyError):
            plan.op_by_label("missing")

    def test_checkpoint_roles_skip_elided(self):
        plan = ExtPlan("p")
        m1 = plan.add(Materialize("m1", checkpoint="contract"))
        plan.add(Materialize("m2"))
        assert plan.checkpoint_roles() == ["contract"]
        m1.elided = True
        assert plan.checkpoint_roles() == []

    def test_render_is_deterministic_and_label_only(self, device, memory):
        edges = random_edges(40, 120, 3)
        edge_file, node_file = make_graph_files(device, edges, 40, memory)
        config = ExtSCCConfig.optimized()
        model = CostModel(device.block_size, memory.nbytes)
        renders = []
        for _ in range(2):
            plan = build_contract_plan(
                device, edge_file, node_file, memory, config, level=1
            )
            optimize_plan(plan, model, config)
            renders.append(plan.render())
        assert renders[0] == renders[1]
        assert "tmp" not in renders[0]  # no temp-file names leak in
        assert "rewrites:" in renders[0]
        assert "ckpt:contract" in renders[0]


class TestPredictionPins:
    """Optimized plan totals equal the cost model's phase formulas."""

    def test_contract_plan_matches_contraction_iteration(self):
        config = ExtSCCConfig.optimized()
        out = run_pipeline(config=config)
        assert out.num_iterations >= 2
        model = CostModel(256, 2600)
        contract_plans = [p for p in out.plans if p.name.startswith("contract-")]
        assert len(contract_plans) == out.num_iterations
        for plan, record in zip(contract_plans, out.iterations):
            # Plans are trued up post-run, so re-predicting prices the
            # measured sizes — exactly what contraction_iteration sees.
            assert predict_plan(plan, model) == model.contraction_iteration(
                record, config.product_operator
            )

    def test_expand_plan_matches_expansion_iteration(self):
        config = ExtSCCConfig.optimized()
        out = run_pipeline(config=config)
        model = CostModel(256, 2600)
        expand_plans = {
            p.name: p for p in out.plans if p.name.startswith("expand-")
        }
        for record in out.iterations:
            plan = expand_plans[f"expand-{record.level}"]
            assert predict_plan(plan, model) == model.expansion_iteration(record)

    def test_semi_plan_matches_semi_scc(self):
        out = run_pipeline(config=ExtSCCConfig.optimized())
        model = CostModel(256, 2600)
        semi = next(p for p in out.plans if p.name == "semi-scc")
        final_edges = out.iterations[-1].next_num_edges
        assert predict_plan(semi, model) == model.semi_scc(
            final_edges, SEMI_SCC_PRICED_PASSES
        )

    def test_baseline_config_pins_hold_too(self):
        config = ExtSCCConfig.baseline()
        out = run_pipeline(config=config)
        model = CostModel(256, 2600)
        for plan, record in zip(
            (p for p in out.plans if p.name.startswith("contract-")),
            out.iterations,
        ):
            assert predict_plan(plan, model) == model.contraction_iteration(
                record, config.product_operator
            )


class TestOptimizePlan:
    def _contract_plan(self, device, memory, config):
        edges = random_edges(60, 400, 5)
        edge_file, node_file = make_graph_files(device, edges, 60, memory)
        return build_contract_plan(
            device, edge_file, node_file, memory, config, level=1
        )

    def test_fusion_elides_fusable_materializes(self, device, memory):
        config = ExtSCCConfig.optimized()
        model = CostModel(device.block_size, memory.nbytes)
        plan = self._contract_plan(device, memory, config)
        unoptimized = predict_plan(plan, model)
        fresh = self._contract_plan(device, memory, config)
        optimize_plan(fresh, model, config)
        assert fresh.op_by_label("E_d by dst").elided
        assert fresh.op_by_label("E_pre by dst").elided
        assert fresh.op_by_label("E_d runs").fused
        assert fresh.total_predicted < unoptimized
        assert any(r.startswith("fuse(") for r in fresh.rewrites)

    def test_codec_rewrite_tags_writers(self, device, memory):
        config = ExtSCCConfig.optimized(codec="fixed")
        model = CostModel(device.block_size, memory.nbytes)
        plan = self._contract_plan(device, memory, config)
        optimize_plan(plan, model, config)
        writers = [op for op in plan.ops if op.writes and not op.elided]
        assert writers and all(op.codec == "fixed" for op in writers)
        free = [op for op in plan.ops if op.cost[0] == "free"]
        assert all(op.codec is None for op in free)
        assert "codec=fixed" in plan.rewrites

    def test_sharding_sets_makespan_not_total(self, device, memory):
        config = ExtSCCConfig.optimized(workers=4)
        model = CostModel(device.block_size, memory.nbytes)
        plan = self._contract_plan(device, memory, config)
        optimize_plan(plan, model, config)
        serial = self._contract_plan(device, memory, config)
        optimize_plan(serial, model, ExtSCCConfig.optimized())
        assert plan.total_predicted == serial.total_predicted
        assert plan.total_predicted_makespan < plan.total_predicted
        priced = [op for op in plan.ops if op.predicted_ios is not None]
        assert priced and all(op.workers == 4 for op in priced)
        assert "shard(K=4)" in plan.rewrites


class TestExecutor:
    def test_stage_order_ctx_and_result(self):
        device = BlockDevice(block_size=64)
        plan = ExtPlan("p")
        a = plan.add(Rewrite("a"))
        b = plan.add(Rewrite("b", inputs=("a",)))
        order = []
        plan.stage("first", [a], lambda ctx: order.append("first") or 10)
        plan.stage("second", [b], lambda ctx: ctx["first"] + 1)
        result = PlanExecutor(device).execute(plan)
        assert order == ["first"]
        assert result == 11

    def test_thunkless_stage_refuses(self):
        device = BlockDevice(block_size=64)
        plan = ExtPlan("p")
        plan.stage("declarative", [plan.add(Rewrite("x"))])
        with pytest.raises(ValueError, match="no\\s+thunk"):
            PlanExecutor(device).execute(plan)

    def test_commit_hooks_fire_at_materialize_roles(self):
        device = BlockDevice(block_size=64)
        plan = ExtPlan("p")
        m = plan.add(Materialize("out", checkpoint="contract"))
        skipped = plan.add(Materialize("gone", checkpoint="expand"))
        skipped.elided = True
        plan.stage("s", [m, skipped], lambda ctx: "payload")
        fired = []
        PlanExecutor(device).execute(
            plan, commit_hooks={
                "contract": lambda res: fired.append(("contract", res)),
                "expand": lambda res: fired.append(("expand", res)),
            },
        )
        assert fired == [("contract", "payload")]

    def test_spans_measure_io_and_predictions(self, device, memory):
        edges = random_edges(50, 200, 9)
        edge_file, node_file = make_graph_files(device, edges, 50, memory)
        config = ExtSCCConfig.optimized()
        model = CostModel(device.block_size, memory.nbytes)
        plan = build_contract_plan(
            device, edge_file, node_file, memory, config, level=1
        )
        optimize_plan(plan, model, config)
        trace = TraceLedger()
        before = device.stats.snapshot()
        PlanExecutor(device, trace=trace).execute(plan)
        delta = device.stats.snapshot() - before
        assert [s.stage for s in trace.spans] == [
            "sort-edges", "get-v", "get-e", "removed-set"
        ]
        assert trace.total_measured == delta.total
        assert all(s.random_ios == 0 for s in trace.spans)
        assert trace.spans[0].predicted_ios is not None
        assert "sort-runs:E_out runs" in trace.spans[0].operators

    def test_unoptimized_plan_spans_have_no_prediction(self, device, memory):
        edges = random_edges(30, 90, 2)
        edge_file, node_file = make_graph_files(device, edges, 30, memory)
        plan = build_contract_plan(
            device, edge_file, node_file, memory, ExtSCCConfig.optimized(),
            level=1,
        )
        trace = TraceLedger()
        PlanExecutor(device, trace=trace).execute(plan)
        assert all(s.predicted_ios is None for s in trace.spans)


class TestTraceLedger:
    def test_pipeline_trace_covers_whole_run(self):
        out = run_pipeline(config=ExtSCCConfig.optimized())
        # Every block of the run is charged to exactly one span, except the
        # input loading and the final label scan, which happen outside any
        # plan.
        assert 0 < out.trace.total_measured <= out.io.total
        phases = out.trace.by_phase()
        assert set(phases) == {"contraction", "semi-scc", "expansion"}
        assert sum(p["measured"] for p in phases.values()) == out.trace.total_measured
        rendered = out.trace.render()
        assert "TOTAL" in rendered and "contract-1" in rendered

    def test_json_round_trip(self):
        out = run_pipeline(config=ExtSCCConfig.optimized())
        payload = json.loads(out.trace.to_json())
        assert payload["total_measured"] == out.trace.total_measured
        assert len(payload["spans"]) == len(out.trace.spans)
        span = payload["spans"][0]
        assert span["plan"] == "contract-1"
        assert span["reads"] + span["writes"] == out.trace.spans[0].measured_ios

    def test_makespan_tracks_channels_under_sharding(self):
        out = run_pipeline(config=ExtSCCConfig.optimized(workers=4))
        assert sum(s.makespan for s in out.trace.spans) <= out.trace.total_measured
        assert any(s.makespan < s.measured_ios for s in out.trace.spans)


class TestWrapperEquivalence:
    """contract()/expand_level() wrappers reproduce the plain pipeline."""

    def test_contract_then_expand_round_trip(self, device, memory):
        edges = random_edges(35, 85, 4, self_loops=True)
        config = ExtSCCConfig.optimized()
        edge_file, node_file = make_graph_files(device, edges, 35, memory)
        level = contract(device, edge_file, node_file, memory, config, level=1)
        scc_next = run_semi_scc_to_file(
            spanning_tree_scc, level.next_edges, level.next_nodes.scan(), memory
        )
        plan = build_expand_plan(device, level, scc_next, memory, config)
        scc_file = PlanExecutor(device).execute(plan)
        from repro.core.result import SCCResult

        assert SCCResult.from_pairs(scc_file.scan()) == reference_sccs(edges, 35)

    def test_semi_plan_executes_solver(self, device, memory):
        edges = random_edges(20, 60, 1)
        edge_file, node_file = make_graph_files(device, edges, 20, memory)
        plan = build_semi_plan(
            device, edge_file, node_file, memory, "spanning-tree"
        )
        scc_file = PlanExecutor(device).execute(plan)
        from repro.core.result import SCCResult

        assert SCCResult.from_pairs(scc_file.scan()) == reference_sccs(edges, 20)
