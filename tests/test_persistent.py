"""Tests for the persistent (real-filesystem) block device."""

import pytest

from tests.conftest import random_edges, reference_sccs

from repro.core import ExtSCC, ExtSCCConfig
from repro.exceptions import StorageError
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.persistent import PersistentBlockDevice
from repro.io.sort import external_sort


@pytest.fixture
def pdevice(tmp_path):
    return PersistentBlockDevice(tmp_path / "disk", block_size=64)


class TestBasicIO:
    def test_roundtrip(self, pdevice):
        records = [(i, i * 2) for i in range(50)]
        ef = ExternalFile.from_records(pdevice, "data", records, 8)
        assert list(ef.scan()) == records

    def test_data_actually_on_disk(self, tmp_path, pdevice):
        ExternalFile.from_records(pdevice, "data", [(1, 2)], 8)
        blk_files = list((tmp_path / "disk").glob("*.blk"))
        assert blk_files
        assert blk_files[0].stat().st_size > 0

    def test_random_block_read(self, pdevice):
        records = [(i, 0) for i in range(40)]
        ef = ExternalFile.from_records(pdevice, "data", records, 8)
        assert ef.read_block_random(2)[0] == (16, 0)

    def test_overwrite_block(self, pdevice):
        ef = ExternalFile.from_records(pdevice, "data", [(i, 0) for i in range(16)], 8)
        pdevice.overwrite_block(ef._file, 0, [(99, 99)])
        assert list(ef.read_block_random(0)) == [(99, 99)]
        assert ef.num_records == 9  # 1 + second block's 8

    def test_io_accounting_matches_ram_device(self, tmp_path):
        """Same workload, same ledger on both backends."""
        records = [(i * 7 % 97, i) for i in range(300)]
        ram = BlockDevice(block_size=64)
        disk = PersistentBlockDevice(tmp_path / "d2", block_size=64)
        for device in (ram, disk):
            infile = ExternalFile.from_records(device, "in", records, 8)
            external_sort(infile, MemoryBudget(256))
        assert ram.stats.total == disk.stats.total
        assert ram.stats.random == disk.stats.random

    def test_negative_values_roundtrip(self, pdevice):
        ef = ExternalFile.from_records(pdevice, "data", [(-5, 2**40)], 8)
        assert list(ef.scan()) == [(-5, 2**40)]

    def test_misaligned_record_size_rejected(self, pdevice):
        with pytest.raises(StorageError):
            pdevice.create("bad", record_size=7)

    def test_wrong_arity_rejected(self, pdevice):
        f = pdevice.create("data", record_size=8)
        with pytest.raises(StorageError):
            pdevice.append_block(f, [(1, 2, 3)])


class TestNamespace:
    def test_delete_removes_file(self, tmp_path, pdevice):
        ef = ExternalFile.from_records(pdevice, "data", [(1, 2)], 8)
        path = ef._file.path
        ef.delete()
        assert not path.exists()
        assert not pdevice.exists("data")

    def test_rename(self, pdevice):
        ef = ExternalFile.from_records(pdevice, "old", [(1, 2)], 8)
        pdevice.rename("old", "new")
        again = ExternalFile.open(pdevice, "new")
        assert list(again.scan()) == [(1, 2)]

    def test_awkward_names_sanitized(self, pdevice):
        ef = ExternalFile.from_records(pdevice, "a/b c:d", [(1, 2)], 8)
        assert list(ef.scan()) == [(1, 2)]


class TestPersistence:
    def test_reopen_after_close(self, tmp_path):
        records = [(i, i + 1) for i in range(30)]
        with PersistentBlockDevice(tmp_path / "d", block_size=64) as device:
            ExternalFile.from_records(device, "kept", records, 8)
        reopened = PersistentBlockDevice(tmp_path / "d", block_size=64)
        ef = ExternalFile.open(reopened, "kept")
        assert list(ef.scan()) == records
        assert ef.num_records == 30

    def test_reopen_wrong_block_size_rejected(self, tmp_path):
        with PersistentBlockDevice(tmp_path / "d", block_size=64):
            pass
        with pytest.raises(StorageError):
            PersistentBlockDevice(tmp_path / "d", block_size=128)

    def test_overwrite_counts_survive_reopen(self, tmp_path):
        with PersistentBlockDevice(tmp_path / "d", block_size=64) as device:
            ef = ExternalFile.from_records(
                device, "data", [(i, 0) for i in range(16)], 8
            )
            device.overwrite_block(ef._file, 0, [(5, 5)])
        reopened = PersistentBlockDevice(tmp_path / "d", block_size=64)
        ef = ExternalFile.open(reopened, "data")
        assert ef.num_records == 9


class TestFullPipeline:
    def test_ext_scc_on_persistent_device(self, tmp_path):
        edges = random_edges(50, 120, seed=4)
        device = PersistentBlockDevice(tmp_path / "d", block_size=64)
        memory = MemoryBudget(300)
        edge_file = EdgeFile.from_edges(device, "E", edges)
        node_file = NodeFile.from_ids(device, "V", range(50), memory, presorted=True)
        out = ExtSCC(ExtSCCConfig.optimized()).run(device, edge_file, memory,
                                                   nodes=node_file)
        assert out.num_iterations >= 1
        assert out.result == reference_sccs(edges, 50)
        assert out.io.random == 0

    def test_dfs_scc_on_persistent_device(self, tmp_path):
        from repro.baselines import dfs_scc

        edges = random_edges(40, 90, seed=5)
        device = PersistentBlockDevice(tmp_path / "d", block_size=64)
        memory = MemoryBudget(512)
        edge_file = EdgeFile.from_edges(device, "E", edges)
        node_file = NodeFile.from_ids(device, "V", range(40), memory, presorted=True)
        out = dfs_scc(device, edge_file, node_file, memory)
        assert out.result == reference_sccs(edges, 40)
        assert out.io.random > 0
