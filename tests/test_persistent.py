"""Tests for the persistent (real-filesystem) block device."""

import pytest

from tests.conftest import random_edges, reference_sccs

from repro.core import ExtSCC, ExtSCCConfig
from repro.exceptions import StorageError
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.persistent import PersistentBlockDevice
from repro.io.sort import external_sort


@pytest.fixture
def pdevice(tmp_path):
    return PersistentBlockDevice(tmp_path / "disk", block_size=64)


class TestBasicIO:
    def test_roundtrip(self, pdevice):
        records = [(i, i * 2) for i in range(50)]
        ef = ExternalFile.from_records(pdevice, "data", records, 8)
        assert list(ef.scan()) == records

    def test_data_actually_on_disk(self, tmp_path, pdevice):
        ExternalFile.from_records(pdevice, "data", [(1, 2)], 8)
        blk_files = list((tmp_path / "disk").glob("*.blk"))
        assert blk_files
        assert blk_files[0].stat().st_size > 0

    def test_random_block_read(self, pdevice):
        records = [(i, 0) for i in range(40)]
        ef = ExternalFile.from_records(pdevice, "data", records, 8)
        assert ef.read_block_random(2)[0] == (16, 0)

    def test_overwrite_block(self, pdevice):
        ef = ExternalFile.from_records(pdevice, "data", [(i, 0) for i in range(16)], 8)
        pdevice.overwrite_block(ef._file, 0, [(99, 99)])
        assert list(ef.read_block_random(0)) == [(99, 99)]
        assert ef.num_records == 9  # 1 + second block's 8

    def test_io_accounting_matches_ram_device(self, tmp_path):
        """Same workload, same ledger on both backends."""
        records = [(i * 7 % 97, i) for i in range(300)]
        ram = BlockDevice(block_size=64)
        disk = PersistentBlockDevice(tmp_path / "d2", block_size=64)
        for device in (ram, disk):
            infile = ExternalFile.from_records(device, "in", records, 8)
            external_sort(infile, MemoryBudget(256))
        assert ram.stats.total == disk.stats.total
        assert ram.stats.random == disk.stats.random

    def test_negative_values_roundtrip(self, pdevice):
        ef = ExternalFile.from_records(pdevice, "data", [(-5, 2**40)], 8)
        assert list(ef.scan()) == [(-5, 2**40)]

    def test_misaligned_record_size_rejected(self, pdevice):
        with pytest.raises(StorageError):
            pdevice.create("bad", record_size=7)

    def test_wrong_arity_rejected(self, pdevice):
        f = pdevice.create("data", record_size=8)
        with pytest.raises(StorageError):
            pdevice.append_block(f, [(1, 2, 3)])


class TestNamespace:
    def test_delete_removes_file(self, tmp_path, pdevice):
        ef = ExternalFile.from_records(pdevice, "data", [(1, 2)], 8)
        path = ef._file.path
        ef.delete()
        assert not path.exists()
        assert not pdevice.exists("data")

    def test_rename(self, pdevice):
        ef = ExternalFile.from_records(pdevice, "old", [(1, 2)], 8)
        pdevice.rename("old", "new")
        again = ExternalFile.open(pdevice, "new")
        assert list(again.scan()) == [(1, 2)]

    def test_awkward_names_sanitized(self, pdevice):
        ef = ExternalFile.from_records(pdevice, "a/b c:d", [(1, 2)], 8)
        assert list(ef.scan()) == [(1, 2)]


class TestPersistence:
    def test_reopen_after_close(self, tmp_path):
        records = [(i, i + 1) for i in range(30)]
        with PersistentBlockDevice(tmp_path / "d", block_size=64) as device:
            ExternalFile.from_records(device, "kept", records, 8)
        reopened = PersistentBlockDevice(tmp_path / "d", block_size=64)
        ef = ExternalFile.open(reopened, "kept")
        assert list(ef.scan()) == records
        assert ef.num_records == 30

    def test_reopen_wrong_block_size_rejected(self, tmp_path):
        with PersistentBlockDevice(tmp_path / "d", block_size=64):
            pass
        with pytest.raises(StorageError):
            PersistentBlockDevice(tmp_path / "d", block_size=128)

    def test_overwrite_counts_survive_reopen(self, tmp_path):
        with PersistentBlockDevice(tmp_path / "d", block_size=64) as device:
            ef = ExternalFile.from_records(
                device, "data", [(i, 0) for i in range(16)], 8
            )
            device.overwrite_block(ef._file, 0, [(5, 5)])
        reopened = PersistentBlockDevice(tmp_path / "d", block_size=64)
        ef = ExternalFile.open(reopened, "data")
        assert ef.num_records == 9


class TestFullPipeline:
    def test_ext_scc_on_persistent_device(self, tmp_path):
        edges = random_edges(50, 120, seed=4)
        device = PersistentBlockDevice(tmp_path / "d", block_size=64)
        memory = MemoryBudget(300)
        edge_file = EdgeFile.from_edges(device, "E", edges)
        node_file = NodeFile.from_ids(device, "V", range(50), memory, presorted=True)
        out = ExtSCC(ExtSCCConfig.optimized()).run(device, edge_file, memory,
                                                   nodes=node_file)
        assert out.num_iterations >= 1
        assert out.result == reference_sccs(edges, 50)
        assert out.io.random == 0

    def test_dfs_scc_on_persistent_device(self, tmp_path):
        from repro.baselines import dfs_scc

        edges = random_edges(40, 90, seed=5)
        device = PersistentBlockDevice(tmp_path / "d", block_size=64)
        memory = MemoryBudget(512)
        edge_file = EdgeFile.from_edges(device, "E", edges)
        node_file = NodeFile.from_ids(device, "V", range(40), memory, presorted=True)
        out = dfs_scc(device, edge_file, node_file, memory)
        assert out.result == reference_sccs(edges, 40)
        assert out.io.random > 0


class TestReadOnlyMode:
    def make_store(self, tmp_path, n=64):
        records = [(i, i * 10) for i in range(n)]
        with PersistentBlockDevice(tmp_path / "store", block_size=64) as device:
            ExternalFile.from_records(device, "data", records, 8)
        return records

    def test_readonly_requires_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            PersistentBlockDevice(tmp_path / "nope", block_size=64,
                                  readonly=True)

    def test_readonly_reads_identical(self, tmp_path):
        records = self.make_store(tmp_path)
        device = PersistentBlockDevice(tmp_path / "store", block_size=64,
                                       readonly=True)
        assert list(ExternalFile.open(device, "data").scan()) == records
        device.close()

    def test_readonly_rejects_every_mutation(self, tmp_path):
        self.make_store(tmp_path)
        device = PersistentBlockDevice(tmp_path / "store", block_size=64,
                                       readonly=True)
        ef = ExternalFile.open(device, "data")
        with pytest.raises(StorageError):
            device.create("new", 8)
        with pytest.raises(StorageError):
            device.delete("data")
        with pytest.raises(StorageError):
            device.rename("data", "other")
        with pytest.raises(StorageError):
            device.append_block(ef._file, [(1, 1)])
        with pytest.raises(StorageError):
            device.overwrite_block(ef._file, 0, [(1, 1)])
        device.close()


class TestSharedHandles:
    def make_store(self, tmp_path, n=64):
        records = [(i, i * 10) for i in range(n)]
        with PersistentBlockDevice(tmp_path / "store", block_size=64) as device:
            ExternalFile.from_records(device, "data", records, 8)
        return records

    def test_open_shared_refcounts(self, tmp_path):
        from repro.io.persistent import open_shared

        self.make_store(tmp_path)
        h1 = open_shared(tmp_path / "store", 64)
        h2 = open_shared(tmp_path / "store", 64)
        assert h1 is h2
        assert h1.refcount == 2
        h1.close()
        assert h1.refcount == 1
        assert h1._closed is False
        h1.close()
        assert h1._closed is True

    def test_reopen_after_full_close(self, tmp_path):
        from repro.io.persistent import open_shared

        self.make_store(tmp_path)
        h1 = open_shared(tmp_path / "store", 64)
        h1.close()
        h2 = open_shared(tmp_path / "store", 64)
        assert h2 is not h1
        h2.close()

    def test_reader_views_have_private_ledgers(self, tmp_path):
        from repro.io.persistent import open_shared

        self.make_store(tmp_path)
        handle = open_shared(tmp_path / "store", 64)
        try:
            v1, v2 = handle.reader(), handle.reader()
            ef = ExternalFile.open(v1, "data")
            ef.read_block_random(0)
            assert v1.stats.total == 1
            assert v2.stats.total == 0
            # The base device's own ledger is not what views charge.
            assert handle.device.stats.total == 0
        finally:
            handle.close()

    def test_view_rejects_mutation(self, tmp_path):
        from repro.io.persistent import open_shared

        self.make_store(tmp_path)
        handle = open_shared(tmp_path / "store", 64)
        try:
            view = handle.reader()
            with pytest.raises(StorageError):
                view.create("new", 8)
            ef = ExternalFile.open(view, "data")
            with pytest.raises(StorageError):
                view.append_block(ef._file, [(1, 1)])
        finally:
            handle.close()


class TestConcurrentReaders:
    def test_k_threads_exact_counts_and_identical_bytes(self, tmp_path):
        """The satellite stress: K clients hammer one read-only device;
        every thread sees byte-identical records and its private ledger
        carries exactly the reads it performed."""
        import threading

        from repro.io.persistent import open_shared

        records = [(i, i * 7) for i in range(128)]  # 16 blocks of 8
        with PersistentBlockDevice(tmp_path / "store", block_size=64) as dev:
            ExternalFile.from_records(dev, "data", records, 8)
        handle = open_shared(tmp_path / "store", 64)
        K, ROUNDS = 8, 5
        results = {}
        ledgers = {}
        errors = []
        barrier = threading.Barrier(K)

        def worker(k):
            try:
                with open_shared(tmp_path / "store", 64) as h:
                    view = h.reader()
                    ef = ExternalFile.open(view, "data")
                    barrier.wait()
                    seen = []
                    for _ in range(ROUNDS):
                        for b in range(ef.num_blocks):
                            seen.append(tuple(ef.read_block_random(b)))
                    results[k] = seen
                    ledgers[k] = view.stats.snapshot()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(K)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        expected_blocks = [
            tuple(records[i:i + 8]) for i in range(0, len(records), 8)
        ]
        for k in range(K):
            assert results[k] == expected_blocks * ROUNDS
            # Views have no buffer pool: every read is charged, exactly.
            assert ledgers[k].rand_reads == ROUNDS * 16
            assert ledgers[k].total == ROUNDS * 16
        assert handle.refcount == 1  # every worker lease released
        handle.close()

    def test_scan_while_random_read(self, tmp_path):
        """Concurrent sequential scans and random reads interleave safely
        (pread has no shared file position)."""
        import threading

        from repro.io.persistent import open_shared

        records = [(i, i) for i in range(256)]
        with PersistentBlockDevice(tmp_path / "store", block_size=64) as dev:
            ExternalFile.from_records(dev, "data", records, 8)
        handle = open_shared(tmp_path / "store", 64)
        errors = []

        def scanner():
            try:
                view = handle.reader()
                for _ in range(10):
                    assert list(ExternalFile.open(view, "data").scan()) == records
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def pecker():
            try:
                view = handle.reader()
                ef = ExternalFile.open(view, "data")
                for i in range(200):
                    block = i % ef.num_blocks
                    assert ef.read_block_random(block)[0] == records[block * 8]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=scanner) for _ in range(3)]
        threads += [threading.Thread(target=pecker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        handle.close()
