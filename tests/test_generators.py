"""Tests for the synthetic graph generators."""

import pytest

from tests.conftest import reference_sccs

from repro.graph.generators import (
    complete_digraph,
    cycle_graph,
    large_scc_graph,
    massive_scc_graph,
    path_graph,
    planted_scc_graph,
    random_dag,
    random_digraph,
    rmat_graph,
    small_scc_graph,
    webspam_like,
)
from repro.graph.digraph import DiGraph
from repro.memory_scc import is_dag, tarjan_scc


class TestPlanted:
    def test_determinism(self):
        a = planted_scc_graph(100, 3.0, [10, 10], seed=5)
        b = planted_scc_graph(100, 3.0, [10, 10], seed=5)
        assert a.edges == b.edges

    def test_seed_changes_graph(self):
        a = planted_scc_graph(100, 3.0, [10], seed=1)
        b = planted_scc_graph(100, 3.0, [10], seed=2)
        assert a.edges != b.edges

    def test_target_edge_count(self):
        g = planted_scc_graph(200, 4.0, [20], seed=0)
        assert g.num_edges >= 4.0 * 200 * 0.9

    def test_oversized_sccs_rejected(self):
        with pytest.raises(ValueError):
            planted_scc_graph(10, 2.0, [8, 8], seed=0)

    def test_strict_mode_sccs_exact(self):
        g = planted_scc_graph(150, 2.5, [12, 9, 7], seed=3, strict=True)
        result = reference_sccs(g.edges, g.num_nodes)
        nontrivial = [c for c in result.components() if len(c) > 1]
        assert sorted(map(tuple, nontrivial)) == sorted(map(tuple, g.planted_sccs))

    def test_nonstrict_planted_are_at_least_connected(self):
        g = planted_scc_graph(150, 2.5, [12, 9], seed=3, strict=False)
        result = reference_sccs(g.edges, g.num_nodes)
        for scc in g.planted_sccs:
            labels = {result.labels[v] for v in scc}
            assert len(labels) == 1  # planted members stay together

    def test_no_self_loops(self):
        g = planted_scc_graph(100, 3.0, [10], seed=0)
        assert all(u != v for u, v in g.edges)


class TestTable1Families:
    @pytest.mark.parametrize(
        "builder", [massive_scc_graph, large_scc_graph, small_scc_graph]
    )
    def test_family_builds(self, builder):
        g = builder(num_nodes=2000, seed=1)
        assert g.num_nodes == 2000
        assert g.num_edges > 0
        assert g.planted_sccs

    def test_massive_has_one_planted(self):
        g = massive_scc_graph(num_nodes=2000, scc_size=200, seed=0)
        assert len(g.planted_sccs) == 1
        assert len(g.planted_sccs[0]) == 200

    def test_large_scc_counts(self):
        g = large_scc_graph(num_nodes=5000, scc_size=50, scc_count=10, seed=0)
        assert len(g.planted_sccs) == 10
        assert all(len(s) == 50 for s in g.planted_sccs)

    def test_small_family_shrinks_to_fit(self):
        g = small_scc_graph(num_nodes=500, scc_size=40, scc_count=100, seed=0)
        assert sum(len(s) for s in g.planted_sccs) <= 500


class TestWebspam:
    def test_core_is_one_scc(self):
        g = webspam_like(500, avg_degree=5.0, seed=2)
        result = reference_sccs(g.edges, g.num_nodes)
        core = g.planted_sccs[0]
        assert len({result.labels[v] for v in core}) == 1
        # The core should be the giant component.
        assert result.largest_size >= len(core)

    def test_edge_budget(self):
        g = webspam_like(500, avg_degree=5.0, seed=2)
        assert g.num_edges >= 5.0 * 500

    def test_determinism(self):
        assert webspam_like(300, seed=9).edges == webspam_like(300, seed=9).edges


class TestSimpleShapes:
    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert reference_sccs(g.edges, 5).num_sccs == 1

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert reference_sccs(g.edges, 5).num_sccs == 5

    def test_complete(self):
        g = complete_digraph(5)
        assert g.num_edges == 20
        assert reference_sccs(g.edges, 5).num_sccs == 1

    def test_random_dag_is_acyclic(self):
        g = random_dag(60, 150, seed=4)
        assert is_dag(DiGraph(g.edges, nodes=range(60)))

    def test_random_digraph_counts(self):
        g = random_digraph(30, 90, seed=0)
        assert g.num_edges == 90
        assert all(u != v for u, v in g.edges)

    def test_random_digraph_self_loops_flag(self):
        g = random_digraph(10, 200, seed=0, allow_self_loops=True)
        assert any(u == v for u, v in g.edges)


class TestRMAT:
    def test_sizes(self):
        g = rmat_graph(7, edge_factor=4.0, seed=0)
        assert g.num_nodes == 128
        assert g.num_edges == 512

    def test_node_range(self):
        g = rmat_graph(6, seed=1)
        assert all(0 <= u < 64 and 0 <= v < 64 for u, v in g.edges)

    def test_deterministic(self):
        assert rmat_graph(6, seed=5).edges == rmat_graph(6, seed=5).edges

    def test_skewed_degrees(self):
        """R-MAT's point: heavy-tailed out-degrees (vs uniform random)."""
        from collections import Counter

        g = rmat_graph(9, edge_factor=8.0, seed=2)
        degrees = Counter(u for u, _ in g.edges)
        average = g.num_edges / g.num_nodes
        assert max(degrees.values()) > 5 * average

    def test_no_self_loops_by_default(self):
        g = rmat_graph(6, seed=3)
        assert all(u != v for u, v in g.edges)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(5, a=0.6, b=0.3, c=0.3)

    def test_solvable_by_all_algorithms(self):
        g = rmat_graph(6, edge_factor=3.0, seed=4)
        result = reference_sccs(g.edges, g.num_nodes)
        from repro.core import compute_sccs

        out = compute_sccs(g.edges, num_nodes=g.num_nodes, memory_bytes=300,
                           block_size=64)
        assert out.result == result
