"""Tests for the fully external BFS."""

import pytest

from tests.conftest import random_edges

from repro.baselines import external_bfs_levels, external_reachable
from repro.graph.digraph import DiGraph
from repro.graph.edge_file import EdgeFile
from repro.graph.generators import cycle_graph, path_graph


def bfs_reference(edges, sources, num_nodes):
    """In-memory BFS distances for comparison."""
    graph = DiGraph(edges, nodes=range(num_nodes))
    from collections import deque

    dist = {s: 0 for s in sources}
    queue = deque(sources)
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def run_bfs(device, memory, edges, sources):
    ef = EdgeFile.from_edges(device, device.temp_name("e"), edges)
    out = external_bfs_levels(ef, sources, memory)
    levels = dict(out.scan())
    out.delete()
    return levels


class TestLevels:
    def test_path(self, device, memory):
        levels = run_bfs(device, memory, path_graph(10).edges, [0])
        assert levels == {i: i for i in range(10)}

    def test_cycle(self, device, memory):
        levels = run_bfs(device, memory, cycle_graph(6).edges, [0])
        assert levels == {i: i for i in range(6)}

    def test_unreachable_omitted(self, device, memory):
        levels = run_bfs(device, memory, [(0, 1), (2, 3)], [0])
        assert levels == {0: 0, 1: 1}

    def test_multiple_sources(self, device, memory):
        levels = run_bfs(device, memory, path_graph(10).edges, [0, 5])
        assert levels[5] == 0
        assert levels[6] == 1
        assert levels[4] == 4

    def test_back_edges_do_not_relabel(self, device, memory):
        # 0->1->2 plus 2->0: directed BFS must not revisit 0 at level 3.
        levels = run_bfs(device, memory, [(0, 1), (1, 2), (2, 0)], [0])
        assert levels == {0: 0, 1: 1, 2: 2}

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_match_reference(self, device, memory, seed):
        edges = random_edges(40, 100, seed)
        levels = run_bfs(device, memory, edges, [0])
        assert levels == bfs_reference(edges, [0], 40)

    def test_max_levels_cap(self, device, memory):
        ef = EdgeFile.from_edges(device, "e", path_graph(10).edges)
        out = external_bfs_levels(ef, [0], memory, max_levels=3)
        assert max(d for _, d in out.scan()) == 3


class TestReachable:
    def test_reachable_sorted(self, device, memory):
        edges = [(0, 2), (2, 1), (5, 0)]
        ef = EdgeFile.from_edges(device, "e", edges)
        assert external_reachable(ef, 0, memory) == [0, 1, 2]
        assert external_reachable(ef, 5, memory) == [0, 1, 2, 5]

    def test_io_is_sequential_only(self, device, memory):
        edges = random_edges(40, 100, seed=1)
        run_bfs(device, memory, edges, [0])
        assert device.stats.random == 0

    def test_intermediate_files_cleaned(self, device, memory):
        before = set(device.list_files())
        edges = random_edges(30, 80, seed=2)
        ef = EdgeFile.from_edges(device, "keep-e", edges)
        out = external_bfs_levels(ef, [0], memory)
        out.delete()
        after = set(device.list_files())
        assert after - before == {"keep-e"}
