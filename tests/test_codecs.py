"""Tests for the record codec layer: varint primitives, the three codecs,
codec resolution, and CompressedRecordFile."""

import pytest

from repro.exceptions import StorageError
from repro.io.blocks import BlockDevice
from repro.io.codecs import (
    CODECS,
    DEFAULT_CODEC,
    CompressedRecordFile,
    FixedCodec,
    GapVarintCodec,
    VarintCodec,
    create_record_file,
    decode_varint,
    encode_varint,
    record_file_from_records,
    resolve_codec,
    zigzag_decode,
    zigzag_encode,
)
from repro.io.files import ExternalFile


class TestZigzag:
    def test_small_values(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]

    def test_roundtrip(self):
        for value in (-1000, -17, 0, 5, 1 << 40):
            assert zigzag_decode(zigzag_encode(value)) == value


class TestVarint:
    def test_roundtrip(self):
        for value in (0, 1, 127, 128, 16384, 1 << 35):
            data = encode_varint(value)
            decoded, pos = decode_varint(data, 0)
            assert decoded == value
            assert pos == len(data)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            decode_varint(encode_varint(300)[:1], 0)


class TestFixedCodec:
    def test_size_is_constant(self):
        codec = FixedCodec(8)
        assert codec.encoded_size((1, 2)) == 8
        assert codec.encoded_size((10**6, -5), prev=(1, 2)) == 8

    def test_roundtrip(self):
        codec = FixedCodec(8)
        data = codec.encode((1234, -567))
        assert len(data) == 8
        record, pos = codec.decode(data, 0, 2)
        assert record == (1234, -567)
        assert pos == 8

    def test_overflow_rejected(self):
        with pytest.raises(StorageError):
            FixedCodec(8).encode((1 << 40, 0))

    def test_misfit_field_count_rejected(self):
        with pytest.raises(StorageError):
            FixedCodec(8).encode((1, 2, 3))


class TestVarintCodec:
    def test_size_matches_encoding(self):
        codec = VarintCodec(8)
        for record in [(0, 0), (127, -64), (10**6, 10**9)]:
            assert codec.encoded_size(record) == len(codec.encode(record))

    def test_small_records_beat_fixed_width(self):
        assert VarintCodec(8).encoded_size((3, 7)) == 2

    def test_roundtrip(self):
        codec = VarintCodec(8)
        record = (300, -4)
        assert codec.decode(codec.encode(record), 0, 2)[0] == record


class TestGapVarintCodec:
    def test_gap_shrinks_sorted_streams(self):
        codec = GapVarintCodec(8, gap_field=0)
        full = codec.encoded_size((1000, 5), prev=None)
        gapped = codec.encoded_size((1001, 5), prev=(1000, 5))
        assert gapped < full

    def test_roundtrip_with_prev(self):
        codec = GapVarintCodec(8, gap_field=0)
        prev = (1000, 3)
        record = (1004, 9)
        data = codec.encode(record, prev)
        assert codec.decode(data, 0, 2, prev)[0] == record

    def test_unsorted_input_still_roundtrips(self):
        codec = GapVarintCodec(8, gap_field=0)
        prev = (1000, 3)
        record = (2, 9)  # negative delta: zigzag keeps it decodable
        assert codec.decode(codec.encode(record, prev), 0, 2, prev)[0] == record

    def test_gap_field_one(self):
        codec = GapVarintCodec(8, gap_field=1)
        prev = (7, 500)
        record = (9, 503)
        assert codec.encoded_size(record, prev) < codec.encoded_size(record, None)
        assert codec.decode(codec.encode(record, prev), 0, 2, prev)[0] == record

    def test_decode_stream(self):
        codec = GapVarintCodec(8, gap_field=0)
        records = [(10, 1), (12, 0), (12, 5), (40, 2)]
        blob = bytearray()
        prev = None
        for record in records:
            blob += codec.encode(record, prev)
            prev = record
        assert list(codec.decode_stream(bytes(blob), 2)) == records

    def test_negative_gap_field_rejected(self):
        with pytest.raises(ValueError):
            GapVarintCodec(8, gap_field=-1)


class TestResolveCodec:
    def test_instance_passthrough(self):
        codec = VarintCodec(8)
        assert resolve_codec(codec, 8) is codec

    def test_names(self):
        assert isinstance(resolve_codec("fixed", 8), FixedCodec)
        assert isinstance(resolve_codec("varint", 8), VarintCodec)
        assert isinstance(resolve_codec("gap-varint", 8), GapVarintCodec)

    def test_default_is_gap_varint(self):
        assert DEFAULT_CODEC == "gap-varint"
        assert isinstance(resolve_codec(None, 8), GapVarintCodec)

    def test_device_default_wins_over_module_default(self):
        device = BlockDevice(block_size=64)
        device.default_codec = "fixed"
        assert isinstance(resolve_codec(None, 8, device=device), FixedCodec)

    def test_explicit_name_wins_over_device(self):
        device = BlockDevice(block_size=64)
        device.default_codec = "fixed"
        assert isinstance(
            resolve_codec("gap-varint", 8, device=device), GapVarintCodec
        )

    def test_sort_field_sets_gap_field(self):
        codec = resolve_codec("gap-varint", 8, sort_field=1)
        assert codec.gap_field == 1

    def test_unordered_stream_degrades_to_varint(self):
        codec = resolve_codec("gap-varint", 8, sort_field=None)
        assert type(codec) is VarintCodec

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_codec("lz4", 8)

    def test_registry_names(self):
        assert set(CODECS) == {"fixed", "varint", "gap-varint"}


class TestCompressedRecordFile:
    def test_roundtrip_sorted_records(self, device):
        records = [(i * 3, i % 5) for i in range(200)]
        f = record_file_from_records(device, "c", records, 8, codec="gap-varint")
        assert list(f.scan()) == records
        assert f.num_records == 200

    def test_compression_ratio_on_sorted_input(self, device):
        records = [(i, 0) for i in range(500)]
        f = record_file_from_records(device, "c", records, 8, codec="gap-varint")
        assert f.compression_ratio > 2.0
        assert f.stored_bytes < f.nbytes
        assert f.num_blocks < 500 * 8 // device.block_size

    def test_block_iterator(self, device):
        records = [(i, i) for i in range(100)]
        f = record_file_from_records(device, "c", records, 8, codec="gap-varint")
        scanned = [slot[0] for block in f.scan_blocks() for slot in block]
        assert scanned == records

    def test_random_access_rejected(self, device):
        f = record_file_from_records(device, "c", [(1, 2)], 8, codec="gap-varint")
        with pytest.raises(StorageError):
            f.read_block_random(0)

    def test_scan_before_close_rejected(self, device):
        f = CompressedRecordFile(device, "c", 8, GapVarintCodec(8))
        f.append((1, 2))
        with pytest.raises(StorageError):
            f.scan()

    def test_append_after_close_rejected(self, device):
        f = record_file_from_records(device, "c", [], 8, codec="gap-varint")
        with pytest.raises(StorageError):
            f.append((1, 2))

    def test_oversized_record_rejected(self, device):
        f = CompressedRecordFile(device, "c", 8, VarintCodec(8))
        with pytest.raises(StorageError):
            # 20 ten-byte varints cannot fit one 64-byte block
            f.append(tuple(1 << 62 for _ in range(20)))

    def test_rename(self, device):
        f = record_file_from_records(device, "c", [(1, 2)], 8, codec="gap-varint")
        f.rename("renamed")
        assert f.name == "renamed"
        assert device.exists("renamed")
        assert not device.exists("c")

    def test_close_reports_payload_bytes(self, device):
        records = [(i, 1) for i in range(300)]
        f = record_file_from_records(device, "c", records, 8, codec="gap-varint")
        assert device.stats.records_written >= 300
        assert device.stats.bytes_logical >= f.nbytes
        assert device.stats.bytes_stored >= f.stored_bytes
        assert 8 in device.stats.bytes_by_width

    def test_create_record_file_fixed_yields_external_file(self, device):
        f = create_record_file(device, "f", 8, codec="fixed")
        assert isinstance(f, ExternalFile)

    def test_create_record_file_follows_device_default(self, device):
        device.default_codec = "fixed"
        assert isinstance(create_record_file(device, "f", 8), ExternalFile)
        device.default_codec = "gap-varint"
        assert isinstance(
            create_record_file(device, "g", 8), CompressedRecordFile
        )

    def test_gap_chain_restarts_at_block_boundary(self, device):
        # Large first field: full encodings are ~5 bytes, gaps 1 byte.
        # Force many block crossings and check every record survives.
        records = [(10**9 + i, 0) for i in range(400)]
        f = record_file_from_records(device, "c", records, 8, codec="gap-varint")
        assert f.num_blocks > 1
        assert list(f.scan()) == records


class TestEncodedSizesFastPaths:
    """The batch sizing fast paths against the per-record reference.

    ``VarintCodec.encoded_sizes`` has a two-field comprehension fast path
    and ``GapVarintCodec.encoded_sizes`` generates a width-specialized
    sizer per ``(width, gap_field)`` shape; both must agree exactly with
    ``encoded_size`` applied record by record — negatives, big integers,
    and every gap position included.
    """

    def _cases(self):
        big = 1 << 40
        huge = 1 << 77
        for width in range(1, 5):
            base = [
                tuple((i * 13 - 20 + f) for f in range(width))
                for i in range(40)
            ]
            spikes = [
                tuple(big if f == width - 1 else -i for f in range(width))
                for i in range(5)
            ] + [tuple(huge for _ in range(width))]
            yield width, base + spikes

    def test_gap_varint_sizes_match_reference_every_gap(self):
        for width, records in self._cases():
            for gap in range(width):
                codec = GapVarintCodec(4 * width, gap_field=gap)
                records_sorted = sorted(records, key=lambda r: r[gap])
                sizes = codec.encoded_sizes(records_sorted, prev=None)
                expected, prev = [], None
                for record in records_sorted:
                    expected.append(codec.encoded_size(record, prev))
                    prev = record
                assert sizes == expected, (width, gap)

    def test_varint_sizes_match_reference(self):
        for width, records in self._cases():
            codec = VarintCodec(4 * width)
            assert codec.encoded_sizes(records) == [
                codec.encoded_size(r) for r in records
            ], width

    def test_gap_varint_sizes_ragged_records_fall_back(self):
        codec = GapVarintCodec(8, gap_field=0)
        ragged = [(1, 2), (3, 4, 5), (6, 7)]
        assert codec.encoded_sizes(ragged, prev=None) == [
            codec.encoded_size(ragged[0], None),
            codec.encoded_size(ragged[1], ragged[0]),
            codec.encoded_size(ragged[2], ragged[1]),
        ]
