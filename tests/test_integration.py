"""Cross-module integration tests: all five solver families on the same
workloads, file-format round trips through the full pipeline, and the
memory-regime transitions the paper's Figure 7 hinges on."""

import pytest

from tests.conftest import reference_sccs

from repro.baselines import dfs_scc, em_scc
from repro.core import ExtSCCConfig, compute_sccs
from repro.core.result import SCCResult
from repro.exceptions import NonTermination
from repro.graph import (
    EdgeFile,
    NodeFile,
    dump_edge_file,
    load_edge_file,
    planted_scc_graph,
    webspam_like,
)
from repro.io import BlockDevice, MemoryBudget
from repro.memory_scc import condensation, is_dag, tarjan_scc, topological_order
from repro.graph.digraph import DiGraph
from repro.semi_external import SEMI_SCC_SOLVERS


class TestAllSolversOneWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        g = webspam_like(250, avg_degree=4.0, seed=11)
        return g.edges, g.num_nodes, reference_sccs(g.edges, g.num_nodes)

    def test_ext_scc_both_variants(self, workload):
        edges, n, reference = workload
        for optimized in (False, True):
            out = compute_sccs(edges, num_nodes=n, memory_bytes=1100,
                               block_size=128, optimized=optimized)
            assert out.result == reference

    def test_dfs_scc(self, workload):
        edges, n, reference = workload
        device = BlockDevice(block_size=128)
        memory = MemoryBudget(1100)
        ef = EdgeFile.from_edges(device, "E", edges)
        nf = NodeFile.from_ids(device, "V", range(n), memory, presorted=True)
        assert dfs_scc(device, ef, nf, memory).result == reference

    def test_semi_external_all(self, workload):
        edges, n, reference = workload
        device = BlockDevice(block_size=128)
        ef = EdgeFile.from_edges(device, "E", edges)
        for name, solver in SEMI_SCC_SOLVERS.items():
            assert SCCResult(solver(ef, range(n))) == reference, name

    def test_em_scc_with_plenty_of_memory(self, workload):
        edges, n, reference = workload
        device = BlockDevice(block_size=128)
        memory = MemoryBudget(1 << 20)
        ef = EdgeFile.from_edges(device, "E", edges)
        nf = NodeFile.from_ids(device, "V", range(n), memory, presorted=True)
        assert em_scc(device, ef, nf, memory).result == reference


class TestFileFormatPipeline:
    def test_text_file_to_sccs(self, tmp_path):
        g = planted_scc_graph(60, 2.0, [10, 8], seed=0, strict=True)
        path = tmp_path / "graph.txt"
        from repro.graph import write_edge_text

        write_edge_text(path, g.edges)
        device = BlockDevice(block_size=64)
        edge_file = load_edge_file(device, path)
        memory = MemoryBudget(300)
        from repro.core import ExtSCC

        nodes = NodeFile.from_ids(device, "V", range(60), memory, presorted=True)
        out = ExtSCC(ExtSCCConfig.optimized()).run(device, edge_file, memory, nodes=nodes)
        assert out.result == reference_sccs(g.edges, 60)

    def test_dump_after_contraction(self, tmp_path):
        from repro.core.contraction import contract

        g = planted_scc_graph(50, 2.0, [10], seed=1)
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(300)
        ef = EdgeFile.from_edges(device, "E", g.edges)
        nf = NodeFile.from_ids(device, "V", range(50), memory, presorted=True)
        level = contract(device, ef, nf, memory, ExtSCCConfig.baseline(), level=1)
        path = tmp_path / "contracted.bin"
        count = dump_edge_file(level.next_edges, path, binary=True)
        assert count == level.next_edges.num_edges


class TestMemoryRegimes:
    """The Figure 7 story: behaviour flips at M = 8|V| + B."""

    def test_exactly_at_threshold_no_contraction(self):
        g = planted_scc_graph(64, 2.0, [12], seed=2)
        threshold = 8 * 64 + 64
        out = compute_sccs(g.edges, num_nodes=64, memory_bytes=threshold,
                           block_size=64)
        assert out.num_iterations == 0

    def test_one_byte_below_threshold_contracts(self):
        g = planted_scc_graph(64, 2.0, [12], seed=2)
        threshold = 8 * 64 + 64
        out = compute_sccs(g.edges, num_nodes=64, memory_bytes=threshold - 1,
                           block_size=64)
        assert out.num_iterations >= 1

    def test_io_decreases_with_memory(self):
        g = planted_scc_graph(80, 2.0, [15], seed=3)
        costs = []
        for m in (220, 400, 8 * 80 + 64):
            out = compute_sccs(g.edges, num_nodes=80, memory_bytes=m,
                               block_size=64, optimized=True)
            costs.append(out.io.total)
        assert costs[0] > costs[-1]
        assert costs[1] >= costs[-1]


class TestDownstreamApplications:
    """The paper's motivating applications, end to end."""

    def test_topological_sort_of_condensation(self):
        g = webspam_like(120, avg_degree=3.0, seed=4)
        out = compute_sccs(g.edges, num_nodes=120, memory_bytes=2048,
                           block_size=64)
        graph = DiGraph(g.edges, nodes=range(120))
        dag = condensation(graph, out.result.labels)
        assert is_dag(dag)
        order = topological_order(dag)
        assert len(order) == out.result.num_sccs

    def test_reachability_equivalence_inside_scc(self):
        g = planted_scc_graph(60, 2.5, [12, 8], seed=5, strict=True)
        out = compute_sccs(g.edges, num_nodes=60, memory_bytes=300, block_size=64)
        from repro.memory_scc import reachable_from

        graph = DiGraph(g.edges, nodes=range(60))
        scc = g.planted_sccs[0]
        reach = reachable_from(graph, scc[0])
        assert set(scc) <= reach
        assert all(out.result.strongly_connected(scc[0], v) for v in scc)
