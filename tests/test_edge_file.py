"""Tests for edge and node files on the simulated disk."""

from repro.graph.edge_file import EdgeFile, NodeFile


EDGES = [(3, 1), (0, 2), (3, 2), (1, 0), (0, 2)]


class TestEdgeFile:
    def test_roundtrip(self, device):
        ef = EdgeFile.from_edges(device, "e", EDGES)
        assert list(ef.scan()) == EDGES
        assert ef.num_edges == 5

    def test_sorted_by_src(self, device, memory):
        ef = EdgeFile.from_edges(device, "e", EDGES)
        out = ef.sorted_by_src(memory)
        assert list(out.scan()) == sorted(EDGES)

    def test_sorted_by_dst(self, device, memory):
        ef = EdgeFile.from_edges(device, "e", EDGES)
        out = ef.sorted_by_dst(memory)
        assert list(out.scan()) == sorted(EDGES, key=lambda e: (e[1], e[0]))

    def test_sorted_unique_removes_parallels(self, device, memory):
        ef = EdgeFile.from_edges(device, "e", EDGES)
        out = ef.sorted_by_src(memory, unique=True)
        assert list(out.scan()) == sorted(set(EDGES))

    def test_reversed_copy(self, device):
        ef = EdgeFile.from_edges(device, "e", EDGES)
        rev = ef.reversed_copy()
        assert list(rev.scan()) == [(v, u) for u, v in EDGES]

    def test_node_file_derivation(self, device, memory):
        ef = EdgeFile.from_edges(device, "e", EDGES)
        nf = ef.node_file(memory)
        assert list(nf.scan()) == [0, 1, 2, 3]

    def test_deduplicated(self, device, memory):
        ef = EdgeFile.from_edges(device, "e", EDGES)
        out = ef.deduplicated(memory)
        assert out.num_edges == len(set(EDGES))

    def test_count_self_loops(self, device):
        ef = EdgeFile.from_edges(device, "e", [(0, 0), (0, 1), (1, 1)])
        assert ef.count_self_loops() == 2

    def test_len(self, device):
        assert len(EdgeFile.from_edges(device, "e", EDGES)) == 5


class TestNodeFile:
    def test_from_unsorted_ids(self, device, memory):
        nf = NodeFile.from_ids(device, "n", [5, 1, 3, 1, 5], memory)
        assert list(nf.scan()) == [1, 3, 5]
        assert nf.num_nodes == 3

    def test_presorted(self, device, memory):
        nf = NodeFile.from_ids(device, "n", range(10), memory, presorted=True)
        assert list(nf.scan()) == list(range(10))

    def test_empty(self, device, memory):
        nf = NodeFile.from_ids(device, "n", [], memory)
        assert list(nf.scan()) == []
        assert len(nf) == 0
