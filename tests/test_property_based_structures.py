"""Property-based tests (round two): the external data structures and
transforms, against in-memory oracles."""

import heapq

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.brt import BufferedRepositoryTree
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.graph.transforms import induced_subgraph, symmetrize
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.io.priority_queue import ExternalPriorityQueue

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEPQProperties:
    ops_strategy = st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.integers(0, 50), st.integers(0, 50)),
            st.tuples(st.just("pop"), st.just(0), st.just(0)),
        ),
        max_size=150,
    )

    @SETTINGS
    @given(ops_strategy)
    def test_matches_heapq(self, ops):
        device = BlockDevice(block_size=64)
        pq = ExternalPriorityQueue(device, MemoryBudget(64))
        oracle = []
        for op, key, payload in ops:
            if op == "push":
                pq.push(key, payload)
                heapq.heappush(oracle, (key, payload))
            elif oracle:
                assert pq.pop_min() == heapq.heappop(oracle)
        while oracle:
            assert pq.pop_min() == heapq.heappop(oracle)
        assert len(pq) == 0


class TestBRTProperties:
    ops_strategy = st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.integers(0, 30), st.integers(0, 99)),
            st.tuples(st.just("extract"), st.integers(0, 30), st.just(0)),
        ),
        max_size=120,
    )

    @SETTINGS
    @given(ops_strategy)
    def test_matches_dict_of_lists(self, ops):
        device = BlockDevice(block_size=64)
        brt = BufferedRepositoryTree(device, key_space=31, buffer_blocks=1)
        oracle = {}
        for op, key, value in ops:
            if op == "insert":
                brt.insert(key, value)
                oracle.setdefault(key, []).append(value)
            else:
                assert sorted(brt.extract_all(key)) == sorted(oracle.pop(key, []))
        for key in list(oracle):
            assert sorted(brt.extract_all(key)) == sorted(oracle.pop(key))


class TestTransformProperties:
    edges_strategy = st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=40
    )

    @SETTINGS
    @given(edges_strategy)
    def test_symmetrize_is_symmetric_and_idempotent(self, edges):
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(256)
        ef = EdgeFile.from_edges(device, "E", edges)
        sym = symmetrize(ef, memory)
        sym_edges = set(sym.scan())
        assert all((v, u) in sym_edges for u, v in sym_edges)
        again = symmetrize(sym, memory)
        assert set(again.scan()) == sym_edges

    @SETTINGS
    @given(edges_strategy, st.sets(st.integers(0, 12)))
    def test_induced_subgraph_definition(self, edges, keep):
        device = BlockDevice(block_size=64)
        memory = MemoryBudget(256)
        ef = EdgeFile.from_edges(device, "E", edges)
        nodes = NodeFile.from_ids(device, "N", sorted(keep), memory, presorted=True)
        out = list(induced_subgraph(ef, nodes, memory).scan())
        expected = [e for e in edges if e[0] in keep and e[1] in keep]
        assert sorted(out) == sorted(expected)


class TestDegreeSumProperty:
    edges_strategy = st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60
    )

    @SETTINGS
    @given(edges_strategy)
    def test_degree_sum_is_twice_edges(self, edges):
        from repro.analysis import degree_stats

        device = BlockDevice(block_size=64)
        memory = MemoryBudget(256)
        ef = EdgeFile.from_edges(device, "E", edges)
        stats = degree_stats(ef, memory)
        total_degree = sum(d * n for d, n in stats.histogram.items())
        assert total_degree == 2 * len(edges)
