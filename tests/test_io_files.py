"""Tests for record-oriented external files."""

import pytest

from repro.exceptions import StorageError
from repro.io.files import ExternalFile


class TestWriteRead:
    def test_roundtrip(self, device):
        records = [(i, i * 2) for i in range(50)]
        ef = ExternalFile.from_records(device, "data", records, record_size=8)
        assert list(ef.scan()) == records
        assert ef.num_records == 50

    def test_partial_block_flushed_on_close(self, device):
        ef = ExternalFile.create(device, "data", record_size=8)  # capacity 8
        ef.append((1, 2))
        assert ef.num_blocks == 0  # still buffered
        ef.close()
        assert ef.num_blocks == 1
        assert list(ef.scan()) == [(1, 2)]

    def test_num_records_includes_buffer(self, device):
        ef = ExternalFile.create(device, "data", record_size=8)
        ef.append((1, 2))
        assert ef.num_records == 1

    def test_write_after_close_rejected(self, device):
        ef = ExternalFile.from_records(device, "data", [(1, 2)], record_size=8)
        with pytest.raises(StorageError):
            ef.append((3, 4))

    def test_scan_before_close_rejected(self, device):
        ef = ExternalFile.create(device, "data", record_size=8)
        ef.append((1, 2))
        with pytest.raises(StorageError):
            list(ef.scan())

    def test_empty_file(self, device):
        ef = ExternalFile.from_records(device, "data", [], record_size=8)
        assert list(ef.scan()) == []
        assert ef.num_records == 0
        assert ef.num_blocks == 0

    def test_nbytes(self, device):
        ef = ExternalFile.from_records(device, "data", [(1,)] * 10, record_size=4)
        assert ef.nbytes == 40


class TestIOAccounting:
    def test_write_charges_one_io_per_block(self, device):
        # 64-byte blocks, 8-byte records -> 8 per block; 20 records -> 3 blocks.
        ExternalFile.from_records(device, "data", [(i, i) for i in range(20)], 8)
        assert device.stats.seq_writes == 3

    def test_scan_charges_one_io_per_block(self, device):
        ef = ExternalFile.from_records(device, "data", [(i, i) for i in range(20)], 8)
        before = device.stats.snapshot()
        list(ef.scan())
        delta = device.stats.snapshot() - before
        assert delta.seq_reads == 3
        assert delta.random == 0

    def test_random_read_charged_random(self, device):
        ef = ExternalFile.from_records(device, "data", [(i, i) for i in range(20)], 8)
        before = device.stats.snapshot()
        ef.read_block_random(1)
        delta = device.stats.snapshot() - before
        assert delta.rand_reads == 1


class TestRandomAccess:
    def test_read_record_random(self, device):
        ef = ExternalFile.from_records(device, "data", [(i, i * 3) for i in range(30)], 8)
        assert ef.read_record_random(17) == (17, 51)

    def test_read_record_out_of_range(self, device):
        ef = ExternalFile.from_records(device, "data", [(1, 1)], 8)
        with pytest.raises(StorageError):
            ef.read_record_random(5)


class TestScanBlocks:
    def test_yields_whole_blocks(self, device):
        records = [(i, i) for i in range(20)]  # 8 per 64B block
        ef = ExternalFile.from_records(device, "data", records, 8)
        blocks = list(ef.scan_blocks())
        assert [len(b) for b in blocks] == [8, 8, 4]
        assert [r for b in blocks for r in b] == records

    def test_scan_blocks_before_close_rejected(self, device):
        ef = ExternalFile.create(device, "data", record_size=8)
        ef.append((1, 2))
        with pytest.raises(StorageError):
            list(ef.scan_blocks())


class TestScanReverse:
    def test_reverse_order(self, device):
        records = [(i,) for i in range(25)]
        ef = ExternalFile.from_records(device, "data", records, record_size=4)
        assert list(ef.scan_reverse()) == list(reversed(records))

    def test_reverse_charges_sequential(self, device):
        ef = ExternalFile.from_records(device, "data", [(i,) for i in range(25)], 4)
        before = device.stats.snapshot()
        list(ef.scan_reverse())
        delta = device.stats.snapshot() - before
        assert delta.seq_reads == ef.num_blocks
        assert delta.random == 0


class TestManagement:
    def test_open_existing(self, device):
        ExternalFile.from_records(device, "data", [(1, 2)], 8)
        again = ExternalFile.open(device, "data")
        assert list(again.scan()) == [(1, 2)]

    def test_rename(self, device):
        ef = ExternalFile.from_records(device, "data", [(1, 2)], 8)
        ef.rename("renamed")
        assert device.exists("renamed")
        assert not device.exists("data")

    def test_delete(self, device):
        ef = ExternalFile.from_records(device, "data", [(1, 2)], 8)
        ef.delete()
        assert not device.exists("data")
