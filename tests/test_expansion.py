"""Tests for the expansion phase (Algorithm 5)."""

import pytest

from tests.conftest import make_graph_files, random_edges, reference_sccs

from repro.core.config import ExtSCCConfig
from repro.core.contraction import contract
from repro.core.expansion import augment, expand_level
from repro.core.result import SCCResult
from repro.semi_external import run_semi_scc_to_file, spanning_tree_scc


def one_round(device, memory, edges, num_nodes, config):
    """Contract once, solve the contracted graph exactly, expand back."""
    edge_file, node_file = make_graph_files(device, edges, num_nodes, memory)
    level = contract(device, edge_file, node_file, memory, config, level=1)
    scc_next = run_semi_scc_to_file(
        spanning_tree_scc, level.next_edges, level.next_nodes.scan(), memory
    )
    scc_file = expand_level(device, level, scc_next, memory, config)
    return level, SCCResult.from_pairs(scc_file.scan())


CONFIGS = {
    "baseline": ExtSCCConfig.baseline(),
    "optimized": ExtSCCConfig.optimized(),
    "validating": ExtSCCConfig(validate=True),
}


@pytest.fixture(params=sorted(CONFIGS), ids=str)
def config(request):
    return CONFIGS[request.param]


class TestExpandLevel:
    @pytest.mark.parametrize("seed", range(6))
    def test_recovers_reference_sccs(self, device, memory, config, seed):
        edges = random_edges(35, 85, seed, self_loops=True)
        _, result = one_round(device, memory, edges, 35, config)
        assert result == reference_sccs(edges, 35)

    def test_labels_every_node(self, device, memory, config):
        edges = random_edges(30, 60, seed=9)
        _, result = one_round(device, memory, edges, 30, config)
        assert sorted(result.labels) == list(range(30))

    def test_isolated_nodes_become_singletons(self, device, memory, config):
        edges = [(0, 1), (1, 0)]
        _, result = one_round(device, memory, edges, 6, config)
        for v in range(2, 6):
            assert result.component_of(v) == [v]

    def test_removed_cycle_member_joins_scc(self, device, memory):
        # 0-1-2 form a triangle; the lowest-degree corner is removed by
        # contraction and must be re-attached to the SCC during expansion.
        edges = [(0, 1), (1, 2), (2, 0), (3, 0)]
        _, result = one_round(device, memory, edges, 4, ExtSCCConfig.baseline())
        assert result.component_of(0) == [0, 1, 2]
        assert result.component_of(3) == [3]

    def test_bridge_node_stays_singleton(self, device, memory, config):
        # h-style node between two SCCs (Example 6.1: in-neighbor SCCs and
        # out-neighbor SCCs are disjoint -> singleton).
        edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 3)]
        _, result = one_round(device, memory, edges, 5, config)
        assert result.component_of(2) == [2]

    def test_only_sequential_io(self, device, memory, config):
        edges = random_edges(30, 70, seed=4)
        one_round(device, memory, edges, 30, config)
        assert device.stats.random == 0


class TestAugment:
    def test_records_sorted_by_removed_node_then_scc(self, device, memory):
        edges = random_edges(25, 60, seed=3)
        edge_file, node_file = make_graph_files(device, edges, 25, memory)
        config = ExtSCCConfig.baseline()
        level = contract(device, edge_file, node_file, memory, config, level=1)
        scc_next = run_semi_scc_to_file(
            spanning_tree_scc, level.next_edges, level.next_nodes.scan(), memory
        )
        out = augment(device, level.edges, level.next_nodes, scc_next, memory)
        records = list(out.scan())
        keys = [(r[1], r[2], r[0]) for r in records]
        assert keys == sorted(keys)
        removed = set(level.removed.scan())
        assert all(r[1] in removed for r in records)

    def test_augment_attaches_correct_scc(self, device, memory):
        # Graph: 1 <-> 2 one SCC; removed node is 0 with edge (1, 0).
        edges = [(1, 2), (2, 1), (1, 0)]
        edge_file, node_file = make_graph_files(device, edges, 3, memory)
        config = ExtSCCConfig.baseline()
        level = contract(device, edge_file, node_file, memory, config, level=1)
        removed = set(level.removed.scan())
        if 0 not in removed:
            pytest.skip("contraction kept node 0 on this layout")
        scc_next = run_semi_scc_to_file(
            spanning_tree_scc, level.next_edges, level.next_nodes.scan(), memory
        )
        out = augment(device, level.edges, level.next_nodes, scc_next, memory)
        records = [r for r in out.scan() if r[1] == 0]
        assert records, "edge into removed node 0 must be augmented"
        labels = dict((n, s) for n, s in scc_next.scan())
        assert all(r[2] == labels[r[0]] for r in records)
