"""Tests for the cascading Type-1 trimming extension (trim_rounds > 1)."""

import pytest

from tests.conftest import make_graph_files, random_edges, reference_sccs

from repro.core import ExtSCCConfig, compute_sccs
from repro.core.contraction import contract
from repro.graph.generators import random_dag


def chain_cycle_chain(in_len=15, cycle_len=4, out_len=15):
    """in-chain -> cycle -> out-chain: trimming cascades along the chains."""
    edges = [(i, i + 1) for i in range(in_len)]
    cycle_start = in_len
    for i in range(cycle_len):
        edges.append((cycle_start + i, cycle_start + (i + 1) % cycle_len))
    out_start = cycle_start + cycle_len
    edges.append((cycle_start, out_start))
    edges.extend((out_start + i, out_start + i + 1) for i in range(out_len - 1))
    return edges, out_start + out_len


class TestCorrectness:
    @pytest.mark.parametrize("rounds", [1, 2, 4, 8])
    def test_chain_cycle_chain(self, rounds):
        edges, n = chain_cycle_chain()
        config = ExtSCCConfig.optimized(trim_rounds=rounds)
        out = compute_sccs(edges, num_nodes=n, memory_bytes=160,
                           block_size=64, config=config)
        assert out.result == reference_sccs(edges, n)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("rounds", [2, 5])
    def test_random_graphs(self, seed, rounds):
        edges = random_edges(45, 100, seed, self_loops=True)
        config = ExtSCCConfig.optimized(trim_rounds=rounds)
        out = compute_sccs(edges, num_nodes=45, memory_bytes=250,
                           block_size=64, config=config)
        assert out.result == reference_sccs(edges, 45)

    def test_dag_fully_trimmed(self, device, memory):
        """On a DAG repeated trimming can peel the whole graph."""
        g = random_dag(40, 80, seed=2)
        config = ExtSCCConfig.optimized(trim_rounds=50)
        out = compute_sccs(g.edges, num_nodes=40, memory_bytes=200,
                           block_size=64, config=config)
        assert out.result.num_sccs == 40


class TestEffect:
    def test_more_rounds_trim_more_nodes(self, device, memory):
        edges, n = chain_cycle_chain(in_len=20, out_len=20)
        covers = {}
        for rounds in (1, 10):
            config = ExtSCCConfig.optimized(trim_rounds=rounds)
            edge_file, node_file = make_graph_files(device, edges, n, memory)
            level = contract(device, edge_file, node_file, memory, config, level=1)
            covers[rounds] = level.next_nodes.num_nodes
        assert covers[10] < covers[1]

    def test_round_one_matches_plain_type1(self, device, memory):
        """trim_rounds=1 is exactly the paper's single-pass Type-1."""
        edges = random_edges(40, 90, seed=3)
        results = []
        for rounds in (1,):
            config_a = ExtSCCConfig(trim_type1=True, trim_rounds=rounds)
            edge_file, node_file = make_graph_files(device, edges, 40, memory)
            level = contract(device, edge_file, node_file, memory, config_a, level=1)
            results.append(sorted(level.next_nodes.scan()))
        config_b = ExtSCCConfig(trim_type1=True)
        edge_file, node_file = make_graph_files(device, edges, 40, memory)
        level = contract(device, edge_file, node_file, memory, config_b, level=1)
        assert sorted(level.next_nodes.scan()) == results[0]

    def test_rounds_ignored_without_type1(self, device, memory):
        edges = random_edges(40, 90, seed=4)
        config_plain = ExtSCCConfig.baseline()
        config_rounds = ExtSCCConfig(trim_rounds=7)
        outs = []
        for config in (config_plain, config_rounds):
            edge_file, node_file = make_graph_files(device, edges, 40, memory)
            level = contract(device, edge_file, node_file, memory, config, level=1)
            outs.append(sorted(level.next_nodes.scan()))
        assert outs[0] == outs[1]
