#!/usr/bin/env python3
"""Topological scheduling with cyclic clusters — the paper's application (1).

"In a topological sort ... if there are cycles in the graph, all nodes in
a cycle are considered as equal rank and are merged into one node.  This
is done by finding all SCCs in the graph."

This example runs the full production pipeline on a build-system-style
dependency graph whose packages contain mutual (cyclic) dependencies:

1. **Ext-SCC-Op** labels the SCCs under a tight memory budget;
2. the condensation DAG merges each cycle into one schedulable unit;
3. **time-forward processing** over the external DAG (an external priority
   queue, Chiang et al.'s classic technique) assigns every unit its
   pipeline *stage* = longest dependency chain below it;
4. the stages are verified: every dependency crosses to a strictly later
   stage.

Run:  python examples/scheduling_levels.py
"""

from collections import Counter

from repro import compute_sccs
from repro.analysis import dag_levels
from repro.graph import EdgeFile, planted_scc_graph
from repro.graph.digraph import DiGraph
from repro.io import BlockDevice, MemoryBudget
from repro.memory_scc import condensation, topological_order


def main() -> None:
    # A dependency graph: 2000 tasks, ~3 deps each, with mutually-dependent
    # clusters (the planted SCCs) that must be scheduled as single units.
    num_tasks = 2000
    graph_data = planted_scc_graph(
        num_tasks, avg_degree=3.0, scc_sizes=[60, 40, 40, 25, 25], seed=21,
        strict=True,  # keep the clusters distinct under the random filler
    )
    print(f"dependency graph: {num_tasks} tasks, {graph_data.num_edges} edges, "
          f"{len(graph_data.planted_sccs)} cyclic clusters")

    # 1. SCCs under external-memory conditions (60% of the node array fits).
    output = compute_sccs(
        graph_data.edges, num_nodes=num_tasks,
        memory_bytes=int(0.6 * 8 * num_tasks), block_size=1024, optimized=True,
    )
    result = output.result
    print(f"Ext-SCC-Op: {result.num_sccs} units "
          f"({result.num_nontrivial} merged cycles) in "
          f"{output.num_iterations} iterations, {output.io.total} block I/Os")

    # 2. Condense: one node per schedulable unit.
    graph = DiGraph(graph_data.edges, nodes=range(num_tasks))
    dag = condensation(graph, result.labels)
    order = topological_order(dag)

    # 3. Stage assignment by external time-forward processing.
    device = BlockDevice(block_size=1024)
    memory = MemoryBudget(16 * 1024)
    dag_edges = EdgeFile.from_edges(device, "dag", sorted(dag.edges()))
    level_file = dag_levels(device, dag_edges, order, memory)
    stage_of_unit = dict(level_file.scan())
    print(f"time-forward processing: {device.stats.total} block I/Os "
          f"({device.stats.random} random)")

    # 4. Report and verify the schedule.
    stage_of_task = {
        task: stage_of_unit[result.labels[task]] for task in range(num_tasks)
    }
    stages = Counter(stage_of_task.values())
    print(f"\nschedule: {len(stages)} stages "
          f"(longest dependency chain = {max(stages)})")
    for stage in sorted(stages)[:6]:
        print(f"  stage {stage:>2}: {stages[stage]:>5} tasks")
    if len(stages) > 6:
        print(f"  ... {len(stages) - 6} more stages")

    for u, v in graph_data.edges:
        if result.labels[u] != result.labels[v]:
            assert stage_of_task[u] < stage_of_task[v], (u, v)
    print("\nverified: every cross-unit dependency lands in a later stage")


if __name__ == "__main__":
    main()
