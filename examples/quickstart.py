#!/usr/bin/env python3
"""Quickstart: compute all SCCs of a directed graph with Ext-SCC.

Run:  python examples/quickstart.py
"""

from repro import compute_sccs
from repro.graph import figure1_graph

FIGURE1_LABELS = "abcdefghijklm"


def main() -> None:
    # The paper's running example (Figure 1): 13 nodes, 20 edges, two
    # non-trivial SCCs {b..g} and {i..l}.
    graph = figure1_graph()

    # A deliberately tiny memory budget (160 bytes, 64-byte blocks) forces
    # the full contract-and-expand pipeline: the node set does not fit, so
    # Ext-SCC contracts the graph level by level, solves the smallest graph
    # semi-externally, and expands back.
    output = compute_sccs(
        graph.edges,
        num_nodes=graph.num_nodes,
        memory_bytes=160,
        block_size=64,
        optimized=True,  # Ext-SCC-Op: all Section VII reductions on
    )

    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"contraction iterations: {output.num_iterations}")
    for record in output.iterations:
        print(
            f"  level {record.level}: |V| {record.num_nodes} -> "
            f"{record.next_num_nodes}, |E| {record.num_edges} -> "
            f"{record.next_num_edges}"
        )
    print(f"block I/Os: {output.io.total} "
          f"(sequential {output.io.sequential}, random {output.io.random})")

    print(f"\nfound {output.result.num_sccs} SCCs:")
    for component in output.result.components():
        members = "".join(FIGURE1_LABELS[v] for v in component)
        print(f"  {{{', '.join(members)}}}")

    assert output.io.random == 0, "Ext-SCC never performs a random I/O"


if __name__ == "__main__":
    main()
