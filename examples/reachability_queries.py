#!/usr/bin/env python3
"""Reachability queries via SCC condensation — the paper's application (2).

"Almost all algorithms to process reachability queries over a general
directed graph G first convert G into a DAG by contracting an SCC into a
node."  This example does exactly that: Ext-SCC-Op labels the SCCs, then
:class:`repro.apps.ReachabilityIndex` (GRAIL-style randomized interval
labelings with a memoized-DFS exception path) answers queries, and every
answer is verified against plain BFS on the original graph.

Run:  python examples/reachability_queries.py
"""

import random

from repro import compute_sccs
from repro.apps import ReachabilityIndex
from repro.graph import planted_scc_graph
from repro.graph.digraph import DiGraph
from repro.memory_scc import reachable_from


def main() -> None:
    num_nodes = 1500
    graph_data = planted_scc_graph(
        num_nodes, avg_degree=3.0, scc_sizes=[120, 80, 40, 40], seed=13
    )
    print(f"graph: {num_nodes} nodes, {graph_data.num_edges} edges, "
          f"{len(graph_data.planted_sccs)} planted SCCs")

    output = compute_sccs(
        graph_data.edges, num_nodes=num_nodes,
        memory_bytes=(8 * num_nodes) // 2, block_size=1024, optimized=True,
    )
    print(f"Ext-SCC-Op: {output.result.num_sccs} SCCs in "
          f"{output.num_iterations} iterations, {output.io.total} block I/Os")

    graph = DiGraph(graph_data.edges, nodes=range(num_nodes))
    index = ReachabilityIndex(graph, output.result.labels, num_labelings=3)

    rng = random.Random(7)
    queries = [(rng.randrange(num_nodes), rng.randrange(num_nodes))
               for _ in range(500)]
    positive = 0
    for u, v in queries:
        answer = index.reachable(u, v)
        truth = v in reachable_from(graph, u)
        assert answer == truth, (u, v, answer, truth)
        positive += answer
    print(f"\nanswered {len(queries)} random reachability queries "
          f"({positive} positive), all verified against BFS")
    stats = index.stats
    print(f"index paths: {stats.same_scc} same-SCC, "
          f"{stats.interval_pruned} interval-pruned, "
          f"{stats.dfs_decided} DFS-decided")

    inside = graph_data.planted_sccs[0]
    u, v = inside[0], inside[-1]
    print(f"inside the largest planted SCC: {u} -> {v}: "
          f"{index.reachable(u, v)}, {v} -> {u}: {index.reachable(v, u)}")


if __name__ == "__main__":
    main()
