#!/usr/bin/env python3
"""Bow-tie analysis of a web graph — the paper's WEBSPAM-UK2007 scenario.

Web graphs decompose into a giant core SCC, an IN set that reaches it, an
OUT set it reaches, and tendrils.  SCC computation is the first step of
that analysis; this example runs Ext-SCC-Op on a synthetic web crawl and
derives the bow-tie decomposition from the result.

Run:  python examples/webgraph_bowtie.py
"""

from collections import Counter

from repro import compute_sccs
from repro.graph import webspam_like
from repro.graph.digraph import DiGraph
from repro.memory_scc import condensation, reachable_from


def main() -> None:
    num_nodes = 3000
    graph = webspam_like(num_nodes, avg_degree=5.0, seed=42)
    print(f"web crawl stand-in: {num_nodes} pages, {graph.num_edges} links")

    # Memory for only ~55% of the node array: the crawl must be contracted
    # before the semi-external solver can run.
    memory_bytes = int(0.55 * (8 * num_nodes + 1024))
    output = compute_sccs(
        graph.edges, num_nodes=num_nodes,
        memory_bytes=memory_bytes, block_size=1024, optimized=True,
    )
    result = output.result
    print(f"Ext-SCC-Op: {output.num_iterations} contraction iterations, "
          f"{output.io.total} block I/Os ({output.io.random} random)")

    # --- bow-tie decomposition from the SCC labeling -----------------------
    sizes = Counter(result.labels.values())
    core_label, core_size = sizes.most_common(1)[0]
    print(f"\nSCCs: {result.num_sccs}  (largest = {core_size} pages, "
          f"{100 * core_size / num_nodes:.1f}% of the crawl)")

    dag = condensation(DiGraph(graph.edges, nodes=range(num_nodes)), result.labels)
    downstream = reachable_from(dag, core_label)
    upstream = reachable_from(dag.reversed(), core_label)

    def members(scc_labels) -> int:
        return sum(sizes[label] for label in scc_labels)

    out_part = members(downstream - {core_label})
    in_part = members(upstream - {core_label})
    tendrils = num_nodes - core_size - out_part - in_part
    print("bow-tie decomposition:")
    print(f"  CORE     : {core_size:>6} pages")
    print(f"  IN       : {in_part:>6} pages (reach the core)")
    print(f"  OUT      : {out_part:>6} pages (reached from the core)")
    print(f"  TENDRILS : {tendrils:>6} pages")

    histogram = sorted(Counter(sizes.values()).items())
    print("\nSCC size distribution (size -> count):")
    for size, count in histogram[:8]:
        print(f"  {size:>5} -> {count}")
    if len(histogram) > 8:
        size, count = histogram[-1]
        print(f"  ... largest: {size} -> {count}")


if __name__ == "__main__":
    main()
