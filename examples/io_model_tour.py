#!/usr/bin/env python3
"""A tour of the simulated external-memory subsystem.

Shows the machinery underneath Ext-SCC: the block device and its I/O
ledger, external sort under a memory budget, merge joins, and how the four
SCC algorithms differ in their I/O *pattern* on the same graph — the
quantity the paper's evaluation is about.

Run:  python examples/io_model_tour.py
"""

import random

from repro.bench import run_algorithm, shuffled_edges
from repro.graph import EdgeFile, large_scc_graph
from repro.io import BlockDevice, MemoryBudget, external_sort


def tour_the_device() -> None:
    print("=== 1. The block device and its ledger =========================")
    device = BlockDevice(block_size=256)  # 256-byte blocks: 32 edges each
    edges = [(random.Random(0).randrange(500), i) for i in range(10_000)]
    edge_file = EdgeFile.from_edges(device, "edges", edges)
    print(f"wrote {edge_file.num_edges} edges -> "
          f"{edge_file.file.num_blocks} blocks, "
          f"{device.stats.seq_writes} sequential writes")

    before = device.stats.snapshot()
    total = sum(1 for _ in edge_file.scan())
    delta = device.stats.snapshot() - before
    print(f"scanned {total} edges: {delta.seq_reads} sequential reads, "
          f"{delta.random} random")

    before = device.stats.snapshot()
    edge_file.file.read_block_random(edge_file.file.num_blocks // 2)
    delta = device.stats.snapshot() - before
    print(f"one seek into the middle: {delta.rand_reads} random read")


def tour_external_sort() -> None:
    print("\n=== 2. External sort under a memory budget =====================")
    for memory_bytes in (1024, 8192, 65536):
        device = BlockDevice(block_size=256)
        rng = random.Random(1)
        records = [(rng.randrange(100_000), 0) for _ in range(20_000)]
        from repro.io import ExternalFile

        infile = ExternalFile.from_records(device, "in", records, 8)
        before = device.stats.snapshot()
        out = external_sort(infile, MemoryBudget(memory_bytes))
        delta = device.stats.snapshot() - before
        assert list(out.scan())[:3] == sorted(records)[:3]
        print(f"M = {memory_bytes:>6} bytes: sort of 20k records costs "
              f"{delta.total:>6} block I/Os (all sequential: {delta.random == 0})")


def tour_algorithms() -> None:
    print("\n=== 3. Four algorithms, one graph, four I/O profiles ===========")
    graph = large_scc_graph(num_nodes=1200, seed=3)
    edges = shuffled_edges(graph)
    memory_bytes = (8 * graph.num_nodes) // 2  # half the node array fits
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"M = {memory_bytes} bytes (nodes do NOT fit)\n")
    print(f"{'algorithm':>10}  {'status':>8}  {'I/Os':>8}  {'random':>7}  {'SCCs':>5}")
    for name in ("Ext-SCC", "Ext-SCC-Op", "DFS-SCC", "EM-SCC"):
        result = run_algorithm(name, edges, graph.num_nodes, memory_bytes,
                               block_size=256, io_budget=2_000_000)
        sccs = result.num_sccs if result.num_sccs is not None else "-"
        print(f"{name:>10}  {result.status:>8}  {result.io_total:>8,}  "
              f"{result.io_random:>7,}  {sccs:>5}")
    print("\nExt-SCC's contraction/expansion touches the disk only through "
          "scans and sorts\n(zero random I/Os); external DFS seeks per node; "
          "EM-SCC's whole-graph\ncontraction heuristic does not terminate on "
          "this input — the paper's Section IV.")


def main() -> None:
    tour_the_device()
    tour_external_sort()
    tour_algorithms()


if __name__ == "__main__":
    main()
