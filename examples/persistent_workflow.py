#!/usr/bin/env python3
"""A persistent workflow: graph data that outlives the process.

The simulated device normally lives in RAM; the
:class:`~repro.io.persistent.PersistentBlockDevice` keeps the same
interface and I/O ledger but stores every block in real files, so a
pipeline can be staged: ingest today, compute tomorrow, query later.

This example stages exactly that:

1. ingest an edge list onto a persistent device and close it;
2. reopen the device, run Ext-SCC-Op, store the labels *on the device*;
3. reopen again and answer strong-connectivity queries from the stored
   labels without recomputing anything.

Run:  python examples/persistent_workflow.py
"""

import tempfile
from pathlib import Path

from repro.constants import SCC_RECORD_BYTES
from repro.core import ExtSCC, ExtSCCConfig
from repro.graph import EdgeFile, NodeFile, webspam_like
from repro.io import ExternalFile, MemoryBudget, PersistentBlockDevice


def stage_1_ingest(directory: Path) -> int:
    graph = webspam_like(1500, avg_degree=5.0, seed=99)
    with PersistentBlockDevice(directory, block_size=1024) as device:
        EdgeFile.from_edges(device, "graph/edges", graph.edges)
        NodeFile.from_ids(device, "graph/nodes", range(graph.num_nodes),
                          MemoryBudget(1 << 16), presorted=True)
        print(f"[stage 1] ingested {graph.num_edges} edges "
              f"({device.stats.seq_writes} sequential block writes)")
    return graph.num_nodes


def stage_2_compute(directory: Path, num_nodes: int) -> None:
    with PersistentBlockDevice(directory, block_size=1024) as device:
        edges = EdgeFile(ExternalFile.open(device, "graph/edges"))
        nodes = NodeFile(ExternalFile.open(device, "graph/nodes"))
        memory = MemoryBudget(int(0.6 * 8 * num_nodes))  # force contraction
        output = ExtSCC(ExtSCCConfig.optimized()).run(device, edges, memory, nodes=nodes)
        labels = ExternalFile.create(device, "graph/scc-labels", SCC_RECORD_BYTES)
        for node in sorted(output.result.labels):
            labels.append((node, output.result.labels[node]))
        labels.close()
        print(f"[stage 2] {output.result.num_sccs} SCCs in "
              f"{output.num_iterations} iterations, {output.io.total} block "
              f"I/Os ({output.io.random} random); labels persisted")


def stage_3_query(directory: Path) -> None:
    with PersistentBlockDevice(directory, block_size=1024) as device:
        labels_file = ExternalFile.open(device, "graph/scc-labels")
        labels = dict(labels_file.scan())
        pairs = [(0, 1), (10, 500), (42, 43)]
        print("[stage 3] strong-connectivity queries from stored labels:")
        for u, v in pairs:
            verdict = "YES" if labels[u] == labels[v] else "no"
            print(f"  {u} <-> {v}: {verdict}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-demo-") as tmp:
        directory = Path(tmp) / "device"
        num_nodes = stage_1_ingest(directory)
        stage_2_compute(directory, num_nodes)
        stage_3_query(directory)
        blk = sorted(p.name for p in directory.glob("*.blk"))
        print(f"\non-disk device files: {len(blk)} .blk files + manifest.json")


if __name__ == "__main__":
    main()
