"""Sort and merge kernels for the external-sort inner loops.

Two hot spots in :mod:`repro.io.runs` / :mod:`repro.io.sort` are pure
record shuffling with no I/O of their own:

* the **fits-in-memory sort** — a whole run buffer sorted at once
  (:func:`sort_records`); vectorized as one ``np.lexsort`` over the
  record columns when the sort order is the record's own lexicographic
  order or a registered column permutation.  The win over the scalar
  path is largest for keyed sorts, where the scalar ``list.sort`` pays a
  Python key-function call per record;
* the **unkeyed 2-way merge** — the most common merge shape (two runs,
  records compare as their own tuples), replaced by a chunked
  concatenate-and-stable-sort merge (:func:`merge_two_unkeyed`).  The
  bulk operation here is deliberately *not* numpy: ``sorted`` over the
  two concatenated chunks hits Timsort's C galloping run-merge, which
  measures ~2x faster than the scalar two-pointer loop, while any
  tuple↔ndarray round trip costs more per record than the whole scalar
  merge.  Because the chunked merge is batch-granularity *host* work —
  the same trade the batch record path makes — it activates whenever
  either fast-path switch (``REPRO_NUMPY`` or ``REPRO_BATCH_IO``) is
  on, and the scalar two-pointer loops remain the byte-identical
  reference.

Both kernels are *output-identical* to their scalar counterparts,
including the stability contract (ties emit the left/earlier stream
first — the stable sorts see the left chunk before the right chunk).
Chunking reads ahead up to :data:`MERGE_CHUNK` records per stream, which
reorders *host* work only: every simulated block is still read exactly
once, in the same scan, so the I/O ledger cannot move.

Records that do not fit the sort kernel's vector form (ragged arity,
non-integers, values beyond int64) make :func:`sort_records` fall back
to the scalar whole-buffer sort; the merge kernel compares records as
Python objects and needs no such fallback.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import chain, islice
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.kernels import _flags

__all__ = [
    "MERGE_CHUNK",
    "SORT_MIN",
    "merge_two_keyed",
    "merge_two_unkeyed",
    "sort_records",
]

Record = Tuple[int, ...]
KeyFn = Callable[[Record], object]

MERGE_CHUNK = 4096
"""Records read ahead per stream and merged per chunk step."""

SORT_MIN = 1024
"""Below this many records the conversion overhead beats the lexsort win
(pure heuristic — both paths produce identical output)."""

_DONE = object()


def _chunked_active() -> bool:
    """Whether the chunked (batch-granularity) merges should dispatch.

    The chunked merge needs no numpy — it is bulk host-side record work,
    the same trade the batch record path makes — so either fast-path
    switch turns it on.  The import is local because :mod:`repro.io.codecs`
    imports this module for its array helpers.
    """
    if _flags.available():
        return True
    from repro.io.codecs import batch_enabled

    return batch_enabled()


def _to_array(np, records):
    """Records → 2-D int64 array, or ``None`` when they don't fit the
    vector form (ragged, non-integer, or beyond int64).

    ``np.fromiter`` over the flattened records runs ~2x faster than
    ``np.asarray`` on a list of tuples; the explicit arity check (a
    C-level ``set(map(len, ...))`` pass) keeps a ragged buffer from being
    silently misaligned by the flat fill.
    """
    width = len(records[0]) if records else 0
    if width == 0 or set(map(len, records)) != {width}:
        return None
    try:
        flat = np.fromiter(
            chain.from_iterable(records),
            dtype=np.int64,
            count=width * len(records),
        )
    except (ValueError, TypeError, OverflowError):
        return None
    return flat.reshape(-1, width)


def _rows(np, arr) -> List[Record]:
    """2-D array → list of record tuples.  ``zip`` over per-column
    ``tolist`` runs ~5x faster than ``map(tuple, arr.tolist())``."""
    return list(zip(*(arr[:, c].tolist() for c in range(arr.shape[1]))))


def sort_records(
    buffer: List[Record],
    key: Optional[KeyFn] = None,
    columns: Optional[Tuple[int, ...]] = None,
) -> List[Record]:
    """Sort a record buffer; returns the sorted list (maybe ``buffer``
    itself, sorted in place).

    Args:
        buffer: the records to sort.
        key: the sort key; ``None`` sorts records as their own tuples.
        columns: when ``key`` is a pure column permutation, its column
            priority (primary first) — lets the vector path handle the
            registered injective keys.  Ignored when ``key`` is ``None``
            (the natural order is all columns in order).

    The numpy path runs only when it can reproduce the scalar sort
    exactly: unkeyed or column-permutation order over uniform int64
    records.  Permutation keys are injective (equal keys ⇒ equal
    records), so ``np.lexsort``'s stable order writes the same bytes as
    the stable list sort.
    """
    if key is not None and columns is None:
        buffer.sort(key=key)
        return buffer
    np = _flags.numpy_module()
    if np is None or len(buffer) < SORT_MIN:
        buffer.sort(key=key)
        return buffer
    arr = _to_array(np, buffer)
    if arr is None:
        buffer.sort(key=key)
        return buffer
    if columns is None:
        columns = tuple(range(arr.shape[1]))
    if max(columns, default=-1) >= arr.shape[1]:
        buffer.sort(key=key)
        return buffer
    # lexsort's *last* key is primary, so feed the priority reversed.
    order = np.lexsort(tuple(arr[:, c] for c in reversed(columns)))
    return _rows(np, arr[order])


def merge_two_unkeyed(
    left: Iterable[Record], right: Iterable[Record]
) -> Iterator[Record]:
    """Stable unkeyed two-way merge; ties emit the left stream first.

    Dispatches to the chunked galloping merge when either fast path
    (numpy kernels or the batch record path) is active, else to the
    classic two-pointer loop.  Output is identical either way.
    """
    if _chunked_active():
        return _merge_two_chunked(left, right)
    return _merge_two_scalar(left, right)


def _merge_two_chunked(
    left: Iterable[Record], right: Iterable[Record]
) -> Iterator[Record]:
    """Record-stream view of :func:`_merge_two_batches`.

    ``chain.from_iterable`` flattens the batches in C — one generator
    resumption per chunk instead of per record, which is worth ~40% of
    the whole merge at :data:`MERGE_CHUNK` scale.
    """
    return chain.from_iterable(_merge_two_batches(iter(left), iter(right)))


def _merge_two_scalar(
    left: Iterable[Record], right: Iterable[Record]
) -> Iterator[Record]:
    """The classic stable two-pointer merge (the scalar reference)."""
    left = iter(left)
    right = iter(right)
    l = next(left, _DONE)
    r = next(right, _DONE)
    while l is not _DONE and r is not _DONE:
        if r < l:  # type: ignore[operator]
            yield r
            r = next(right, _DONE)
        else:
            yield l
            l = next(left, _DONE)
    while l is not _DONE:
        yield l
        l = next(left, _DONE)
    while r is not _DONE:
        yield r
        r = next(right, _DONE)


def _fill(stream: Iterator[Record]) -> List[Record]:
    return list(islice(stream, MERGE_CHUNK))


def _merge_two_batches(
    left: Iterator[Record], right: Iterator[Record]
) -> Iterator[List[Record]]:
    """Chunked bulk merge via Timsort's galloping run-merge; yields
    *batches* of merged records.

    Each step sorts the concatenation of the live chunks (left first, so
    the stable sort resolves ties left-first — Timsort recognizes the
    two pre-sorted runs and merges them in C with galloping), then emits
    the prefix that can no longer be disturbed and retains the rest as
    the survivor side's live chunk:

    * left chunk exhausted first (``last_l <= last_r``) — emit every
      record ``< last_l`` plus the left records ``== last_l``; right
      records tying ``last_l`` are retained, because a *future* left
      record may still equal them and must win the tie;
    * right chunk exhausted first — emit everything ``<= last_r``
      (a buffered left tie already precedes any future right tie, and
      future right records equal to ``last_r`` follow their buffered
      stream-mates), retain the left records beyond it.

    Both rules reproduce the two-pointer loop's order exactly; the
    equivalence suite pins this on random and adversarial tie streams.
    """
    l_buf = _fill(left)
    r_buf = _fill(right)
    while l_buf and r_buf:
        last_l = l_buf[-1]
        last_r = r_buf[-1]
        merged = l_buf + r_buf
        merged.sort()
        if last_l <= last_r:  # type: ignore[operator]
            cut = bisect_left(merged, last_l) + (
                len(l_buf) - bisect_left(l_buf, last_l)
            )
            r_buf = merged[cut:]
            l_buf = _fill(left)
        else:
            cut = bisect_right(merged, last_r)
            l_buf = merged[cut:]
            r_buf = _fill(right)
        del merged[cut:]  # the retained tail is typically tiny; keep the
        yield merged  # big prefix in place instead of copying it

    # One stream ended with its buffer drained; flush the survivor side
    # in chunks (the other stream is exhausted).
    rest, stream = (l_buf, left) if l_buf else (r_buf, right)
    while rest:
        yield rest
        rest = _fill(stream)


def merge_two_keyed(
    left: Iterable[Record], right: Iterable[Record], key: KeyFn
) -> Iterator[Record]:
    """Stable keyed two-way merge; ties (equal keys) emit the left stream
    first.

    Same dispatch as :func:`merge_two_unkeyed`: the chunked galloping
    merge when either fast path is active (``sorted(key=...)``
    decorates in C, so a cheap key like an ``itemgetter`` never enters
    the interpreter loop), else the classic two-pointer loop that
    computes each key exactly once.
    """
    if _chunked_active():
        return chain.from_iterable(
            _merge_two_keyed_batches(iter(left), iter(right), key)
        )
    return _merge_two_keyed_scalar(left, right, key)


def _merge_two_keyed_scalar(
    left: Iterable[Record], right: Iterable[Record], key: KeyFn
) -> Iterator[Record]:
    """The classic stable keyed two-pointer merge (the scalar reference).

    Like :func:`heapq.merge`, the key is computed once per record.
    """
    left = iter(left)
    right = iter(right)
    l = next(left, _DONE)
    r = next(right, _DONE)
    if l is not _DONE and r is not _DONE:
        lk = key(l)
        rk = key(r)
        while True:
            if rk < lk:  # type: ignore[operator]
                yield r
                r = next(right, _DONE)
                if r is _DONE:
                    break
                rk = key(r)
            else:
                yield l
                l = next(left, _DONE)
                if l is _DONE:
                    break
                lk = key(l)
    while l is not _DONE:
        yield l
        l = next(left, _DONE)
    while r is not _DONE:
        yield r
        r = next(right, _DONE)


def _merge_two_keyed_batches(
    left: Iterator[Record], right: Iterator[Record], key: KeyFn
) -> Iterator[List[Record]]:
    """:func:`_merge_two_batches` with every comparison routed through
    ``key`` — the boundary-retention rules are identical with "record"
    read as "record's key" (ties are *equal keys*, resolved left-first by
    the stable sort)."""
    l_buf = _fill(left)
    r_buf = _fill(right)
    while l_buf and r_buf:
        last_l = key(l_buf[-1])
        last_r = key(r_buf[-1])
        merged = l_buf + r_buf
        merged.sort(key=key)
        if not last_r < last_l:  # type: ignore[operator]
            cut = bisect_left(merged, last_l, key=key) + (
                len(l_buf) - bisect_left(l_buf, last_l, key=key)
            )
            r_buf = merged[cut:]
            l_buf = _fill(left)
        else:
            cut = bisect_right(merged, last_r, key=key)
            l_buf = merged[cut:]
            r_buf = _fill(right)
        del merged[cut:]
        yield merged

    rest, stream = (l_buf, left) if l_buf else (r_buf, right)
    while rest:
        yield rest
        rest = _fill(stream)
