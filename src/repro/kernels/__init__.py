"""Vectorized CPU kernels behind ``REPRO_NUMPY=1``.

The simulated external-memory model charges I/O per *block*, but the
host-CPU cost of a run is dominated by per-record Python loops: frontier
propagation in the semi-external solvers touches every edge per scan, and
the sort/merge inner loops touch every record per pass.  This package
holds the vectorized replacements for those loops — numpy-backed when the
fast path is active, byte-identical pure-Python otherwise — so every call
site stays single-sourced on *semantics* and dual-sourced only on the
arithmetic:

* :mod:`repro.kernels.reachability` — frontier propagation for the FW-BW
  solver family (single-bit and multi-source bitset-column variants).
* :mod:`repro.kernels.merge` — the fits-in-memory sort and the unkeyed
  2-way merge of the external sort.

This package is also the single home of the ``REPRO_NUMPY`` feature
flag.  :mod:`repro.io.codecs` (the first numpy consumer) delegates here,
so "is the numpy path on?" has exactly one answer process-wide:

* :func:`available` — the flag is set *and* numpy imports.
* :func:`fallback_reason` — why the pure-Python path is running
  (``None`` when the numpy path is active); surfaced by ``scc -v`` and
  the ``--trace-json`` context so a silently-degraded benchmark run is
  visible in its artifacts.
* :func:`set_enabled` — test/bench toggle, mirroring
  ``set_batch_enabled``.

Every kernel obeys the contract the batch record path established:
**bit-for-bit output equality with the scalar loop**.  The numpy path
may reorder host work (chunking, lookahead) but never changes a staged
mark, an emitted record, or any simulated-I/O counter.
"""

from repro.kernels._flags import (
    available,
    fallback_reason,
    numpy_module,
    requested,
    set_enabled,
)
from repro.kernels.merge import (
    MERGE_CHUNK,
    merge_two_keyed,
    merge_two_unkeyed,
    sort_records,
)
from repro.kernels.reachability import (
    RESOLVED,
    ReachabilityKernel,
    reachability_kernel,
)

__all__ = [
    "available",
    "fallback_reason",
    "numpy_module",
    "requested",
    "set_enabled",
    "MERGE_CHUNK",
    "merge_two_keyed",
    "merge_two_unkeyed",
    "sort_records",
    "RESOLVED",
    "ReachabilityKernel",
    "reachability_kernel",
]
