"""The ``REPRO_NUMPY`` feature flag, shared by every kernel module.

Lives in its own module (not ``kernels/__init__``) so the kernel
implementations can import it without a circular import through the
package root; user code should reach these names through
:mod:`repro.kernels`.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "available",
    "fallback_reason",
    "numpy_module",
    "requested",
    "set_enabled",
]

_enabled = os.environ.get("REPRO_NUMPY", "0") == "1"
_np = None  # cached module once imported; never unloaded
_import_failed = False


def _load_numpy():
    global _np, _import_failed
    if _np is None and not _import_failed:
        try:
            import numpy
        except ImportError:
            _import_failed = True
            return None
        _np = numpy
    return _np


def requested() -> bool:
    """Whether the numpy path was asked for (``REPRO_NUMPY=1`` or
    :func:`set_enabled`), regardless of whether numpy is importable."""
    return _enabled


def available() -> bool:
    """Whether the numpy kernel path is active: requested *and* numpy
    imports.  The pure-Python fallback is byte-identical, so this is a
    performance switch, never a correctness one."""
    return _enabled and _load_numpy() is not None


def numpy_module():
    """The numpy module when :func:`available`, else ``None``."""
    return _np if available() else None


def fallback_reason() -> Optional[str]:
    """Why the scalar path is running (``None`` when numpy is active).

    Distinguishes "not requested" from "requested but numpy missing" —
    the latter is the case worth a ``scc -v`` warning, because the user
    asked for the fast path and is silently not getting it.
    """
    if available():
        return None
    if _enabled:
        return "numpy requested (REPRO_NUMPY=1) but not importable"
    return "numpy path not requested (set REPRO_NUMPY=1)"


def set_enabled(enabled: bool) -> bool:
    """Toggle the numpy kernel path; returns the previous setting."""
    global _enabled
    previous, _enabled = _enabled, bool(enabled)
    return previous
