"""Frontier-propagation kernels for the semi-external solvers.

Every reachability round in the FW-BW family is, at heart, the same
operation: scan the edge file once and OR frontier marks across edges
whose endpoints share an unresolved partition.  The solvers differ only
in *when* staged marks become visible:

* **scan-granular (Jacobi)** — marks stage against the scan-start state
  and apply after the full scan (:meth:`ReachabilityKernel.stage_pass`).
  Staging is a commutative OR, so shards of one scan may stage in any
  order; :mod:`~repro.semi_external.parallel_fw_bw` builds on this.
* **block-granular** — marks stage against the *block-start* state and
  apply at each block boundary
  (:meth:`ReachabilityKernel.relax_to_fixpoint`,
  :meth:`ReachabilityKernel.relax_masks_to_fixpoint`).  Marks from
  earlier blocks are visible to later blocks of the same scan, so a scan
  propagates further than a Jacobi scan, but the outcome no longer
  depends on edge order *within* a block — which is exactly the
  granularity a bulk boolean-mask OR can reproduce bit-for-bit.

Both granularities reach the same fixpoint (reachability closure is
schedule-independent); only the number of charged scans differs.  The
numpy and scalar implementations of each method are mark-for-mark
identical — same staged bits, same round counts, same ledger — which the
kernel equivalence suite pins on random graphs.

The numpy path decodes each edge block into dense index columns once per
scan (``np.asarray`` + a sorted-id lookup), then stages marks with one
``np.bitwise_or.at`` scatter per direction instead of a Python loop per
edge.  Nothing is cached across scans: every scan re-reads its blocks
through the charged sequential-scan path, so the I/O ledger is untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from repro.kernels import _flags

__all__ = ["ReachabilityKernel", "reachability_kernel", "RESOLVED"]

Record = Tuple[int, ...]
Block = Sequence[Record]

RESOLVED = -1
"""Partition id of a node whose SCC label is final (shared by the FW-BW
family; kept here so the kernels can exclude resolved nodes uniformly)."""


def reachability_kernel(nodes: List[int]) -> "ReachabilityKernel":
    """Build the reachability kernel for a node universe — numpy-backed
    when :func:`repro.kernels.available`, scalar otherwise.  The choice is
    made once per solver run; both produce identical marks."""
    if _flags.available():
        return _NumpyReachability(nodes)
    return _ScalarReachability(nodes)


class ReachabilityKernel:
    """Shared interface of the two implementations (see module docs)."""

    def mark_degrees(
        self,
        blocks: Iterable[Block],
        part: List[int],
        has_in: bytearray,
        has_out: bytearray,
    ) -> None:
        """Trim marking: for every edge inside a live partition, set
        ``has_out`` on the source and ``has_in`` on the target.  Pure OR —
        safe to call once per shard against shared buffers."""
        raise NotImplementedError

    def stage_pass(
        self,
        blocks: Iterable[Block],
        part: List[int],
        active: Set[int],
        fwd: bytearray,
        bwd: bytearray,
        new_fwd: bytearray,
        new_bwd: bytearray,
    ) -> None:
        """One Jacobi staging pass: read ``fwd``/``bwd`` (the previous
        round's bits), OR staged marks into ``new_fwd``/``new_bwd``.
        Never reads the staging buffers, so shards may run concurrently."""
        raise NotImplementedError

    def relax_to_fixpoint(
        self,
        scan_blocks: Callable[[], Iterable[Block]],
        part: List[int],
        active: Set[int],
        fwd: bytearray,
        bwd: bytearray,
    ) -> int:
        """Block-granular relaxation to the reachability fixpoint: repeat
        sequential scans (``scan_blocks()`` opens a fresh charged scan per
        round) until one full scan sets no new bit; marks apply at each
        block boundary.  Returns the number of scans charged."""
        raise NotImplementedError

    def relax_masks_to_fixpoint(
        self,
        scan_blocks: Callable[[], Iterable[Block]],
        part: List[int],
        active: Set[int],
        fwd: List[int],
        bwd: List[int],
    ) -> int:
        """Multi-source variant of :meth:`relax_to_fixpoint`: each node
        carries one bitset *column per source* (an S-bit integer mask),
        and the staged OR merges whole masks, so S frontiers advance in
        every shared scan.  Returns the number of scans charged."""
        raise NotImplementedError


# -- scalar implementation ---------------------------------------------------


class _ScalarReachability(ReachabilityKernel):
    """Pure-Python fallback: fused per-edge loops, staged per block where
    the semantics call for it.  This is the reference the numpy path must
    match bit-for-bit."""

    def __init__(self, nodes: List[int]) -> None:
        self.n = len(nodes)
        self._index: Dict[int, int] = {v: i for i, v in enumerate(nodes)}

    def mark_degrees(self, blocks, part, has_in, has_out):
        index = self._index
        for block in blocks:
            for u, v in block:
                iu = index[u]
                iv = index[v]
                pu = part[iu]
                if pu == RESOLVED or pu != part[iv]:
                    continue
                has_out[iu] = 1
                has_in[iv] = 1

    def stage_pass(self, blocks, part, active, fwd, bwd, new_fwd, new_bwd):
        index = self._index
        for block in blocks:
            for u, v in block:
                iu = index[u]
                iv = index[v]
                pu = part[iu]
                if pu == RESOLVED or pu != part[iv] or pu not in active:
                    continue
                if fwd[iu] and not fwd[iv]:
                    new_fwd[iv] = 1
                if bwd[iv] and not bwd[iu]:
                    new_bwd[iu] = 1

    def relax_to_fixpoint(self, scan_blocks, part, active, fwd, bwd):
        index = self._index
        scans = 0
        changed = True
        while changed:
            changed = False
            scans += 1
            for block in scan_blocks():
                # Stage against block-start bits, apply at the block
                # boundary: sources read the array (unmodified during the
                # block), targets collect in the staging dicts.
                staged_f: Dict[int, int] = {}
                staged_b: Dict[int, int] = {}
                for u, v in block:
                    iu = index[u]
                    iv = index[v]
                    pu = part[iu]
                    if pu == RESOLVED or pu != part[iv] or pu not in active:
                        continue
                    if fwd[iu] and not fwd[iv]:
                        staged_f[iv] = 1
                    if bwd[iv] and not bwd[iu]:
                        staged_b[iu] = 1
                for i in staged_f:
                    if not fwd[i]:
                        fwd[i] = 1
                        changed = True
                for i in staged_b:
                    if not bwd[i]:
                        bwd[i] = 1
                        changed = True
        return scans

    def relax_masks_to_fixpoint(self, scan_blocks, part, active, fwd, bwd):
        index = self._index
        scans = 0
        changed = True
        while changed:
            changed = False
            scans += 1
            for block in scan_blocks():
                staged_f: Dict[int, int] = {}
                staged_b: Dict[int, int] = {}
                for u, v in block:
                    iu = index[u]
                    iv = index[v]
                    pu = part[iu]
                    if pu == RESOLVED or pu != part[iv] or pu not in active:
                        continue
                    m = fwd[iu] & ~fwd[iv]
                    if m:
                        staged_f[iv] = staged_f.get(iv, 0) | m
                    m = bwd[iv] & ~bwd[iu]
                    if m:
                        staged_b[iu] = staged_b.get(iu, 0) | m
                for i, m in staged_f.items():
                    merged = fwd[i] | m
                    if merged != fwd[i]:
                        fwd[i] = merged
                        changed = True
                for i, m in staged_b.items():
                    merged = bwd[i] | m
                    if merged != bwd[i]:
                        bwd[i] = merged
                        changed = True
        return scans


# -- numpy implementation ----------------------------------------------------


class _NumpyReachability(ReachabilityKernel):
    """Vectorized path: one decode per block per scan, bulk boolean-mask
    OR per direction.  Mark-for-mark identical to the scalar kernel."""

    def __init__(self, nodes: List[int]) -> None:
        np = _flags.numpy_module()
        assert np is not None  # guarded by the factory
        self._np = np
        self.n = len(nodes)
        ids = np.asarray(nodes, dtype=np.int64)
        if self.n and bool((ids == np.arange(self.n, dtype=np.int64)).all()):
            # Dense 0..n-1 universe: identity mapping, skip the search.
            self._dense = True
            self._sorted_ids = self._positions = None
        else:
            self._dense = False
            order = np.argsort(ids, kind="stable")
            self._sorted_ids = ids[order]
            self._positions = order

    def _decode(self, block: Block):
        """One block of ``(u, v)`` records → dense index columns."""
        np = self._np
        arr = np.asarray(block, dtype=np.int64)
        if arr.size == 0:
            return None, None
        u = arr[:, 0]
        v = arr[:, 1]
        if self._dense:
            return u, v
        iu = self._positions[np.searchsorted(self._sorted_ids, u)]
        iv = self._positions[np.searchsorted(self._sorted_ids, v)]
        return iu, iv

    def _active_lookup(self, part, active):
        """``part`` as an array plus a partition-id → live? table.  The
        table has one trailing ``False`` slot so ``RESOLVED`` (-1) indexes
        to an always-dead entry."""
        np = self._np
        parr = np.asarray(part, dtype=np.int64)
        size = int(parr.max(initial=0)) + 2
        lookup = np.zeros(size, dtype=bool)
        live = [p for p in active if p < size - 1]
        if live:
            lookup[live] = True
        return parr, lookup

    def _eligible(self, iu, iv, parr, lookup):
        pu = parr[iu]
        mask = (pu == parr[iv]) & lookup[pu]
        return iu[mask], iv[mask]

    def mark_degrees(self, blocks, part, has_in, has_out):
        np = self._np
        parr = np.asarray(part, dtype=np.int64)
        out_np = np.zeros(self.n, dtype=bool)
        in_np = np.zeros(self.n, dtype=bool)
        for block in blocks:
            iu, iv = self._decode(block)
            if iu is None:
                continue
            pu = parr[iu]
            mask = (pu == parr[iv]) & (pu != RESOLVED)
            out_np[iu[mask]] = True
            in_np[iv[mask]] = True
        for i in np.nonzero(out_np)[0].tolist():
            has_out[i] = 1
        for i in np.nonzero(in_np)[0].tolist():
            has_in[i] = 1

    def stage_pass(self, blocks, part, active, fwd, bwd, new_fwd, new_bwd):
        np = self._np
        parr, lookup = self._active_lookup(part, active)
        fwd_np = np.frombuffer(bytes(fwd), dtype=np.uint8).astype(bool)
        bwd_np = np.frombuffer(bytes(bwd), dtype=np.uint8).astype(bool)
        staged_f = np.zeros(self.n, dtype=bool)
        staged_b = np.zeros(self.n, dtype=bool)
        for block in blocks:
            iu, iv = self._decode(block)
            if iu is None:
                continue
            iu, iv = self._eligible(iu, iv, parr, lookup)
            staged_f[iv[fwd_np[iu] & ~fwd_np[iv]]] = True
            staged_b[iu[bwd_np[iv] & ~bwd_np[iu]]] = True
        for i in np.nonzero(staged_f)[0].tolist():
            new_fwd[i] = 1
        for i in np.nonzero(staged_b)[0].tolist():
            new_bwd[i] = 1

    def relax_to_fixpoint(self, scan_blocks, part, active, fwd, bwd):
        np = self._np
        parr, lookup = self._active_lookup(part, active)
        fwd_np = np.frombuffer(bytes(fwd), dtype=np.uint8).copy()
        bwd_np = np.frombuffer(bytes(bwd), dtype=np.uint8).copy()
        scans = 0
        changed = True
        while changed:
            changed = False
            scans += 1
            for block in scan_blocks():
                iu, iv = self._decode(block)
                if iu is None:
                    continue
                iu, iv = self._eligible(iu, iv, parr, lookup)
                # Gather block-start bits, then set the newly-reached
                # targets: reads never see marks from the same block,
                # matching the scalar kernel's staged apply at the block
                # boundary.
                tgt_f = iv[(fwd_np[iu] != 0) & (fwd_np[iv] == 0)]
                tgt_b = iu[(bwd_np[iv] != 0) & (bwd_np[iu] == 0)]
                if tgt_f.size:
                    fwd_np[tgt_f] = 1
                    changed = True
                if tgt_b.size:
                    bwd_np[tgt_b] = 1
                    changed = True
        fwd[:] = fwd_np.tobytes()
        bwd[:] = bwd_np.tobytes()
        return scans

    def relax_masks_to_fixpoint(self, scan_blocks, part, active, fwd, bwd):
        np = self._np
        parr, lookup = self._active_lookup(part, active)
        fwd_np = np.asarray(fwd, dtype=np.uint64)
        bwd_np = np.asarray(bwd, dtype=np.uint64)
        scans = 0
        changed = True
        while changed:
            changed = False
            scans += 1
            for block in scan_blocks():
                iu, iv = self._decode(block)
                if iu is None:
                    continue
                iu, iv = self._eligible(iu, iv, parr, lookup)
                # Bits the source carries that the target lacked at block
                # start; scatter-OR accumulates duplicates of one target.
                cand_f = fwd_np[iu] & ~fwd_np[iv]
                cand_b = bwd_np[iv] & ~bwd_np[iu]
                new_f = cand_f != 0
                new_b = cand_b != 0
                if bool(new_f.any()):
                    np.bitwise_or.at(fwd_np, iv[new_f], cand_f[new_f])
                    changed = True
                if bool(new_b.any()):
                    np.bitwise_or.at(bwd_np, iu[new_b], cand_b[new_b])
                    changed = True
        fwd[:] = [int(m) for m in fwd_np.tolist()]
        bwd[:] = [int(m) for m in bwd_np.tolist()]
        return scans
