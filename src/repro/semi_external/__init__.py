"""Semi-external SCC solvers: all node state in memory (``c*|V| <= M``),
edges streamed from disk with sequential scans only.

The spanning-tree solver reproduces the mechanism of the paper's Semi-SCC
substrate (1PB-SCC [26]); FW-BW and coloring are independent
implementations used to cross-check it and offered as alternates through
:data:`SEMI_SCC_SOLVERS`.
"""

from typing import Callable, Dict, Iterable, Optional

from repro.constants import SCC_RECORD_BYTES
from repro.graph.edge_file import EdgeFile
from repro.io.blocks import BlockDevice
from repro.io.codecs import RecordStore, record_file_from_records
from repro.io.memory import MemoryBudget
from repro.plan import ExtPlan, Materialize, Rewrite, Scan
from repro.semi_external.coloring import coloring_scc
from repro.semi_external.forward_backward import forward_backward_scc
from repro.semi_external.multi_bfs import multi_bfs_scc
from repro.semi_external.parallel_fw_bw import parallel_fw_bw_scc
from repro.semi_external.semi_kosaraju import semi_kosaraju_scc
from repro.semi_external.spanning_tree import SpanningTreeStats, spanning_tree_scc
from repro.semi_external.union_find import UnionFind

__all__ = [
    "spanning_tree_scc",
    "forward_backward_scc",
    "multi_bfs_scc",
    "parallel_fw_bw_scc",
    "coloring_scc",
    "semi_kosaraju_scc",
    "SpanningTreeStats",
    "UnionFind",
    "SEMI_SCC_SOLVERS",
    "SemiSCCSolver",
    "run_semi_scc_to_file",
    "build_semi_plan",
    "SEMI_SCC_PRICED_PASSES",
]

SEMI_SCC_PRICED_PASSES = 3
"""Edge scans the cost model prices a semi-external solver at (matches
``CostModel.semi_scc``'s default caller; actual solver passes are
data-dependent)."""

SemiSCCSolver = Callable[..., Dict[int, int]]
"""A semi-external solver: ``(edge_file, node_ids, memory=...) -> labels``."""

SEMI_SCC_SOLVERS: Dict[str, SemiSCCSolver] = {
    "spanning-tree": spanning_tree_scc,
    "forward-backward": forward_backward_scc,
    "parallel-fw-bw": parallel_fw_bw_scc,
    "multi-bfs": multi_bfs_scc,
    "coloring": coloring_scc,
}
"""Scan-only semi-external solvers by name; ``"spanning-tree"`` is the
default Semi-SCC used by Ext-SCC (mirrors the paper's choice of 1PB-SCC).
The DFS-based :func:`semi_kosaraju_scc` is kept out of this map because
its I/O profile is random-read-bound — it is the Section III comparison
point, not a scan-only substrate."""


def run_semi_scc_to_file(
    solver: SemiSCCSolver,
    edge_file: EdgeFile,
    node_ids: Iterable[int],
    memory: MemoryBudget,
    out_name: Optional[str] = None,
) -> RecordStore:
    """Run a semi-external solver and persist ``(node, scc)`` records.

    The labels live in memory while the solver runs (the semi-external
    allowance); they are written back sorted by node id with sequential
    writes, which is the format the expansion phase consumes.
    """
    labels = solver(edge_file, node_ids, memory=memory)
    device: BlockDevice = edge_file.device
    name = out_name if out_name is not None else device.temp_name("scc")
    records = ((node, labels[node]) for node in sorted(labels))
    return record_file_from_records(device, name, records, SCC_RECORD_BYTES, sort_field=0)


def build_semi_plan(
    device: BlockDevice,
    edges: EdgeFile,
    nodes,
    memory: MemoryBudget,
    solver_name: str,
) -> "ExtPlan":
    """Declare the semi-external hand-off as a one-stage plan.

    The operator DAG prices the solver at the cost model's
    :data:`SEMI_SCC_PRICED_PASSES` sequential edge scans (the in-memory
    label computation and write-back are free in the model); the final
    ``Materialize`` declares the ``semi`` checkpoint role.
    """
    e = edges.num_edges
    v = nodes.num_nodes
    plan = ExtPlan("semi-scc", phase="semi-scc")
    ops = [
        plan.add(Scan(f"E_l pass {k}", inputs=("E_l pass " + str(k - 1),)
                      if k > 1 else (), records=e, record_size=8,
                      cost=("scan", e, 8)))
        for k in range(1, SEMI_SCC_PRICED_PASSES + 1)
    ]
    ops.append(plan.add(Rewrite(f"{solver_name} labels",
                                inputs=(f"E_l pass {SEMI_SCC_PRICED_PASSES}",),
                                records=v, record_size=SCC_RECORD_BYTES)))
    ops.append(plan.add(Materialize("SCC_l",
                                    inputs=(f"{solver_name} labels",),
                                    records=v, record_size=SCC_RECORD_BYTES,
                                    checkpoint="semi")))

    def run_semi(ctx: dict) -> RecordStore:
        solver = SEMI_SCC_SOLVERS[solver_name]
        return run_semi_scc_to_file(solver, edges, nodes.scan(), memory)

    plan.stage("semi-scc", ops, run_semi)
    return plan
