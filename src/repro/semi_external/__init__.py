"""Semi-external SCC solvers: all node state in memory (``c*|V| <= M``),
edges streamed from disk with sequential scans only.

The spanning-tree solver reproduces the mechanism of the paper's Semi-SCC
substrate (1PB-SCC [26]); FW-BW and coloring are independent
implementations used to cross-check it and offered as alternates through
:data:`SEMI_SCC_SOLVERS`.
"""

from typing import Callable, Dict, Iterable, Optional

from repro.constants import SCC_RECORD_BYTES
from repro.graph.edge_file import EdgeFile
from repro.io.blocks import BlockDevice
from repro.io.codecs import RecordStore, record_file_from_records
from repro.io.memory import MemoryBudget
from repro.semi_external.coloring import coloring_scc
from repro.semi_external.forward_backward import forward_backward_scc
from repro.semi_external.parallel_fw_bw import parallel_fw_bw_scc
from repro.semi_external.semi_kosaraju import semi_kosaraju_scc
from repro.semi_external.spanning_tree import SpanningTreeStats, spanning_tree_scc
from repro.semi_external.union_find import UnionFind

__all__ = [
    "spanning_tree_scc",
    "forward_backward_scc",
    "parallel_fw_bw_scc",
    "coloring_scc",
    "semi_kosaraju_scc",
    "SpanningTreeStats",
    "UnionFind",
    "SEMI_SCC_SOLVERS",
    "SemiSCCSolver",
    "run_semi_scc_to_file",
]

SemiSCCSolver = Callable[..., Dict[int, int]]
"""A semi-external solver: ``(edge_file, node_ids, memory=...) -> labels``."""

SEMI_SCC_SOLVERS: Dict[str, SemiSCCSolver] = {
    "spanning-tree": spanning_tree_scc,
    "forward-backward": forward_backward_scc,
    "parallel-fw-bw": parallel_fw_bw_scc,
    "coloring": coloring_scc,
}
"""Scan-only semi-external solvers by name; ``"spanning-tree"`` is the
default Semi-SCC used by Ext-SCC (mirrors the paper's choice of 1PB-SCC).
The DFS-based :func:`semi_kosaraju_scc` is kept out of this map because
its I/O profile is random-read-bound — it is the Section III comparison
point, not a scan-only substrate."""


def run_semi_scc_to_file(
    solver: SemiSCCSolver,
    edge_file: EdgeFile,
    node_ids: Iterable[int],
    memory: MemoryBudget,
    out_name: Optional[str] = None,
) -> RecordStore:
    """Run a semi-external solver and persist ``(node, scc)`` records.

    The labels live in memory while the solver runs (the semi-external
    allowance); they are written back sorted by node id with sequential
    writes, which is the format the expansion phase consumes.
    """
    labels = solver(edge_file, node_ids, memory=memory)
    device: BlockDevice = edge_file.device
    name = out_name if out_name is not None else device.temp_name("scc")
    records = ((node, labels[node]) for node in sorted(labels))
    return record_file_from_records(device, name, records, SCC_RECORD_BYTES, sort_field=0)
