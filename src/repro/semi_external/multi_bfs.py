"""Multi-source BFS semi-external SCC (batched reachability).

The FW-BW family spends one pair of reachability searches per pivot, so a
graph that needs R pivot rounds costs R rounds of sequential scans.  Wang
et al. (*Parallel Strong Connectivity Based on Faster Reachability*)
observe that most of those searches are independent and can share edge
scans: batch S sources, give every node one reachability *bit per source*,
and propagate all S frontiers in the same sweep.  This solver restates
that idea in the semi-external model:

* **Trim rounds** — identical to
  :mod:`~repro.semi_external.parallel_fw_bw`: nodes with no in- or no
  out-edge inside their partition resolve as singletons, to a fixpoint.
* **Batched pivot rounds** — every active partition nominates up to S
  pivots (its S smallest node ids); pivot ``c`` of a partition owns bit
  ``c`` of that partition's nodes' forward/backward masks.  Columns are
  *shared across partitions*: propagation never crosses a partition
  boundary, so bit ``c`` in two different partitions cannot interfere and
  S columns serve every partition at once.
  :meth:`~repro.kernels.ReachabilityKernel.relax_masks_to_fixpoint`
  advances all frontiers per scan (block-granular, like the serial FW-BW
  kernel), so a workload that FW-BW covers in R pivot rounds costs about
  R/S rounds of scans here.
* **Split** — a node with ``fwd & bwd`` nonzero is in the SCC of its
  lowest such column's pivot (SCC members have identical masks at the
  fixpoint, so the choice is consistent).  Unresolved nodes split by
  ``(partition, fwd mask, bwd mask)`` — no SCC crosses a mask boundary —
  with new partition ids assigned in node order, deterministically.

**Vertical granularity control.**  Masks cost ``2 * ceil(S/8)`` bytes per
node beyond the solver's base ``8 * |V| + B`` footprint, so S is capped by
the spare memory: the largest multiple of 8 with
``2 * ceil(S/8) * |V| <= M - 8*|V| - B`` (floor 1, ceiling
:data:`MAX_SOURCES` — one machine word per direction).  A tight budget
degrades S gracefully toward plain FW-BW instead of failing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.constants import SEMI_EXTERNAL_BYTES_PER_NODE
from repro.graph.edge_file import EdgeFile
from repro.io.memory import MemoryBudget
from repro.kernels import reachability_kernel

__all__ = ["multi_bfs_scc", "source_budget", "MAX_SOURCES"]

_RESOLVED = -1

MAX_SOURCES = 64
"""Hard ceiling on batched sources: one 64-bit mask word per direction
per node (the numpy kernel propagates masks as ``uint64`` columns)."""


def source_budget(
    n: int,
    memory: Optional[MemoryBudget],
    block_size: int,
    requested: int = MAX_SOURCES,
) -> int:
    """Vertical granularity control: how many sources fit in memory.

    The solver's base footprint is ``8n + B`` (the semi-external
    allowance); each batch of 8 sources adds one mask byte per node per
    direction.  Returns the largest ``S <= requested`` whose masks fit in
    the spare budget — always at least 1, so a tight budget degrades to
    single-pivot FW-BW behaviour rather than failing.
    """
    requested = max(1, min(requested, MAX_SOURCES))
    if memory is None or n == 0:
        return requested
    spare = memory.nbytes - (SEMI_EXTERNAL_BYTES_PER_NODE * n + block_size)
    cap = 8 * (spare // (2 * n))
    return max(1, min(requested, cap))


def multi_bfs_scc(
    edge_file: EdgeFile,
    node_ids: Iterable[int],
    memory: Optional[MemoryBudget] = None,
    max_rounds: Optional[int] = None,
    max_sources: int = MAX_SOURCES,
) -> Dict[int, int]:
    """Compute all SCCs with batched multi-source reachability.

    Args:
        edge_file: edges on the simulated disk (scanned sequentially).
        node_ids: all node ids (isolated nodes included).
        memory: when given, assert ``8 * |V| + B <= M`` first and cap the
            source batch by the spare budget (see :func:`source_budget`).
        max_rounds: safety valve for tests (default: unbounded).
        max_sources: requested sources per round (capped by
            :data:`MAX_SOURCES` and the memory budget).

    Returns:
        Canonical labeling ``node -> min id of its SCC`` — identical to
        every other solver in the registry.
    """
    nodes = list(node_ids)
    n = len(nodes)
    block_size = edge_file.device.block_size
    if memory is not None:
        memory.require_at_least(
            SEMI_EXTERNAL_BYTES_PER_NODE * n + block_size,
            what="semi-external multi-BFS SCC",
        )
    sources = source_budget(n, memory, block_size, max_sources)
    kernel = reachability_kernel(nodes)

    part: List[int] = [0] * n  # partition id, _RESOLVED once labeled
    label: List[int] = [0] * n  # pivot index (valid once resolved)
    if n == 0:
        return {}

    active = {0}

    # Trim rounds (same as parallel-fw-bw): dead-end nodes are singleton
    # SCCs; resolving them up front removes their edges from every later
    # reachability scan.
    while True:
        has_in = bytearray(n)
        has_out = bytearray(n)
        kernel.mark_degrees(
            edge_file.scan_blocks(), part, has_in, has_out
        )
        trimmed = False
        for i in range(n):
            if part[i] != _RESOLVED and not (has_in[i] and has_out[i]):
                part[i] = _RESOLVED
                label[i] = i
                trimmed = True
        if not trimmed:
            break
    if not any(part[i] in active for i in range(n)):
        active = set()

    rounds = 0
    next_part = 1
    while active:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise RuntimeError(f"multi-BFS exceeded {max_rounds} rounds")
        # Up to S pivots per active partition: its S smallest node ids,
        # column c going to the c-th smallest.  Columns are reused across
        # partitions — propagation is partition-confined.
        members: Dict[int, List[int]] = {}
        for i in range(n):
            p = part[i]
            if p in active:
                members.setdefault(p, []).append(i)
        pivot_of: Dict[tuple, int] = {}
        fwd: List[int] = [0] * n
        bwd: List[int] = [0] * n
        for p, idxs in members.items():
            idxs.sort(key=nodes.__getitem__)
            for c, i in enumerate(idxs[:sources]):
                pivot_of[(p, c)] = i
                bit = 1 << c
                fwd[i] = bwd[i] = bit

        kernel.relax_masks_to_fixpoint(
            edge_file.scan_blocks, part, active, fwd, bwd
        )

        # Resolve: a set bit in fwd & bwd puts the node in that column's
        # pivot SCC; the lowest such column is consistent across the SCC
        # (members share masks at the fixpoint).  The rest split by mask
        # pair, new ids assigned in node order.
        splits: Dict[tuple, int] = {}
        new_active = set()
        for i in range(n):
            p = part[i]
            if p not in active:
                continue
            both = fwd[i] & bwd[i]
            if both:
                part[i] = _RESOLVED
                label[i] = pivot_of[(p, (both & -both).bit_length() - 1)]
                continue
            bucket = (p, fwd[i], bwd[i])
            pid = splits.get(bucket)
            if pid is None:
                pid = next_part
                next_part += 1
                splits[bucket] = pid
                new_active.add(pid)
            part[i] = pid
        active = new_active

    # Canonicalize: min member per label.
    rep_min: Dict[int, int] = {}
    for i in range(n):
        l = label[i]
        current = rep_min.get(l)
        if current is None or nodes[i] < current:
            rep_min[l] = nodes[i]
    return {nodes[i]: rep_min[label[i]] for i in range(n)}
