"""Forward–backward (FW-BW) semi-external SCC.

A divide-and-conquer solver with O(|V|) memory and only sequential edge
scans: pick a pivot in every unresolved partition, propagate forward and
backward reachability bits by repeatedly scanning the edge file, then
split each partition into ``FW ∩ BW`` (the pivot's SCC, resolved),
``FW \\ BW``, ``BW \\ FW`` and the remainder — no SCC crosses those
boundaries.  Repeat until every node is resolved.

This is the classic Fleischer–Hendrickson–Pınar scheme restated in the
semi-external model: node state (partition ids and two bit arrays) lives in
memory, edges stay on disk.  It serves as an independent second
implementation of the paper's ``Semi-SCC`` role, used to cross-check the
spanning-tree solver.

Relaxation is **block-granular**
(:meth:`~repro.kernels.ReachabilityKernel.relax_to_fixpoint`): marks stage
against the block-start bits and apply at each block boundary, so marks
from earlier blocks propagate within the same scan but the outcome never
depends on edge order inside a block.  The fixpoint — and therefore every
label — is identical to any other relaxation schedule; the granularity is
what lets the numpy and scalar kernels agree mark-for-mark, scan-for-scan.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.constants import SEMI_EXTERNAL_BYTES_PER_NODE
from repro.graph.edge_file import EdgeFile
from repro.io.memory import MemoryBudget
from repro.kernels import reachability_kernel

__all__ = ["forward_backward_scc"]

_RESOLVED = -1


def forward_backward_scc(
    edge_file: EdgeFile,
    node_ids: Iterable[int],
    memory: Optional[MemoryBudget] = None,
    max_rounds: Optional[int] = None,
) -> Dict[int, int]:
    """Compute all SCCs with semi-external forward–backward search.

    Args:
        edge_file: edges on the simulated disk (scanned sequentially).
        node_ids: all node ids (isolated nodes included).
        memory: when given, assert ``8 * |V| + B <= M`` first.
        max_rounds: safety valve for tests (default: unbounded).

    Returns:
        Canonical labeling ``node -> min id of its SCC``.
    """
    nodes = list(node_ids)
    n = len(nodes)
    if memory is not None:
        memory.require_at_least(
            SEMI_EXTERNAL_BYTES_PER_NODE * n + edge_file.device.block_size,
            what="semi-external FW-BW SCC",
        )
    kernel = reachability_kernel(nodes)

    part: List[int] = [0] * n  # partition id, _RESOLVED once labeled
    label: List[int] = [0] * n  # SCC label (valid once resolved)
    if n == 0:
        return {}

    active = {0}
    rounds = 0
    next_part = 1
    while active:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise RuntimeError(f"FW-BW exceeded {max_rounds} rounds")
        # One pivot per active partition: the smallest node id in it.
        pivot_of: Dict[int, int] = {}
        for i in range(n):
            p = part[i]
            if p in active:
                best = pivot_of.get(p)
                if best is None or nodes[i] < nodes[best]:
                    pivot_of[p] = i
        fwd = bytearray(n)
        bwd = bytearray(n)
        for pivot in pivot_of.values():
            fwd[pivot] = 1
            bwd[pivot] = 1
        # Relax both reachability frontiers until a scan changes nothing.
        kernel.relax_to_fixpoint(
            edge_file.scan_blocks, part, active, fwd, bwd
        )
        # Split: FW∩BW is the pivot's SCC; the other three parts recurse.
        splits: Dict[tuple, int] = {}
        new_active = set()
        for i in range(n):
            p = part[i]
            if p not in active:
                continue
            if fwd[i] and bwd[i]:
                part[i] = _RESOLVED
                label[i] = pivot_of[p]
                continue
            bucket = (p, fwd[i], bwd[i])
            pid = splits.get(bucket)
            if pid is None:
                pid = next_part
                next_part += 1
                splits[bucket] = pid
                new_active.add(pid)
            part[i] = pid
        active = new_active

    # Canonicalize: min member per label.
    rep_min: Dict[int, int] = {}
    for i in range(n):
        l = label[i]
        current = rep_min.get(l)
        if current is None or nodes[i] < current:
            rep_min[l] = nodes[i]
    return {nodes[i]: rep_min[label[i]] for i in range(n)}
