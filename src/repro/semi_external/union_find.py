"""Array-backed union-find used by the in-memory side of the semi-external
solvers (node state is exactly the O(|V|) the semi-external model allows)."""

from __future__ import annotations

from typing import List

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint sets over dense indices ``0 .. n-1``.

    Path-halving find and union by size; both amortized near-constant.
    """

    def __init__(self, n: int) -> None:
        self.parent: List[int] = list(range(n))
        self.size: List[int] = [1] * n
        self.num_sets = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the new representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.num_sets -= 1
        return ra

    def connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)
