"""DFS-based semi-external SCC (the Section III comparison point).

Section III describes the semi-external *DFS* route to SCCs: run
Kosaraju–Sharir (Algorithm 1) with node state in memory and the edges on
disk.  With O(|V|) memory the visited flags, the DFS stack and the
postorder fit in RAM, but each node expansion must fetch its adjacency
list from disk — a *random* block read per node, unlike the scan-only
spanning-tree/FW-BW/coloring solvers.

The paper's [26] (whose mechanism `spanning_tree_scc` reproduces) was
motivated precisely by this: the DFS route cannot contract partial SCCs
early and pays random I/O per node.  `benchmarks/test_semi_solvers.py`
measures the gap.

This solver is exported separately from :data:`SEMI_SCC_SOLVERS` because
its I/O profile is intentionally different (random reads); plugging it
into Ext-SCC still yields correct results.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.constants import NODE_RECORD_BYTES, SEMI_EXTERNAL_BYTES_PER_NODE
from repro.graph.edge_file import EdgeFile
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.sort import external_sort_records

__all__ = ["semi_kosaraju_scc"]


class _DiskAdjacency:
    """Adjacency lists on disk with an in-memory (node -> extent) index.

    The index is O(|V|) integers — the semi-external allowance; the target
    lists are fetched with random block reads on demand.
    """

    def __init__(self, edge_file: EdgeFile, memory: Optional[MemoryBudget],
                 reverse: bool) -> None:
        device = edge_file.device
        sort_memory = memory if memory is not None else MemoryBudget(
            max(4 * device.block_size, 4096)
        )
        key = (lambda e: (e[1], e[0])) if reverse else None
        sorted_edges = external_sort_records(
            device, edge_file.scan(), 8, sort_memory, key=key
        )
        self.targets = ExternalFile.create(
            device, device.temp_name("skadj"), NODE_RECORD_BYTES
        )
        self.index: Dict[int, Tuple[int, int]] = {}
        position = 0
        current: Optional[int] = None
        start = 0
        for u, v in sorted_edges.scan():
            src, dst = (v, u) if reverse else (u, v)
            if src != current:
                if current is not None:
                    self.index[current] = (start, position - start)
                current, start = src, position
            self.targets.append((dst,))
            position += 1
        if current is not None:
            self.index[current] = (start, position - start)
        self.targets.close()
        sorted_edges.delete()
        self._capacity = self.targets._file.block_capacity

    def neighbors(self, node: int) -> List[int]:
        """Fetch ``node``'s targets (random block reads)."""
        extent = self.index.get(node)
        if extent is None:
            return []
        start, count = extent
        out: List[int] = []
        position = start
        end = start + count
        while position < end:
            block_index = position // self._capacity
            block = self.targets.read_block_random(block_index)
            block_end = (block_index + 1) * self._capacity
            for p in range(position, min(end, block_end)):
                out.append(block[p % self._capacity][0])
            position = min(end, block_end)
        return out

    def delete(self) -> None:
        self.targets.delete()


def _dfs_postorder(adjacency: _DiskAdjacency, roots: Iterable[int],
                   visited: Set[int]) -> List[int]:
    order: List[int] = []
    for root in roots:
        if root in visited:
            continue
        visited.add(root)
        stack: List[Tuple[int, List[int], int]] = [
            (root, adjacency.neighbors(root), 0)
        ]
        while stack:
            node, targets, cursor = stack.pop()
            advanced = False
            while cursor < len(targets):
                child = targets[cursor]
                cursor += 1
                if child not in visited:
                    visited.add(child)
                    stack.append((node, targets, cursor))
                    stack.append((child, adjacency.neighbors(child), 0))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
    return order


def semi_kosaraju_scc(
    edge_file: EdgeFile,
    node_ids: Iterable[int],
    memory: Optional[MemoryBudget] = None,
) -> Dict[int, int]:
    """Kosaraju–Sharir with in-memory node state and on-disk adjacency.

    Args:
        edge_file: the graph's edges on the simulated disk.
        node_ids: all node ids (isolated nodes included).
        memory: when given, assert the semi-external requirement first.

    Returns:
        Canonical labeling ``node -> min id of its SCC``.
    """
    nodes = list(node_ids)
    if memory is not None:
        memory.require_at_least(
            SEMI_EXTERNAL_BYTES_PER_NODE * len(nodes)
            + edge_file.device.block_size,
            what="semi-external Kosaraju SCC",
        )
    forward = _DiskAdjacency(edge_file, memory, reverse=False)
    backward = _DiskAdjacency(edge_file, memory, reverse=True)

    postorder = _dfs_postorder(forward, nodes, set())

    labels: Dict[int, int] = {}
    visited: Set[int] = set()
    for root in reversed(postorder):
        if root in visited:
            continue
        component = _dfs_postorder(backward, [root], visited)
        rep = min(component)
        for node in component:
            labels[node] = rep
    forward.delete()
    backward.delete()
    return labels
