"""Parallel forward–backward semi-external SCC (worker-sharded scans).

The serial :mod:`~repro.semi_external.forward_backward` solver relaxes
reachability Gauss-Seidel style — a mark set early in a scan propagates
further within the *same* scan, so its round count depends on edge order
and cannot be sharded without changing results.  This solver restates the
scheme so every pass is embarrassingly parallel over contiguous block
ranges of the edge file:

* **Jacobi rounds** — each reachability round reads the *previous* round's
  ``fwd``/``bwd`` bits and stages new marks into fresh buffers, applied
  only after the full scan.  Staging is a pure OR, so shards may mark
  concurrently in any order and the round outcome — and therefore the
  round *count* and the total I/O — is identical for every worker count.
* **Parallel trim rounds** — before pivoting, nodes with no in-edge or no
  out-edge *within their partition* (both endpoints unresolved, same
  partition id) are singleton SCCs and are resolved immediately;
  repeated to a fixpoint.  The ``has_in``/``has_out`` marking is the same
  commutative OR, sharded the same way.

Each shard scans its block range sequentially, so the union of shards
charges exactly one full sequential scan per round — the ledger of a
``K``-worker run is identical, counter for counter, to ``K=1``.  Jacobi
needs more rounds than Gauss-Seidel (no intra-scan propagation), which is
the classic parallelism-versus-depth trade; the makespan meter is what
shows the win on a striped device.

Registered as ``"parallel-fw-bw"`` in
:data:`~repro.semi_external.SEMI_SCC_SOLVERS`; labels are canonical
(min member per SCC), identical to every other solver in the registry.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.constants import SEMI_EXTERNAL_BYTES_PER_NODE
from repro.graph.edge_file import EdgeFile
from repro.io.memory import MemoryBudget
from repro.io.parallel import shard_ranges
from repro.kernels import reachability_kernel

__all__ = ["parallel_fw_bw_scc"]

_RESOLVED = -1

Record = Tuple[int, ...]
Block = Sequence[Record]


def _sharded_block_pass(
    edge_file: EdgeFile, fn: Callable[[Iterator[Block]], None]
) -> None:
    """Apply ``fn`` to every edge block, sharded over block ranges when
    the device has a worker pool; one full sequential scan's worth of
    reads either way.  ``fn`` must be a commutative OR-style marking so
    shard order cannot matter."""
    pool = edge_file.device.worker_pool
    if pool is not None and pool.workers > 1:
        ranges = shard_ranges(edge_file.file.num_blocks, pool.workers)
        pool.map(lambda r: fn(edge_file.scan_block_range(r[0], r[1])), ranges)
    else:
        fn(edge_file.scan_blocks())


def parallel_fw_bw_scc(
    edge_file: EdgeFile,
    node_ids: Iterable[int],
    memory: Optional[MemoryBudget] = None,
    max_rounds: Optional[int] = None,
) -> Dict[int, int]:
    """Compute all SCCs with worker-sharded forward–backward search.

    Args:
        edge_file: edges on the simulated disk (scanned sequentially; the
            device's :class:`~repro.io.parallel.WorkerPool`, if any, sets
            the shard width).
        node_ids: all node ids (isolated nodes included).
        memory: when given, assert ``8 * |V| + B <= M`` first.
        max_rounds: safety valve for tests (default: unbounded).

    Returns:
        Canonical labeling ``node -> min id of its SCC`` — identical to
        the serial solvers for every graph and every worker count.
    """
    nodes = list(node_ids)
    n = len(nodes)
    if memory is not None:
        memory.require_at_least(
            SEMI_EXTERNAL_BYTES_PER_NODE * n + edge_file.device.block_size,
            what="semi-external parallel FW-BW SCC",
        )
    kernel = reachability_kernel(nodes)

    part: List[int] = [0] * n  # partition id, _RESOLVED once labeled
    label: List[int] = [0] * n  # pivot index (valid once resolved)
    if n == 0:
        return {}

    active = {0}

    # Trim rounds: resolve dead-end nodes (no in- or no out-edge inside
    # their partition) as singletons, to a fixpoint.  One sharded scan per
    # round; marking is an OR so shard order cannot matter.
    while True:
        has_in = bytearray(n)
        has_out = bytearray(n)

        def mark(blocks: Iterator[Block]) -> None:
            kernel.mark_degrees(blocks, part, has_in, has_out)

        _sharded_block_pass(edge_file, mark)
        trimmed = False
        for i in range(n):
            if part[i] != _RESOLVED and not (has_in[i] and has_out[i]):
                part[i] = _RESOLVED
                label[i] = i
                trimmed = True
        if not trimmed:
            break
    if not any(part[i] in active for i in range(n)):
        active = set()

    rounds = 0
    next_part = 1
    while active:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise RuntimeError(f"parallel FW-BW exceeded {max_rounds} rounds")
        # One pivot per active partition: the smallest node id in it.
        pivot_of: Dict[int, int] = {}
        for i in range(n):
            p = part[i]
            if p in active:
                best = pivot_of.get(p)
                if best is None or nodes[i] < nodes[best]:
                    pivot_of[p] = i
        fwd = bytearray(n)
        bwd = bytearray(n)
        for pivot in pivot_of.values():
            fwd[pivot] = 1
            bwd[pivot] = 1

        # Jacobi double-buffered relaxation: stage marks against the
        # previous round's bits, apply after the barrier.  Converged when
        # a full round stages nothing new (that last scan is charged, as
        # the serial solver's no-change scan is).
        while True:
            new_fwd = bytearray(n)
            new_bwd = bytearray(n)

            def relax(blocks: Iterator[Block]) -> None:
                kernel.stage_pass(
                    blocks, part, active, fwd, bwd, new_fwd, new_bwd
                )

            _sharded_block_pass(edge_file, relax)
            changed = False
            for i in range(n):
                if new_fwd[i] and not fwd[i]:
                    fwd[i] = 1
                    changed = True
                if new_bwd[i] and not bwd[i]:
                    bwd[i] = 1
                    changed = True
            if not changed:
                break

        # Split: FW∩BW is the pivot's SCC; the other three parts recurse.
        splits: Dict[tuple, int] = {}
        new_active = set()
        for i in range(n):
            p = part[i]
            if p not in active:
                continue
            if fwd[i] and bwd[i]:
                part[i] = _RESOLVED
                label[i] = pivot_of[p]
                continue
            bucket = (p, fwd[i], bwd[i])
            pid = splits.get(bucket)
            if pid is None:
                pid = next_part
                next_part += 1
                splits[bucket] = pid
                new_active.add(pid)
            part[i] = pid
        active = new_active

    # Canonicalize: min member per label.
    rep_min: Dict[int, int] = {}
    for i in range(n):
        l = label[i]
        current = rep_min.get(l)
        if current is None or nodes[i] < current:
            rep_min[l] = nodes[i]
    return {nodes[i]: rep_min[label[i]] for i in range(n)}
