"""Spanning-tree semi-external SCC (the paper's ``Semi-SCC`` substrate).

The paper plugs in 1PB-SCC [26] (Zhang et al., SIGMOD'13): an in-memory
spanning tree of the graph, ordered by node *depth*, is refined by repeated
sequential scans of the edge file; whenever an edge closes a cycle against
the tree, the partial SCC on the tree path is contracted, and the scans
repeat until no change.  This module reproduces that mechanism as a
*depth-deepening spanning forest*:

* every (contracted) node hangs below a virtual root ``v0`` with an exact
  depth (child depth = parent depth + 1);
* scanning edge ``(u, v)``: with representatives ``ru != rv`` and
  ``depth(ru) + 1 > depth(rv)``, either ``rv`` is an ancestor of ``ru`` —
  then the tree path ``rv .. ru`` plus the edge is a cycle, so the whole
  path is contracted into one super-node — or ``rv``'s subtree is
  re-attached below ``ru``, strictly increasing its depth;
* a full scan with no action is a fixpoint.

**Completeness**: at a fixpoint every remaining edge satisfies
``depth(ru) < depth(rv)``, so a cycle through two distinct representatives
would strictly increase depth around a loop — impossible; hence every SCC
has been contracted.  **Termination**: contractions happen at most
``|V| - 1`` times, and between contractions every re-attachment strictly
increases the total depth sum, which is bounded by ``|V|^2``.

Memory: O(|V|) words (tree arrays + union-find), matching the semi-external
budget ``c * |V| + B <= M``; all edge accesses are sequential scans.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.constants import SEMI_EXTERNAL_BYTES_PER_NODE
from repro.graph.edge_file import EdgeFile
from repro.io.memory import MemoryBudget
from repro.semi_external.union_find import UnionFind

__all__ = ["spanning_tree_scc", "SpanningTreeStats"]


class SpanningTreeStats:
    """Counters exposed by :func:`spanning_tree_scc` for tests/benchmarks."""

    def __init__(self) -> None:
        self.passes = 0
        self.contractions = 0
        self.reattachments = 0


def spanning_tree_scc(
    edge_file: EdgeFile,
    node_ids: Iterable[int],
    memory: Optional[MemoryBudget] = None,
    stats: Optional[SpanningTreeStats] = None,
    max_passes: Optional[int] = None,
) -> Dict[int, int]:
    """Compute all SCCs with the spanning-tree semi-external algorithm.

    Args:
        edge_file: the graph's edges on the simulated disk (scanned
            sequentially, possibly many times).
        node_ids: all node ids of the graph (isolated nodes included).
        memory: when given, assert the semi-external requirement
            ``8 * |V| + B <= M`` before starting.
        stats: optional counter sink.
        max_passes: safety valve for tests; the algorithm provably
            terminates, so production use leaves this ``None``.

    Returns:
        Canonical labeling ``node -> min id of its SCC``.
    """
    nodes = list(node_ids)
    n = len(nodes)
    if memory is not None:
        memory.require_at_least(
            SEMI_EXTERNAL_BYTES_PER_NODE * n + edge_file.device.block_size,
            what="semi-external spanning-tree SCC",
        )
    if stats is None:
        stats = SpanningTreeStats()
    index = {v: i for i, v in enumerate(nodes)}

    root = n  # virtual root v0
    uf = UnionFind(n + 1)
    parent: List[int] = [root] * n + [root]
    depth: List[int] = [1] * n + [0]
    children: List[Set[int]] = [set() for _ in range(n + 1)]
    children[root] = set(range(n))

    def find_parent(rep: int) -> int:
        """Current representative of ``rep``'s tree parent."""
        p = parent[rep]
        return p if p == root else uf.find(p)

    def set_subtree_depths(rep: int) -> None:
        """Re-establish depth(child) = depth(parent) + 1 below ``rep``."""
        queue = [rep]
        while queue:
            node = queue.pop()
            d = depth[node] + 1
            for child in children[node]:
                depth[child] = d
                queue.append(child)

    def reattach(rv: int, ru: int) -> None:
        """Move ``rv``'s subtree below ``ru`` (edge ru -> rv witnesses it)."""
        old_parent = find_parent(rv)
        children[old_parent].discard(rv)
        parent[rv] = ru
        children[ru].add(rv)
        depth[rv] = depth[ru] + 1
        set_subtree_depths(rv)
        stats.reattachments += 1

    def contract(ru: int, rv: int) -> None:
        """Contract the tree path ``rv .. ru`` (closed by an edge ru -> rv)."""
        path = [ru]
        a = ru
        while a != rv:
            a = find_parent(a)
            path.append(a)
        grandparent = find_parent(rv)
        base_depth = depth[rv]
        merged_children: Set[int] = set()
        rep = path[0]
        for member in path[1:]:
            rep = uf.union(rep, member)
        path_set = set(path)
        for member in path:
            merged_children |= children[member]
            children[member] = set()
        merged_children -= path_set
        children[rep] = merged_children
        for child in merged_children:
            parent[child] = rep
        parent[rep] = grandparent
        depth[rep] = base_depth
        children[grandparent].discard(rv)
        children[grandparent].discard(ru)
        children[grandparent].add(rep)
        set_subtree_depths(rep)
        stats.contractions += 1

    changed = True
    while changed:
        changed = False
        stats.passes += 1
        if max_passes is not None and stats.passes > max_passes:
            raise RuntimeError(f"spanning-tree SCC exceeded {max_passes} passes")
        for u, v in edge_file.scan():
            if u == v:
                continue
            ru = uf.find(index[u])
            rv = uf.find(index[v])
            if ru == rv:
                continue
            if depth[ru] + 1 <= depth[rv]:
                continue
            # Is rv an ancestor of ru?  Walk up exactly to rv's depth.
            a = ru
            while depth[a] > depth[rv]:
                a = find_parent(a)
            if a == rv:
                contract(ru, rv)
            else:
                reattach(rv, ru)
            changed = True

    # Canonicalize: min member id per union-find set.
    rep_min: Dict[int, int] = {}
    for node in nodes:
        r = uf.find(index[node])
        current = rep_min.get(r)
        if current is None or node < current:
            rep_min[r] = node
    return {node: rep_min[uf.find(index[node])] for node in nodes}
