"""Coloring (Orzan-style) semi-external SCC.

The third independent ``Semi-SCC`` implementation.  Each outer round:

1. every unresolved node takes its own id as color; sequential edge scans
   propagate the *maximum* color forward until fixpoint — afterwards
   ``color[v]`` is the largest unresolved id that reaches ``v`` within the
   unresolved subgraph;
2. each color class is rooted at the node equal to its color; backward
   propagation restricted to the class (more sequential scans) marks the
   members that can reach the root — those form the root's SCC (the root
   reaches them by step 1, they reach the root by step 2);
3. found SCCs are resolved and removed; repeat until no node is left.

O(|V|) memory for colors/marks, edges only ever scanned sequentially.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.constants import SEMI_EXTERNAL_BYTES_PER_NODE
from repro.graph.edge_file import EdgeFile
from repro.io.memory import MemoryBudget

__all__ = ["coloring_scc"]


def coloring_scc(
    edge_file: EdgeFile,
    node_ids: Iterable[int],
    memory: Optional[MemoryBudget] = None,
    max_rounds: Optional[int] = None,
) -> Dict[int, int]:
    """Compute all SCCs with the coloring algorithm.

    Args:
        edge_file: edges on the simulated disk (scanned sequentially).
        node_ids: all node ids (isolated nodes included).
        memory: when given, assert ``8 * |V| + B <= M`` first.
        max_rounds: safety valve for tests (default: unbounded).

    Returns:
        Canonical labeling ``node -> min id of its SCC``.
    """
    nodes = list(node_ids)
    n = len(nodes)
    if memory is not None:
        memory.require_at_least(
            SEMI_EXTERNAL_BYTES_PER_NODE * n + edge_file.device.block_size,
            what="semi-external coloring SCC",
        )
    index = {v: i for i, v in enumerate(nodes)}

    label: List[int] = [-1] * n  # SCC label index (pivot), -1 = unresolved
    remaining = n
    rounds = 0
    while remaining:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise RuntimeError(f"coloring SCC exceeded {max_rounds} rounds")
        # 1) forward max-color propagation on the unresolved subgraph.
        color: List[int] = [i if label[i] < 0 else -1 for i in range(n)]
        changed = True
        while changed:
            changed = False
            for u, v in edge_file.scan():
                iu = index[u]
                iv = index[v]
                if label[iu] >= 0 or label[iv] >= 0:
                    continue
                if color[iu] > color[iv]:
                    color[iv] = color[iu]
                    changed = True
        # 2) backward marking within each color class, from the class root.
        marked = bytearray(n)
        for i in range(n):
            if label[i] < 0 and color[i] == i:
                marked[i] = 1
        changed = True
        while changed:
            changed = False
            for u, v in edge_file.scan():
                iu = index[u]
                iv = index[v]
                if label[iu] >= 0 or label[iv] >= 0:
                    continue
                if marked[iv] and not marked[iu] and color[iu] == color[iv]:
                    marked[iu] = 1
                    changed = True
        # 3) resolve: marked nodes of color c form SCC(c-root).
        for i in range(n):
            if label[i] < 0 and marked[i]:
                label[i] = color[i]
                remaining -= 1

    rep_min: Dict[int, int] = {}
    for i in range(n):
        l = label[i]
        current = rep_min.get(l)
        if current is None or nodes[i] < current:
            rep_min[l] = nodes[i]
    return {nodes[i]: rep_min[label[i]] for i in range(n)}
