"""External topological sort by peeling (the paper's application 1).

Once Ext-SCC has contracted every cycle, the condensation is a DAG whose
topological order the downstream applications need.  When even that DAG is
external, Kahn's algorithm externalizes as *peeling*: each round computes
in-degrees with one sort/co-scan, emits the zero-in-degree layer, and
filters the layer's edges out — ``O(L)`` rounds of ``sort(|E|)`` for depth
``L``.  (This is also exactly the repeated Type-1 trimming of the
``trim_rounds`` extension, viewed as a standalone algorithm.)

A graph with a cycle makes no progress in some round and is rejected — so
the function doubles as an external acyclicity check.
"""

from __future__ import annotations

from operator import itemgetter

from typing import Iterator

from repro.constants import NODE_RECORD_BYTES, SCC_RECORD_BYTES
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.join import anti_join, semi_join
from repro.io.memory import MemoryBudget
from repro.io.sort import KEY_DST_SRC, external_sort_records

__all__ = ["external_topological_sort", "CycleDetected"]


class CycleDetected(ValueError):
    """The input graph has a directed cycle (no topological order exists)."""


def external_topological_sort(
    device: BlockDevice,
    edges: EdgeFile,
    nodes: NodeFile,
    memory: MemoryBudget,
) -> ExternalFile:
    """Topologically sort an external DAG by layer peeling.

    Args:
        device: the simulated disk.
        edges: the DAG's edges.
        nodes: all node ids (sorted).
        memory: the budget for the per-round sorts.

    Returns:
        ``(node, layer)`` records sorted by node id; reading them sorted by
        ``(layer, node)`` gives a valid topological order and ``layer`` is
        each node's longest-path depth.

    Raises:
        CycleDetected: when a round removes no node while edges remain.
    """
    current_edges: ExternalFile = external_sort_records(
        device, edges.scan(), 8, memory, key=KEY_DST_SRC
    )  # sorted by destination
    current_nodes: ExternalFile = ExternalFile.from_records(
        device, device.temp_name("topon"), ((v,) for v in nodes.scan()),
        NODE_RECORD_BYTES,
    )
    layers = ExternalFile.create(device, device.temp_name("topol"), SCC_RECORD_BYTES)
    layer = 0
    while current_nodes.num_records:
        # Zero-in-degree nodes: those absent from the destination column.
        def destinations() -> Iterator[int]:
            previous = None
            for _u, v in current_edges.scan():
                if v != previous:
                    yield v
                    previous = v

        ready = ExternalFile.from_records(
            device,
            device.temp_name("topor"),
            anti_join(current_nodes.scan(), destinations(), itemgetter(0)),
            NODE_RECORD_BYTES,
        )
        if ready.num_records == 0:
            ready.delete()
            current_edges.delete()
            current_nodes.delete()
            layers.delete()
            raise CycleDetected(
                f"no zero-in-degree node at layer {layer}: the graph has a cycle"
            )
        for (v,) in ready.scan():
            layers.append((v, layer))
        # Drop the emitted layer and its outgoing edges.
        remaining_nodes = ExternalFile.from_records(
            device,
            device.temp_name("topon"),
            anti_join(current_nodes.scan(), (v for (v,) in ready.scan()),
                      itemgetter(0)),
            NODE_RECORD_BYTES,
        )
        by_src = external_sort_records(device, current_edges.scan(), 8, memory)
        current_edges.delete()
        surviving = semi_join(
            by_src.scan(), (v for (v,) in remaining_nodes.scan()), itemgetter(0)
        )
        next_edges = external_sort_records(
            device, surviving, 8, memory, key=KEY_DST_SRC
        )
        by_src.delete()
        ready.delete()
        current_nodes.delete()
        current_nodes = remaining_nodes
        current_edges = next_edges
        layer += 1
    current_edges.delete()
    current_nodes.delete()
    layers.close()
    result = external_sort_records(device, layers.scan(), SCC_RECORD_BYTES, memory)
    layers.delete()
    return result
