"""Downstream applications from the paper's introduction: reachability
indexing (GRAIL-style, [25]) and external topological sorting — both
consumers of the SCC labeling Ext-SCC produces."""

from repro.apps.reachability import IndexStats, ReachabilityIndex
from repro.apps.topological import CycleDetected, external_topological_sort

__all__ = [
    "ReachabilityIndex",
    "IndexStats",
    "external_topological_sort",
    "CycleDetected",
]
