"""Reachability index over a general digraph (the paper's application 2).

"Almost all algorithms to process reachability queries over a general
directed graph G first convert G into a DAG by contracting an SCC into a
node" — this module is that consumer, in the style of GRAIL [25] (cited by
the paper): contract SCCs, then label the condensation with ``k``
independent randomized postorder *interval labelings*; a query
``u -> v?`` is

* **True** immediately when ``u`` and ``v`` share an SCC;
* **False** whenever *any* labeling's interval of ``v`` falls outside
  ``u``'s (intervals over-approximate reachability, so exclusion is
  sound);
* otherwise decided exactly by a memoized DFS on the condensation
  (GRAIL's "exception" path).

More labelings prune more negative queries before the DFS fallback;
:attr:`ReachabilityIndex.stats` reports how often each path fired.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Set, Tuple

from repro.graph.digraph import DiGraph
from repro.memory_scc.condensation import condensation

__all__ = ["ReachabilityIndex", "IndexStats"]


@dataclass
class IndexStats:
    """Which path answered each query."""

    same_scc: int = 0
    interval_pruned: int = 0
    dfs_decided: int = 0

    @property
    def total(self) -> int:
        """Total queries answered."""
        return self.same_scc + self.interval_pruned + self.dfs_decided


class ReachabilityIndex:
    """GRAIL-style reachability over SCC labels.

    Args:
        graph: the original digraph.
        labels: an SCC labeling of it (e.g. ``compute_sccs(...).result.labels``).
        num_labelings: number of independent interval labelings ``k``.
        seed: RNG seed for the randomized DFS orders.
    """

    def __init__(
        self,
        graph: DiGraph,
        labels: Mapping[int, int],
        num_labelings: int = 3,
        seed: int = 0,
    ) -> None:
        if num_labelings < 1:
            raise ValueError("need at least one interval labeling")
        self._labels = dict(labels)
        self._dag = condensation(graph, labels)
        self._intervals: List[Dict[int, Tuple[int, int]]] = [
            self._build_labeling(random.Random(seed + i))
            for i in range(num_labelings)
        ]
        self._reach_cache: Dict[int, Set[int]] = {}
        self.stats = IndexStats()

    # -- construction ------------------------------------------------------

    def _build_labeling(self, rng: random.Random) -> Dict[int, Tuple[int, int]]:
        """One randomized postorder interval labeling of the DAG.

        Every node gets ``(low, post)`` where ``post`` is its postorder
        number and ``low`` the minimum over its subtree *and* its
        children's labels — so ``reach(u) ⊆ [low(u), post(u)]``.
        """
        nodes = list(self._dag.nodes())
        rng.shuffle(nodes)
        post: Dict[int, int] = {}
        low: Dict[int, int] = {}
        counter = 0
        visited: Set[int] = set()
        for root in nodes:
            if root in visited:
                continue
            visited.add(root)
            stack: List[Tuple[int, List[int], int]] = [
                (root, self._shuffled_children(root, rng), 0)
            ]
            while stack:
                node, children, cursor = stack.pop()
                advanced = False
                while cursor < len(children):
                    child = children[cursor]
                    cursor += 1
                    if child not in visited:
                        visited.add(child)
                        stack.append((node, children, cursor))
                        stack.append(
                            (child, self._shuffled_children(child, rng), 0)
                        )
                        advanced = True
                        break
                if not advanced:
                    child_lows = [low[c] for c in self._dag.out_neighbors(node)]
                    post[node] = counter
                    low[node] = min(child_lows + [counter])
                    counter += 1
        return {v: (low[v], post[v]) for v in post}

    def _shuffled_children(self, node: int, rng: random.Random) -> List[int]:
        children = list(self._dag.out_neighbors(node))
        rng.shuffle(children)
        return children

    # -- queries ------------------------------------------------------------

    def reachable(self, u: int, v: int) -> bool:
        """Can ``u`` reach ``v`` in the original graph?"""
        cu, cv = self._labels[u], self._labels[v]
        if cu == cv:
            self.stats.same_scc += 1
            return True
        for intervals in self._intervals:
            low_u, post_u = intervals[cu]
            low_v, post_v = intervals[cv]
            if not (low_u <= low_v and post_v <= post_u):
                self.stats.interval_pruned += 1
                return False
        self.stats.dfs_decided += 1
        return cv in self._reach_set(cu)

    def _reach_set(self, node: int) -> Set[int]:
        cached = self._reach_cache.get(node)
        if cached is not None:
            return cached
        reach: Set[int] = {node}
        stack = [node]
        while stack:
            current = stack.pop()
            for child in self._dag.out_neighbors(current):
                if child not in reach:
                    # Reuse any cached descendant set wholesale.
                    cached_child = self._reach_cache.get(child)
                    if cached_child is not None:
                        reach |= cached_child
                    else:
                        reach.add(child)
                        stack.append(child)
        self._reach_cache[node] = reach
        return reach

    def strongly_connected(self, u: int, v: int) -> bool:
        """Are ``u`` and ``v`` in the same SCC?"""
        return self._labels[u] == self._labels[v]

    @property
    def num_dag_nodes(self) -> int:
        """Size of the condensation the index is built over."""
        return self._dag.num_nodes
