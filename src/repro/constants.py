"""Record widths and model constants shared across the package.

The paper stores a node id in 4 bytes ("4 is the number of bytes to keep a
node in memory") and reports that the semi-external solver 1PB-SCC needs
``2 * |V|`` node words plus one disk block, i.e. ``M >= 8*|V| + B``.  The
same constants drive both the simulated record files and Ext-SCC's stop
condition, so the memory crossover of Figure 7 falls in the same place.
"""

from __future__ import annotations

NODE_ID_BYTES = 4
"""Width of one node identifier (paper: 4 bytes)."""

NODE_RECORD_BYTES = NODE_ID_BYTES
"""A node file record is a bare ``(v,)`` id."""

EDGE_RECORD_BYTES = 2 * NODE_ID_BYTES
"""An edge file record is ``(u, v)``."""

DEGREE_RECORD_BYTES = NODE_ID_BYTES + 4
"""A ``V_d`` record ``(v, deg)``; the optimized variant appends the
in*out-degree product and uses :data:`DEGREE_PROD_RECORD_BYTES`."""

DEGREE_PROD_RECORD_BYTES = NODE_ID_BYTES + 4 + 4
"""Optimized ``V_d`` record ``(v, deg, degin*degout)`` (Definition 7.1)."""

SCC_RECORD_BYTES = 2 * NODE_ID_BYTES
"""An SCC label record ``(v, scc_id)``."""

AUGMENTED_EDGE_BYTES = 3 * NODE_ID_BYTES
"""An expansion-phase record ``(u, v, SCC(u))`` (Algorithm 5's E')."""

SEMI_EXTERNAL_BYTES_PER_NODE = 8
"""In-memory bytes the semi-external solver charges per node (paper:
``2 * |V|`` 4-byte words for 1PB-SCC).  Ext-SCC's contraction loop stops
when ``SEMI_EXTERNAL_BYTES_PER_NODE * |V_i| + B <= M``."""
