"""A persistent block device: the simulator's interface over real files.

:class:`PersistentBlockDevice` is a drop-in :class:`BlockDevice` whose
blocks live in binary files under a directory instead of in RAM — every
algorithm in this package runs unchanged against it, and the data survives
the process.  The I/O ledger counts exactly the same block operations, so
measurements carry over.

Physical layout: each simulated file is one ``<name>.blk`` file of
fixed-size block slots.  A slot holds a record-count header plus the
records' integer fields, each stored as a little-endian ``int64``.  (The
*accounted* record width stays the paper's 4-byte-id model — the model's
byte arithmetic is about block capacity, not about Python's ability to
overflow 32 bits.)  A ``manifest.json`` records every file's metadata so a
device directory can be reopened later.

Record fields are ``record_size // 4`` integers per record — the invariant
every record type in this package satisfies (ids, degrees, labels are all
4-byte fields in the accounting model).  Variable-record files
(``record_size == 1``, the substrate of :mod:`repro.io.varfile`) hold
arbitrary nested int-tuple payloads instead; their slots store a recursive
tagged encoding in a fixed-size slot sized from the accounting invariant
that a var block's payloads never exceed ``block_size`` accounted bytes.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import CorruptBlockError, StorageError
from repro.io.blocks import BlockDevice, DEFAULT_BLOCK_SIZE, DiskFile
from repro.io.stats import IOBudget, IOStats

__all__ = [
    "PersistentBlockDevice",
    "PersistentDiskFile",
    "DeviceHandle",
    "ReadOnlyView",
    "open_shared",
]

Record = Tuple[int, ...]
PathLike = Union[str, Path]

_FIELD = struct.Struct("<q")
_COUNT = struct.Struct("<I")
_CRC = struct.Struct("<I")
_MANIFEST = "manifest.json"


def _fields_per_record(record_size: int) -> Optional[int]:
    if record_size == 1:
        return None  # a variable-record file: payloads are nested tuples
    if record_size % 4 != 0:
        raise StorageError(
            f"persistent files need 4-byte-aligned records, got {record_size}"
        )
    return record_size // 4


# Tagged recursive encoding for variable-record payloads.
_TAG_INT = b"\x00"
_TAG_TUPLE = b"\x01"

# Real bytes per slot for a var file, per accounted byte: every payload
# costs at least one accounted byte (varint accounting), so a block holds
# at most ``block_size`` payloads and ``block_size`` integer fields.  The
# costliest shapes are a single-field record ``((v,),)`` — 19 real bytes
# (two tuple headers of 5 + one 9-byte int) on as little as 1 accounted
# byte — and an empty adjacency payload ``((src, ()),)`` at 24.
_VAR_SLOT_FACTOR = 24


def _encode_obj(obj: object, parts: List[bytes]) -> None:
    if isinstance(obj, tuple):
        parts.append(_TAG_TUPLE)
        parts.append(_COUNT.pack(len(obj)))
        for item in obj:
            _encode_obj(item, parts)
    elif isinstance(obj, int):
        parts.append(_TAG_INT)
        parts.append(_FIELD.pack(obj))
    else:
        raise StorageError(
            f"persistent var files store nested int tuples, got {type(obj).__name__}"
        )


def _decode_obj(payload: bytes, offset: int) -> Tuple[object, int]:
    tag = payload[offset : offset + 1]
    offset += 1
    if tag == _TAG_TUPLE:
        (count,) = _COUNT.unpack_from(payload, offset)
        offset += _COUNT.size
        items = []
        for _ in range(count):
            item, offset = _decode_obj(payload, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _TAG_INT:
        (value,) = _FIELD.unpack_from(payload, offset)
        return value, offset + _FIELD.size
    raise StorageError(f"corrupt var-record slot (tag {tag!r})")


def _safe_filename(name: str) -> str:
    """File-system-safe encoding of a simulated file name."""
    return "".join(c if c.isalnum() or c in "._-" else f"_{ord(c):02x}" for c in name)


class PersistentDiskFile(DiskFile):
    """A :class:`DiskFile` whose blocks live in a real binary file."""

    def __init__(self, name: str, record_size: int, block_capacity: int,
                 path: Path) -> None:
        super().__init__(name, record_size, block_capacity)
        self.path = path
        self.fields = _fields_per_record(record_size)
        if self.fields is None:
            # Variable-record slot: bounded by the accounting invariant.
            self.slot_bytes = _COUNT.size + block_capacity * _VAR_SLOT_FACTOR
        else:
            # One slot = count header + capacity * fields * 8 bytes.
            self.slot_bytes = _COUNT.size + block_capacity * self.fields * _FIELD.size
        # Every slot is prefixed by a CRC32 of its (padded) payload so torn
        # writes are detectable on read — the crash-consistency contract.
        self.slot_bytes += _CRC.size
        self._num_blocks = 0
        self._block_counts: List[int] = []  # records per block (bookkeeping)
        self.blocks = _BlockProxy(self)  # satisfies len() for num_blocks

    @property
    def num_blocks(self) -> int:  # type: ignore[override]
        return self._num_blocks


class _BlockProxy:
    """Minimal stand-in so base-class code asking len(file.blocks) works."""

    def __init__(self, file: "PersistentDiskFile") -> None:
        self._file = file

    def __len__(self) -> int:
        return self._file._num_blocks


class PersistentBlockDevice(BlockDevice):
    """A block device backed by a directory of real files.

    Args:
        directory: where the ``.blk`` files and the manifest live; created
            if missing.  Reopening an existing directory restores every
            file (the manifest is authoritative).
        block_size: simulated block size; must match the manifest when
            reopening.
        stats, budget: as for :class:`BlockDevice`.
        readonly: open an *existing* device for reading only.  Mutators
            raise :class:`StorageError`, :meth:`close` skips the manifest
            sync, and slot reads go through :func:`os.pread` on raw file
            descriptors — no shared seek position — so any number of
            threads may read through one device concurrently.
    """

    def __init__(
        self,
        directory: PathLike,
        block_size: int = DEFAULT_BLOCK_SIZE,
        stats: Optional[IOStats] = None,
        budget: Optional[IOBudget] = None,
        readonly: bool = False,
    ) -> None:
        super().__init__(block_size=block_size, stats=stats, budget=budget)
        self.directory = Path(directory)
        self.readonly = readonly
        self._handles: Dict[str, object] = {}
        self._handle_lock = threading.Lock()
        manifest_path = self.directory / _MANIFEST
        if readonly:
            if not manifest_path.exists():
                raise StorageError(
                    f"no persisted device at {self.directory} (missing manifest)"
                )
            self._load_manifest(manifest_path)
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        if manifest_path.exists():
            self._load_manifest(manifest_path)

    def _assert_writable(self) -> None:
        if self.readonly:
            raise StorageError(
                f"device at {self.directory} is open read-only"
            )

    # -- manifest -----------------------------------------------------------

    def _load_manifest(self, path: Path) -> None:
        try:
            manifest = json.loads(path.read_text())
        except (ValueError, UnicodeDecodeError) as exc:
            raise StorageError(
                f"corrupt or truncated manifest at {path}: {exc}"
            ) from None
        if manifest["block_size"] != self.block_size:
            raise StorageError(
                f"device at {self.directory} was created with block size "
                f"{manifest['block_size']}, not {self.block_size}"
            )
        for name, meta in manifest["files"].items():
            f = PersistentDiskFile(
                name,
                meta["record_size"],
                self.block_size // meta["record_size"],
                self.directory / meta["path"],
            )
            f._num_blocks = meta["num_blocks"]
            f.num_records = meta["num_records"]
            f._block_counts = list(meta["block_counts"])
            # Older manifests carry no checksum list; file_checksum then
            # returns None and validation degrades to metadata-only.
            f.block_checksums = list(meta.get("block_checksums", ()))
            self._files[name] = f
        self.checkpoint_journal = list(manifest.get("checkpoint", ()))

    def sync(self) -> None:
        """Write the manifest so the directory can be reopened later.

        The write is atomic *and durable*: the temp file is fsynced before
        the ``os.replace`` (so the rename can never expose an unflushed
        manifest), and the parent directory is fsynced after it (so the
        rename itself survives a power loss — without the directory fsync
        a crash can roll the directory entry back to the old manifest even
        though the new file's data reached the platter).  A crash mid-sync
        therefore leaves exactly the previous manifest, never a truncated
        JSON that would brick the whole device.
        """
        self._assert_writable()
        manifest = {
            "block_size": self.block_size,
            "checkpoint": self.checkpoint_journal,
            "files": {
                name: {
                    "path": f.path.name,  # type: ignore[attr-defined]
                    "record_size": f.record_size,
                    "num_blocks": f.num_blocks,
                    "num_records": f.num_records,
                    "block_counts": list(f._block_counts),  # type: ignore[attr-defined]
                    "block_checksums": list(f.block_checksums),
                }
                for name, f in self._files.items()
            },
        }
        target = self.directory / _MANIFEST
        tmp = self.directory / (_MANIFEST + ".tmp")
        with open(tmp, "w") as fh:
            fh.write(json.dumps(manifest, indent=1))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        """Make the manifest rename durable (no-op where directories
        cannot be opened, e.g. Windows)."""
        try:
            dirfd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dirfd)
        except OSError:
            pass
        finally:
            os.close(dirfd)

    def close(self) -> None:
        """Flush the manifest (writable devices) and close every handle."""
        if not self.readonly:
            self.sync()
        with self._handle_lock:
            for handle in self._handles.values():
                if isinstance(handle, int):
                    os.close(handle)
                else:
                    handle.close()  # type: ignore[attr-defined]
            self._handles.clear()

    def __enter__(self) -> "PersistentBlockDevice":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- file namespace -------------------------------------------------------

    def create(self, name: str, record_size: int, overwrite: bool = False) -> DiskFile:
        self._assert_writable()
        if name in self._files and not overwrite:
            raise StorageError(f"file {name!r} already exists")
        if name in self._files:
            self.delete(name)
        path = self.directory / f"{_safe_filename(name)}.blk"
        f = PersistentDiskFile(
            name, record_size, self.block_size // record_size, path
        )
        if f.block_capacity < 1:
            raise StorageError(f"record of {record_size} bytes does not fit in one block")
        path.write_bytes(b"")
        self._files[name] = f
        return f

    def delete(self, name: str) -> None:
        self._assert_writable()
        f = self._files.get(name)
        if f is None:
            raise StorageError(f"no such file: {name!r}")
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.close()  # type: ignore[attr-defined]
        try:
            os.unlink(f.path)  # type: ignore[attr-defined]
        except FileNotFoundError:
            pass
        del self._files[name]

    def rename(self, old: str, new: str, overwrite: bool = True) -> None:
        self._assert_writable()
        f = self.open(old)
        if new in self._files and not overwrite:
            raise StorageError(f"file {new!r} already exists")
        if new in self._files:
            self.delete(new)
        handle = self._handles.pop(old, None)
        if handle is not None:
            handle.close()  # type: ignore[attr-defined]
        new_path = self.directory / f"{_safe_filename(new)}.blk"
        os.replace(f.path, new_path)  # type: ignore[attr-defined]
        f.path = new_path  # type: ignore[attr-defined]
        del self._files[old]
        f.name = new
        self._files[new] = f

    # -- block I/O ---------------------------------------------------------------

    def _handle(self, f: PersistentDiskFile):
        handle = self._handles.get(f.name)
        if handle is None:
            with self._handle_lock:
                handle = self._handles.get(f.name)
                if handle is None:
                    if self.readonly:
                        # A raw fd read with os.pread — no seek position to
                        # share, so concurrent readers never interleave.
                        handle = os.open(f.path, os.O_RDONLY)
                    else:
                        handle = open(f.path, "r+b")
                    self._handles[f.name] = handle
        return handle

    def _encode(self, f: PersistentDiskFile, records: Sequence[Record]) -> bytes:
        parts = [_COUNT.pack(len(records))]
        if f.fields is None:
            for record in records:
                _encode_obj(record, parts)
        else:
            for record in records:
                if len(record) != f.fields:
                    raise StorageError(
                        f"record {record!r} has {len(record)} fields; file "
                        f"{f.name!r} stores {f.fields}-field records"
                    )
                for value in record:
                    parts.append(_FIELD.pack(value))
        payload = b"".join(parts)
        room = f.slot_bytes - _CRC.size
        if len(payload) > room:
            raise StorageError(
                f"encoded block of {len(payload)} bytes overflows the "
                f"{room}-byte slot of {f.name!r}"
            )
        return payload.ljust(room, b"\0")

    @staticmethod
    def _seal(payload: bytes) -> Tuple[bytes, int]:
        """Prefix a padded slot payload with its CRC32; returns the full
        slot bytes and the checksum value (also kept in the manifest)."""
        checksum = zlib.crc32(payload)
        return _CRC.pack(checksum) + payload, checksum

    def _decode(self, f: PersistentDiskFile, payload: bytes) -> List[Record]:
        (count,) = _COUNT.unpack_from(payload, 0)
        records: List[Record] = []
        offset = _COUNT.size
        if f.fields is None:
            for _ in range(count):
                record, offset = _decode_obj(payload, offset)
                records.append(record)  # type: ignore[arg-type]
            return records
        for _ in range(count):
            fields = tuple(
                _FIELD.unpack_from(payload, offset + i * _FIELD.size)[0]
                for i in range(f.fields)
            )
            records.append(fields)
            offset += f.fields * _FIELD.size
        return records

    def _append_impl(self, f: DiskFile, records: Sequence[Record]) -> None:
        assert isinstance(f, PersistentDiskFile)
        self._assert_writable()
        slot, checksum = self._seal(self._encode(f, records))
        handle = self._handle(f)
        handle.seek(f._num_blocks * f.slot_bytes)
        handle.write(slot)
        handle.flush()
        f._num_blocks += 1
        f._block_counts.append(len(records))
        f.block_checksums.append(checksum)
        f.num_records += len(records)
        self._charge_write(f, f._num_blocks - 1, sequential=True)

    def _read_slot(self, f: PersistentDiskFile, index: int) -> bytes:
        """Read and checksum-verify one slot; returns the payload bytes."""
        handle = self._handle(f)
        if isinstance(handle, int):
            slot = os.pread(handle, f.slot_bytes, index * f.slot_bytes)
        else:
            handle.seek(index * f.slot_bytes)
            slot = handle.read(f.slot_bytes)
        payload = slot[_CRC.size:]
        if len(slot) < f.slot_bytes or _CRC.unpack_from(slot)[0] != zlib.crc32(payload):
            raise CorruptBlockError(f.name, index)
        return payload

    def _read_impl(self, f: DiskFile, index: int, sequential: bool) -> Sequence[Record]:
        assert isinstance(f, PersistentDiskFile)
        payload = self._read_slot(f, index)
        self._charge_read(f, index, sequential=sequential)
        return self._decode(f, payload)

    def _overwrite_impl(self, f: DiskFile, index: int, records: Sequence[Record],
                        sequential: bool) -> None:
        assert isinstance(f, PersistentDiskFile)
        self._assert_writable()
        slot, checksum = self._seal(self._encode(f, records))
        handle = self._handle(f)
        handle.seek(index * f.slot_bytes)
        handle.write(slot)
        handle.flush()
        f.num_records += len(records) - f._block_counts[index]
        f._block_counts[index] = len(records)
        f.block_checksums[index] = checksum
        if self.pool is not None:
            self.pool.invalidate_block(f, index)
        self._charge_write(f, index, sequential=sequential)

    # -- crash surface -----------------------------------------------------

    def _damage_block(self, f: DiskFile, index: int) -> None:
        """Flip one stored payload byte of slot ``index`` on disk without
        touching its CRC prefix — simulated bit-rot; the next
        :meth:`_read_slot` raises :class:`CorruptBlockError`."""
        assert isinstance(f, PersistentDiskFile)
        self._assert_writable()
        handle = self._handle(f)
        position = index * f.slot_bytes + _CRC.size
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([(byte[0] if byte else 0) ^ 0x01]))
        handle.flush()
        if self.pool is not None:
            self.pool.invalidate_block(f, index)

    def _torn_write(self, f: DiskFile, records: Sequence[Record],
                    index: Optional[int] = None) -> None:
        """Leave half of an encoded slot on disk without updating any
        metadata — what a power loss mid-``write`` leaves behind.  A torn
        overwrite corrupts a live block (its CRC no longer matches); a torn
        append lands beyond the manifest's block count, so it is simply
        invisible after reopen.  No I/O is charged."""
        assert isinstance(f, PersistentDiskFile)
        self._assert_writable()
        slot, _ = self._seal(self._encode(f, records))
        position = (f._num_blocks if index is None else index) * f.slot_bytes
        handle = self._handle(f)
        handle.seek(position)
        handle.write(slot[: len(slot) // 2])
        handle.flush()
        if index is not None and self.pool is not None:
            self.pool.invalidate_block(f, index)

    def verify_block(self, f: DiskFile, index: int) -> Sequence[Record]:
        """Read block ``index`` and check its stored CRC (one sequential
        read); raises :class:`CorruptBlockError` on a torn/damaged slot."""
        assert isinstance(f, PersistentDiskFile)
        self._assert_live(f)
        if not 0 <= index < f._num_blocks:
            raise StorageError(f"block {index} out of range for {f.name!r}")
        payload = self._read_slot(f, index)
        self._charge_read(f, index, sequential=True)
        expected = f.block_checksums[index] if index < len(f.block_checksums) else None
        if expected is not None and zlib.crc32(payload) != expected:
            raise CorruptBlockError(f.name, index)
        return self._decode(f, payload)

    def remove_orphan_blocks(self) -> int:
        """Unlink ``.blk`` files not referenced by any live file — the
        debris of writes that never reached a manifest sync before a
        crash.  Returns the number of files removed."""
        self._assert_writable()
        referenced = {
            f.path.name for f in self._files.values()  # type: ignore[attr-defined]
        }
        removed = 0
        for path in self.directory.glob("*.blk"):
            if path.name not in referenced:
                path.unlink()
                removed += 1
        return removed


# -- shared read-only handles ---------------------------------------------
#
# The query service holds one persisted device open and serves many
# sessions from it.  ``open_shared`` hands out refcounted leases on a
# single read-only PersistentBlockDevice per (directory, block_size);
# each lease's ``reader()`` wraps the shared device in a ReadOnlyView
# with its own IOStats ledger, so tenants read the same OS file
# descriptors while their I/O is accounted separately.

_SHARED_LOCK = threading.Lock()
_SHARED: Dict[Tuple[str, int], "DeviceHandle"] = {}


class DeviceHandle:
    """A refcounted lease on a shared read-only :class:`PersistentBlockDevice`.

    Obtained from :func:`open_shared`; every holder must :meth:`close`
    (or use the handle as a context manager).  The underlying device and
    its file descriptors are closed when the last lease is released.
    """

    def __init__(self, key: Tuple[str, int], device: PersistentBlockDevice) -> None:
        self._key = key
        self.device = device
        self._refs = 1
        self._closed = False

    @property
    def refcount(self) -> int:
        with _SHARED_LOCK:
            return self._refs

    def _try_acquire(self) -> bool:
        # Caller holds _SHARED_LOCK.
        if self._closed:
            return False
        self._refs += 1
        return True

    def acquire(self) -> "DeviceHandle":
        """Take one more lease on the same device."""
        with _SHARED_LOCK:
            if not self._try_acquire():
                raise StorageError(
                    f"device handle for {self._key[0]} is closed"
                )
        return self

    def close(self) -> None:
        """Release this lease; the device closes with the last one."""
        with _SHARED_LOCK:
            if self._closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._closed = True
            if _SHARED.get(self._key) is self:
                del _SHARED[self._key]
        self.device.close()

    def reader(
        self,
        stats: Optional[IOStats] = None,
        budget: Optional[IOBudget] = None,
    ) -> "ReadOnlyView":
        """A new per-session reader over the shared device."""
        return ReadOnlyView(self.device, stats=stats, budget=budget)

    def __enter__(self) -> "DeviceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_shared(
    directory: PathLike, block_size: int = DEFAULT_BLOCK_SIZE
) -> DeviceHandle:
    """Open (or join) the shared read-only device for ``directory``.

    The first caller opens the device; later callers get a new lease on
    the same one, so N sessions share one set of file descriptors and
    one in-memory manifest.  Each caller owns exactly one release
    (:meth:`DeviceHandle.close`).
    """
    key = (str(Path(directory).resolve()), block_size)
    with _SHARED_LOCK:
        handle = _SHARED.get(key)
        if handle is not None and handle._try_acquire():
            return handle
    # Open outside the registry lock (disk I/O); losing a race here just
    # means two opens, and the loser's device is closed again.
    device = PersistentBlockDevice(directory, block_size=block_size, readonly=True)
    handle = DeviceHandle(key, device)
    with _SHARED_LOCK:
        existing = _SHARED.get(key)
        if existing is not None and existing._try_acquire():
            winner = existing
        else:
            _SHARED[key] = handle
            return handle
    device.close()
    return winner


class ReadOnlyView:
    """A per-session reader over a shared read-only device.

    Looks like a :class:`~repro.io.blocks.BlockDevice` to every reading
    code path (:class:`~repro.io.files.ExternalFile`,
    :class:`~repro.baselines.node_table.NodeTable`, ...), but delegates
    the physical slot reads to the shared base device while charging its
    *own* :class:`IOStats` ledger — the unit of per-tenant accounting.
    All mutators raise :class:`StorageError`.
    """

    def __init__(
        self,
        base: PersistentBlockDevice,
        stats: Optional[IOStats] = None,
        budget: Optional[IOBudget] = None,
    ) -> None:
        if not base.readonly:
            raise StorageError("ReadOnlyView requires a readonly base device")
        self._base = base
        self.block_size = base.block_size
        self.stats = stats if stats is not None else IOStats()
        if budget is not None:
            self.stats.budget = budget
        self.pool = None  # no shared buffer pool: charges stay per-session
        self.default_codec = base.default_codec

    # -- namespace (delegated, read-only) ---------------------------------

    def open(self, name: str) -> DiskFile:
        return self._base.open(name)

    def exists(self, name: str) -> bool:
        return self._base.exists(name)

    def list_files(self) -> List[str]:
        return self._base.list_files()

    def total_blocks(self) -> int:
        return self._base.total_blocks()

    # -- block I/O ---------------------------------------------------------

    def read_block(self, f: DiskFile, index: int, sequential: bool) -> Sequence[Record]:
        """Read one block of the shared device, charged to *this* ledger."""
        assert isinstance(f, PersistentDiskFile)
        self._base._assert_live(f)
        if not 0 <= index < f.num_blocks:
            raise StorageError(
                f"block {index} out of range for {f.name!r} ({f.num_blocks} blocks)"
            )
        payload = self._base._read_slot(f, index)
        self.stats.record_read(sequential=sequential)
        return self._base._decode(f, payload)

    # -- rejected mutators -------------------------------------------------

    def _reject(self, operation: str):
        raise StorageError(
            f"read-only session view of {self._base.directory}: {operation} rejected"
        )

    def create(self, name: str, record_size: int, overwrite: bool = False):
        self._reject("create")

    def delete(self, name: str) -> None:
        self._reject("delete")

    def rename(self, old: str, new: str, overwrite: bool = True) -> None:
        self._reject("rename")

    def temp_name(self, prefix: str = "tmp") -> str:
        self._reject("temp_name")

    def append_block(self, f: DiskFile, records: Sequence[Record]) -> None:
        self._reject("append_block")

    def overwrite_block(self, f: DiskFile, index: int, records: Sequence[Record],
                        sequential: bool = False) -> None:
        self._reject("overwrite_block")
