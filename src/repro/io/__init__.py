"""Simulated external-memory subsystem (the Aggarwal–Vitter I/O model).

Public surface:

* :class:`~repro.io.blocks.BlockDevice` — the simulated disk;
* :class:`~repro.io.files.ExternalFile` — fixed-width record files;
* :class:`~repro.io.memory.MemoryBudget` — main-memory budget ``M``;
* :class:`~repro.io.stats.IOStats` / :class:`~repro.io.stats.IOBudget` —
  the block-I/O ledger and the INF cutoff;
* :func:`~repro.io.sort.external_sort` and the merge-join helpers in
  :mod:`repro.io.join`.
"""

from repro.io.blocks import DEFAULT_BLOCK_SIZE, BlockDevice, DiskFile
from repro.io.cache import BufferPool, LabelCache
from repro.io.files import ExternalFile
from repro.io.parallel import MakespanMeter, StripedDevice, WorkerPool, shard_ranges
from repro.io.persistent import (
    DeviceHandle,
    PersistentBlockDevice,
    ReadOnlyView,
    open_shared,
)
from repro.io.pool import SharedBufferPool
from repro.io.priority_queue import ExternalPriorityQueue
from repro.io.varfile import VarRecordFile, varint_size
from repro.io.join import anti_join, cogroup, grouped, lookup_join, merge_join, semi_join
from repro.io.memory import MemoryBudget
from repro.io.sort import external_sort, external_sort_records, external_sort_stream
from repro.io.stats import IOBudget, IOSnapshot, IOStats

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockDevice",
    "PersistentBlockDevice",
    "DeviceHandle",
    "ReadOnlyView",
    "open_shared",
    "DiskFile",
    "ExternalFile",
    "BufferPool",
    "LabelCache",
    "SharedBufferPool",
    "StripedDevice",
    "WorkerPool",
    "MakespanMeter",
    "shard_ranges",
    "ExternalPriorityQueue",
    "VarRecordFile",
    "varint_size",
    "MemoryBudget",
    "IOStats",
    "IOSnapshot",
    "IOBudget",
    "external_sort",
    "external_sort_records",
    "external_sort_stream",
    "grouped",
    "cogroup",
    "lookup_join",
    "merge_join",
    "semi_join",
    "anti_join",
]
