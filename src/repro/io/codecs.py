"""Pluggable record codecs for the external operators.

Every intermediate the pipeline writes — sort runs, merge-pass outputs,
degree/cover files, per-level SCC-label files — is a stream of small
integer tuples, usually sorted by one of its fields.  The paper's cost
(and every figure this repo reproduces) is counted in block I/Os, so
shrinking the accounted bytes per record shrinks every term of the cost
model directly: fewer bytes → fewer blocks per run → fewer blocks per
merge pass.

Three codecs are provided:

* ``"fixed"`` — the identity codec: every record costs its declared
  fixed width, exactly as :class:`~repro.io.files.ExternalFile` charges.
  Selecting it reproduces the uncompressed pipeline (the ablation).
* ``"varint"`` — each field as a zigzag LEB128 varint.  Order-agnostic;
  used for intermediates written in no particular order (``E_add``,
  EM-SCC rewrite files).
* ``"gap-varint"`` — like ``"varint"``, but the *sort field* (the field
  the stream is ordered by) is delta-encoded against the previous record
  in the block.  Gap chains restart at block boundaries, so every block
  is independently decodable — the WebGraph trick applied to arbitrary
  record streams.  Zigzag deltas keep the codec correct on unsorted
  input (it merely compresses worse), which the property tests exercise.

Codecs implement both the *accounting* (:meth:`Codec.encoded_size`, what
the simulated device charges) and the *real byte encoding*
(:meth:`Codec.encode` / :meth:`Codec.decode`); the property tests pin
``len(encode(...)) == encoded_size(...)`` and roundtrip identity, so the
charged sizes are exactly what a real encoder would produce.

:class:`CompressedRecordFile` packages a codec with a
:class:`~repro.io.varfile.VarRecordFile` behind the same interface as
:class:`~repro.io.files.ExternalFile`, so every operator can produce and
consume either file kind; :func:`create_record_file` picks the kind from
the codec in effect (explicit argument, else the device default, else
:data:`DEFAULT_CODEC`).
"""

from __future__ import annotations

import os
import struct
from bisect import bisect_right
from itertools import accumulate, islice
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import StorageError
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.varfile import VarRecordFile, varint_size
from repro.kernels import _flags as _kernel_flags
from repro.kernels.merge import _to_array

__all__ = [
    "Codec",
    "FixedCodec",
    "VarintCodec",
    "GapVarintCodec",
    "CODECS",
    "DEFAULT_CODEC",
    "resolve_codec",
    "CompressedRecordFile",
    "RecordStore",
    "create_record_file",
    "record_file_from_records",
    "batch_enabled",
    "set_batch_enabled",
    "numpy_enabled",
    "set_numpy_enabled",
    "BATCH_CHUNK",
]

Record = Tuple[int, ...]

DEFAULT_CODEC = "gap-varint"
"""Codec used when neither the caller nor the device names one."""


# -- batch-path feature flags -------------------------------------------------

BATCH_CHUNK = 4096
"""Records staged per batch append/size computation.  Large enough to
amortize the per-chunk setup, small enough that chunk buffers stay cache
resident; chunking is invisible to the output (the greedy block walk
carries the previous record across chunk boundaries)."""

_batch_enabled = os.environ.get("REPRO_BATCH_IO", "1") != "0"

_NUMPY_MIN = 256
"""Below this many records the numpy conversion overhead beats the win."""


def batch_enabled() -> bool:
    """Whether the block-granularity batch write path is active (default
    on; disable with ``REPRO_BATCH_IO=0`` or :func:`set_batch_enabled` —
    the scalar and batch paths are byte-identical, so this is a debugging
    and benchmarking switch, not a correctness one)."""
    return _batch_enabled


def set_batch_enabled(enabled: bool) -> bool:
    """Toggle the batch write path; returns the previous setting."""
    global _batch_enabled
    previous, _batch_enabled = _batch_enabled, bool(enabled)
    return previous


def numpy_enabled() -> bool:
    """Whether the numpy vectorized varint-size path is active.  The
    ``REPRO_NUMPY`` flag lives in :mod:`repro.kernels` (its single
    process-wide home); this is a thin view of
    :func:`repro.kernels.available` kept for the codec call sites and
    API compatibility.  Opt-in and silently inert when numpy is not
    importable; the pure-Python fallback is byte-identical."""
    return _kernel_flags.available()


def set_numpy_enabled(enabled: bool) -> bool:
    """Toggle the numpy fast path (process-wide, via
    :func:`repro.kernels.set_enabled`); returns the previous setting."""
    return _kernel_flags.set_enabled(enabled)


# -- varint / zigzag primitives ---------------------------------------------


def zigzag_encode(value: int) -> int:
    """Map a signed int to an unsigned one (0, -1, 1, -2, ... -> 0, 1, 2, 3)."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError(f"varints encode non-negative integers, got {value}")
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def decode_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one LEB128 varint at ``pos``; returns ``(value, next_pos)``."""
    value = 0
    shift = 0
    while True:
        try:
            byte = data[pos]
        except IndexError:
            raise ValueError("truncated varint") from None
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            return value, pos
        shift += 7


# -- codecs ------------------------------------------------------------------


class Codec:
    """Size accounting + byte encoding for one record stream.

    Args:
        record_size: the stream's *logical* fixed width in bytes (what the
            uncompressed representation would charge per record); used for
            compression-ratio reporting and cost-model calibration.
    """

    name = "abstract"

    def __init__(self, record_size: int) -> None:
        if record_size <= 0:
            raise ValueError(f"record_size must be positive, got {record_size}")
        self.record_size = record_size

    def encoded_size(self, record: Record, prev: Optional[Record] = None) -> int:
        """Accounted bytes for ``record``; ``prev`` is the previous record
        in the same block (``None`` at a block start)."""
        raise NotImplementedError

    def encode(self, record: Record, prev: Optional[Record] = None) -> bytes:
        """The real byte encoding whose length :meth:`encoded_size` accounts."""
        raise NotImplementedError

    def decode(
        self, data: bytes, pos: int, num_fields: int, prev: Optional[Record] = None
    ) -> Tuple[Record, int]:
        """Decode one record at ``pos``; returns ``(record, next_pos)``."""
        raise NotImplementedError

    def decode_stream(self, data: bytes, num_fields: int) -> Iterator[Record]:
        """Decode a whole encoded block back into records."""
        pos = 0
        prev: Optional[Record] = None
        while pos < len(data):
            record, pos = self.decode(data, pos, num_fields, prev)
            prev = record
            yield record

    # -- block-granularity batch APIs --------------------------------------

    def encoded_sizes(
        self, records: Sequence[Record], prev: Optional[Record] = None
    ) -> List[int]:
        """Accounted bytes for each record of a contiguous slice.

        ``prev`` is the record immediately before the slice (``None`` at a
        stream or block start); within the slice each record's predecessor
        is the previous slice element.  Equals ``[encoded_size(r, p) ...]``
        element for element — subclasses override with tight loops (and an
        optional numpy path), this generic version is the reference.
        """
        sizes: List[int] = []
        for record in records:
            sizes.append(self.encoded_size(record, prev))
            prev = record
        return sizes

    def encode_block(self, records: Sequence[Record]) -> bytes:
        """Encode a whole block of records (the chain restarts at the
        block start, exactly like the per-record writer's block cuts)."""
        out = bytearray()
        prev: Optional[Record] = None
        for record in records:
            out += self.encode(record, prev)
            prev = record
        return bytes(out)

    def decode_block(self, data: bytes, num_fields: int) -> List[Record]:
        """Decode one encoded block back into its record list (the batch
        counterpart of :meth:`decode_stream`)."""
        return list(self.decode_stream(data, num_fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(record_size={self.record_size})"


# struct format characters for the field widths struct can unpack natively;
# other widths take the generic int.from_bytes path.
_STRUCT_FIELD = {1: "B", 2: "H", 4: "I", 8: "Q"}


class FixedCodec(Codec):
    """The identity codec: every record costs the logical fixed width.

    Encoding packs each field as a fixed-width big-endian zigzag integer
    (``record_size / num_fields`` bytes per field — the repo's record
    layouts are all 4 bytes per field), so the roundtrip property holds
    for it too as long as the values fit.
    """

    name = "fixed"

    def encoded_size(self, record: Record, prev: Optional[Record] = None) -> int:
        return self.record_size

    def _field_width(self, num_fields: int) -> int:
        width, rem = divmod(self.record_size, num_fields)
        if rem or width <= 0:
            raise StorageError(
                f"{self.record_size}-byte records cannot hold {num_fields} "
                "equal-width fields"
            )
        return width

    def encode(self, record: Record, prev: Optional[Record] = None) -> bytes:
        width = self._field_width(len(record))
        out = bytearray()
        for value in record:
            unsigned = zigzag_encode(value)
            if unsigned >= 1 << (8 * width):
                raise StorageError(
                    f"value {value} does not fit in a {width}-byte fixed field"
                )
            out += unsigned.to_bytes(width, "big")
        return bytes(out)

    def decode(
        self, data: bytes, pos: int, num_fields: int, prev: Optional[Record] = None
    ) -> Tuple[Record, int]:
        width = self._field_width(num_fields)
        fields = []
        for _ in range(num_fields):
            fields.append(zigzag_decode(int.from_bytes(data[pos : pos + width], "big")))
            pos += width
        return tuple(fields), pos

    def encoded_sizes(
        self, records: Sequence[Record], prev: Optional[Record] = None
    ) -> List[int]:
        return [self.record_size] * len(records)

    def encode_block(self, records: Sequence[Record]) -> bytes:
        if not records:
            return b""
        width = self._field_width(len(records[0]))
        fmt = _STRUCT_FIELD.get(width)
        if fmt is not None:
            flat = [
                (value << 1) if value >= 0 else ((-value << 1) - 1)
                for record in records
                for value in record
            ]
            try:
                return struct.pack(f">{len(flat)}{fmt}", *flat)
            except struct.error:
                pass  # out-of-range value: rescan below for the exact error
        limit = 1 << (8 * width)
        out = bytearray()
        for record in records:
            for value in record:
                unsigned = (value << 1) if value >= 0 else ((-value << 1) - 1)
                if unsigned >= limit:
                    raise StorageError(
                        f"value {value} does not fit in a {width}-byte fixed field"
                    )
                out += unsigned.to_bytes(width, "big")
        return bytes(out)

    def decode_block(self, data: bytes, num_fields: int) -> List[Record]:
        width = self._field_width(num_fields)
        step = width * num_fields
        if len(data) % step:
            raise ValueError("truncated fixed-width block")
        fmt = _STRUCT_FIELD.get(width)
        if fmt is not None:
            unpacked = struct.unpack(f">{len(data) // width}{fmt}", data)
            decoded = [
                (u >> 1) if (u & 1) == 0 else -((u + 1) >> 1) for u in unpacked
            ]
            grouped = iter(decoded)
            return list(zip(*([grouped] * num_fields)))
        from_bytes = int.from_bytes
        records: List[Record] = []
        append = records.append
        for start in range(0, len(data), step):
            fields = []
            pos = start
            for _ in range(num_fields):
                unsigned = from_bytes(data[pos : pos + width], "big")
                fields.append(
                    (unsigned >> 1) if (unsigned & 1) == 0 else -((unsigned + 1) >> 1)
                )
                pos += width
            append(tuple(fields))
        return records


def _varint_sizes_numpy(zigzagged) -> List[int]:
    """Per-record varint byte counts from a (n, fields) uint64 zigzag
    array: a varint spends one byte per started 7-bit group, so the size
    is one plus the number of ``2**(7k)`` thresholds at or below the
    value."""
    np = _kernel_flags.numpy_module()
    thresholds = np.array([1 << (7 * k) for k in range(1, 10)], dtype=np.uint64)
    sizes = np.searchsorted(thresholds, zigzagged, side="right") + 1
    return sizes.sum(axis=1, dtype=np.int64).tolist()


def _zigzag_numpy(array):
    """Vectorized :func:`zigzag_encode` (int64 in, uint64 out)."""
    np = _kernel_flags.numpy_module()
    unsigned = array.astype(np.uint64)
    return np.where(
        array >= 0,
        unsigned << np.uint64(1),
        (np.uint64(0) - unsigned) * np.uint64(2) - np.uint64(1),
    )


class VarintCodec(Codec):
    """Every field as a zigzag LEB128 varint; order-agnostic."""

    name = "varint"

    def encoded_size(self, record: Record, prev: Optional[Record] = None) -> int:
        return sum(varint_size(zigzag_encode(value)) for value in record)

    def encode(self, record: Record, prev: Optional[Record] = None) -> bytes:
        return b"".join(encode_varint(zigzag_encode(value)) for value in record)

    def decode(
        self, data: bytes, pos: int, num_fields: int, prev: Optional[Record] = None
    ) -> Tuple[Record, int]:
        fields = []
        for _ in range(num_fields):
            unsigned, pos = decode_varint(data, pos)
            fields.append(zigzag_decode(unsigned))
        return tuple(fields), pos

    def encoded_sizes(
        self, records: Sequence[Record], prev: Optional[Record] = None
    ) -> List[int]:
        if numpy_enabled() and len(records) >= _NUMPY_MIN:
            # fromiter-based conversion (the kernel layer's) runs ~2x
            # faster than np.asarray on a list of tuples; None means the
            # records don't fit int64 and the pure path handles them.
            array = _to_array(_kernel_flags.numpy_module(), records)
            if array is not None:
                return _varint_sizes_numpy(_zigzag_numpy(array))
        sizes: List[int] = []
        append = sizes.append
        if records and len(records[0]) == 2:
            # Edge records (the dominant stream shape): unpack directly and
            # size via a threshold chain — no per-field loop, no
            # bit_length() call for the small values sorted streams carry.
            try:
                # One listcomp (LIST_APPEND, no method call per record);
                # the walruses keep each zigzag value in a local for its
                # threshold chain.
                return [
                    (1 if (za := (a << 1) if a >= 0 else ((-a << 1) - 1))
                     < 0x80 else 2 if za < 0x4000 else
                     3 if za < 0x200000 else 4 if za < 0x10000000 else
                     (za.bit_length() + 6) // 7)
                    + (1 if (zb := (b << 1) if b >= 0 else ((-b << 1) - 1))
                       < 0x80 else 2 if zb < 0x4000 else
                       3 if zb < 0x200000 else 4 if zb < 0x10000000 else
                       (zb.bit_length() + 6) // 7)
                    for a, b in records
                ]
            except (TypeError, ValueError):
                pass  # mixed arity: rebuild on the generic path
        for record in records:
            nbytes = 0
            for value in record:
                zz = (value << 1) if value >= 0 else ((-value << 1) - 1)
                nbytes += 1 if zz < 0x80 else (zz.bit_length() + 6) // 7
            append(nbytes)
        return sizes

    def encode_block(self, records: Sequence[Record]) -> bytes:
        out = bytearray()
        emit = out.append
        for record in records:
            for value in record:
                zz = (value << 1) if value >= 0 else ((-value << 1) - 1)
                while zz >= 0x80:
                    emit((zz & 0x7F) | 0x80)
                    zz >>= 7
                emit(zz)
        return bytes(out)

    def decode_block(self, data: bytes, num_fields: int) -> List[Record]:
        records: List[Record] = []
        append = records.append
        pos = 0
        end = len(data)
        while pos < end:
            fields = []
            for _ in range(num_fields):
                value = 0
                shift = 0
                while True:
                    try:
                        byte = data[pos]
                    except IndexError:
                        raise ValueError("truncated varint") from None
                    pos += 1
                    value |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                fields.append(
                    (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)
                )
            append(tuple(fields))
        return records


_SIZER_MAX_WIDTH = 8
_GAP_SIZERS: Dict[Tuple[int, int], Callable[[Sequence[Record]], List[int]]] = {}


def _gap_sizer(width: int, gap: int) -> Callable[[Sequence[Record]], List[int]]:
    """Build (and cache) a fused size loop for ``width``-field records
    with the delta on field ``gap``.

    The hot streams come in a handful of fixed shapes — ``(src, dst)``
    edges sorted on either endpoint, ``(u, v, SCC)`` augmented edges,
    degree and cover records — and a per-shape listcomp beats the generic
    ``enumerate`` walk ~3x: every field unpacks straight into a local,
    every zigzag value feeds a constant threshold chain (no
    ``bit_length`` call for values under 4 varint bytes), and record
    ``i``'s gap base is record ``i-1``'s own field — a ``zip`` of the
    records against themselves shifted by one — so no running state
    survives the loop.  The generated source is exactly the expression a
    hand-written loop for that shape would spell out; the head record
    (the only one delta'd against the inter-chunk ``prev``) is *not*
    covered and stays with the caller.
    """
    sizer = _GAP_SIZERS.get((width, gap))
    if sizer is not None:
        return sizer
    values = [f"v{i}" for i in range(width)]
    prevs = ["p" if i == gap else "_" for i in range(width)]
    terms = []
    for i, v in enumerate(values):
        if i == gap:
            zz = f"(z{i} := (d << 1) if (d := {v} - p) >= 0 else ((-d << 1) - 1))"
        else:
            zz = f"(z{i} := ({v} << 1) if {v} >= 0 else ((-{v} << 1) - 1))"
        terms.append(
            f"(1 if {zz} < 0x80 else 2 if z{i} < 0x4000 else "
            f"3 if z{i} < 0x200000 else 4 if z{i} < 0x10000000 else "
            f"(z{i}.bit_length() + 6) // 7)"
        )
    source = (
        "def _sizes(records, _zip=zip, _islice=islice):\n"
        "    return [\n"
        f"        {' + '.join(terms)}\n"
        f"        for ({', '.join(prevs)},), ({', '.join(values)},)\n"
        "        in _zip(records, _islice(records, 1, None))\n"
        "    ]\n"
    )
    namespace = {"zip": zip, "islice": islice}
    exec(source, namespace)  # noqa: S102 - source built from two small ints
    sizer = namespace["_sizes"]
    _GAP_SIZERS[(width, gap)] = sizer
    return sizer


class GapVarintCodec(VarintCodec):
    """Varint fields with the sort field delta-encoded within each block.

    Args:
        record_size: the stream's logical fixed width.
        gap_field: index of the field the stream is sorted by (its deltas
            are small and non-negative on sorted input).  Zigzag deltas
            keep decoding correct even when the input is not sorted.
    """

    name = "gap-varint"

    def __init__(self, record_size: int, gap_field: int = 0) -> None:
        super().__init__(record_size)
        if gap_field < 0:
            raise ValueError(f"gap_field must be non-negative, got {gap_field}")
        self.gap_field = gap_field

    def _deltas(self, record: Record, prev: Optional[Record]) -> Iterator[int]:
        for index, value in enumerate(record):
            if prev is not None and index == self.gap_field:
                yield value - prev[index]
            else:
                yield value

    def encoded_size(self, record: Record, prev: Optional[Record] = None) -> int:
        # Open-coded delta/zigzag/size walk: this runs once per record on
        # the non-batch append path, where the generator pipeline costs
        # more than the arithmetic.
        gap = self.gap_field
        nbytes = 0
        for index, value in enumerate(record):
            if index == gap and prev is not None:
                value -= prev[index]
            zz = (value << 1) if value >= 0 else ((-value << 1) - 1)
            nbytes += 1 if zz < 0x80 else (zz.bit_length() + 6) // 7
        return nbytes

    def encode(self, record: Record, prev: Optional[Record] = None) -> bytes:
        return b"".join(
            encode_varint(zigzag_encode(value)) for value in self._deltas(record, prev)
        )

    def decode(
        self, data: bytes, pos: int, num_fields: int, prev: Optional[Record] = None
    ) -> Tuple[Record, int]:
        record, pos = super().decode(data, pos, num_fields, prev)
        if prev is not None and self.gap_field < num_fields:
            fields = list(record)
            fields[self.gap_field] += prev[self.gap_field]
            record = tuple(fields)
        return record, pos

    def encoded_sizes(
        self, records: Sequence[Record], prev: Optional[Record] = None
    ) -> List[int]:
        if not records:
            return []
        gap = self.gap_field
        if gap >= len(records[0]):
            return VarintCodec.encoded_sizes(self, records)
        if numpy_enabled() and len(records) >= _NUMPY_MIN:
            np = _kernel_flags.numpy_module()
            array = _to_array(np, records)
            if array is not None:
                try:
                    column = array[:, gap]
                    deltas = np.empty_like(column)
                    deltas[1:] = column[1:] - column[:-1]
                    deltas[0] = (
                        column[0] - prev[gap] if prev is not None else column[0]
                    )
                    # the fromiter array is freshly built, so the gap column
                    # can be overwritten in place (no caller aliases it)
                    array[:, gap] = deltas
                    return _varint_sizes_numpy(_zigzag_numpy(array))
                except (OverflowError, ValueError):
                    pass  # prev beyond int64: pure path handles bigints
        width = len(records[0])
        if width <= _SIZER_MAX_WIDTH:
            # Fused per-shape loop (see :func:`_gap_sizer`): the listcomp
            # covers records[1:], whose gap base is the *previous slice
            # element*; the head — the only record delta'd against
            # ``prev`` — goes through the scalar walk.
            try:
                tail = _gap_sizer(width, gap)(records)
            except (TypeError, ValueError):
                pass  # ragged/non-integer records: generic walk below
            else:
                tail.insert(0, self.encoded_size(records[0], prev))
                return tail
        sizes: List[int] = []
        append = sizes.append
        prev_gap = prev[gap] if prev is not None else None
        for record in records:
            nbytes = 0
            for index, value in enumerate(record):
                if index == gap and prev_gap is not None:
                    value -= prev_gap
                zz = (value << 1) if value >= 0 else ((-value << 1) - 1)
                nbytes += 1 if zz < 0x80 else (zz.bit_length() + 6) // 7
            prev_gap = record[gap]
            append(nbytes)
        return sizes

    def encode_block(self, records: Sequence[Record]) -> bytes:
        if not records:
            return b""
        gap = self.gap_field
        if gap >= len(records[0]):
            return VarintCodec.encode_block(self, records)
        out = bytearray()
        emit = out.append
        prev_gap: Optional[int] = None
        for record in records:
            for index, value in enumerate(record):
                if index == gap and prev_gap is not None:
                    value -= prev_gap
                zz = (value << 1) if value >= 0 else ((-value << 1) - 1)
                while zz >= 0x80:
                    emit((zz & 0x7F) | 0x80)
                    zz >>= 7
                emit(zz)
            prev_gap = record[gap]
        return bytes(out)

    def decode_block(self, data: bytes, num_fields: int) -> List[Record]:
        gap = self.gap_field
        if gap >= num_fields:
            return VarintCodec.decode_block(self, data, num_fields)
        records: List[Record] = []
        append = records.append
        pos = 0
        end = len(data)
        prev_gap: Optional[int] = None
        while pos < end:
            fields = []
            for _ in range(num_fields):
                value = 0
                shift = 0
                while True:
                    try:
                        byte = data[pos]
                    except IndexError:
                        raise ValueError("truncated varint") from None
                    pos += 1
                    value |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                fields.append(
                    (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)
                )
            if prev_gap is not None:
                fields[gap] += prev_gap
            prev_gap = fields[gap]
            append(tuple(fields))
        return records


CODECS = {
    FixedCodec.name: FixedCodec,
    VarintCodec.name: VarintCodec,
    GapVarintCodec.name: GapVarintCodec,
}
"""Codec constructors by config name."""


def resolve_codec(
    codec: Union[None, str, Codec],
    record_size: int,
    sort_field: Optional[int] = 0,
    device: Optional[BlockDevice] = None,
) -> Codec:
    """Resolve a codec argument to a concrete :class:`Codec` instance.

    Args:
        codec: an instance (returned as-is), a name from :data:`CODECS`,
            or ``None`` — then the device's ``default_codec`` applies, and
            :data:`DEFAULT_CODEC` after that.
        record_size: the stream's logical fixed width.
        sort_field: the field index the stream is sorted by, or ``None``
            for unordered streams — ``"gap-varint"`` then degrades to
            plain ``"varint"`` (gaps need an ordered field to be small).
        device: consulted for its ``default_codec``.
    """
    if isinstance(codec, Codec):
        return codec
    name = codec
    if name is None and device is not None:
        name = device.default_codec
    if name is None:
        name = DEFAULT_CODEC
    if name not in CODECS:
        raise ValueError(
            f"unknown codec {name!r}; choose from {sorted(CODECS)}"
        )
    if name == GapVarintCodec.name:
        if sort_field is None:
            return VarintCodec(record_size)
        return GapVarintCodec(record_size, gap_field=sort_field)
    return CODECS[name](record_size)


# -- compressed record files -------------------------------------------------


class CompressedRecordFile:
    """A codec-compressed record file with the :class:`ExternalFile` surface.

    Records are stored as Python tuples (payloads are *accounted*, not
    serialized — see :mod:`repro.io.varfile`); each record is charged its
    codec-encoded size, with gap chains restarting at block boundaries so
    blocks stay independently decodable.

    Args:
        device: the simulated disk.
        name: file name on the device.
        record_size: the logical fixed width (for ratio reporting).
        codec: the resolved :class:`Codec`.
        overwrite: replace an existing file of the same name.
    """

    def __init__(
        self,
        device: BlockDevice,
        name: str,
        record_size: int,
        codec: Codec,
        overwrite: bool = False,
    ) -> None:
        self.device = device
        self.codec = codec
        self._record_size = record_size
        self._var = VarRecordFile(device, name, overwrite=overwrite)
        self._prev: Optional[Record] = None
        self._closed = False

    # -- constructors ------------------------------------------------------

    @classmethod
    def create(
        cls,
        device: BlockDevice,
        name: str,
        record_size: int,
        codec: Codec,
        overwrite: bool = False,
    ) -> "CompressedRecordFile":
        """Create a new empty compressed file (mirrors ``ExternalFile.create``)."""
        return cls(device, name, record_size, codec, overwrite=overwrite)

    @classmethod
    def open(
        cls,
        device: BlockDevice,
        name: str,
        record_size: int,
        codec: Codec,
    ) -> "CompressedRecordFile":
        """Reattach to an existing compressed file, read-only (mirrors
        ``ExternalFile.open``; checkpoint resume reopens intermediates this
        way).  ``record_size`` and ``codec`` must match what the file was
        written with — the journal records both."""
        cf = cls.__new__(cls)
        cf.device = device
        cf.codec = codec
        cf._record_size = record_size
        cf._var = VarRecordFile.open(device, name)
        cf._prev = None
        cf._closed = True
        return cf

    # -- metadata ----------------------------------------------------------

    @property
    def name(self) -> str:
        """The file's name on the device."""
        return self._var.name

    @property
    def record_size(self) -> int:
        """The *logical* record width (the fixed-width equivalent)."""
        return self._record_size

    @property
    def num_records(self) -> int:
        """Number of records written (including any still buffered)."""
        return self._var.num_records

    @property
    def num_blocks(self) -> int:
        """Blocks on disk (excludes the unflushed tail buffer)."""
        return self._var.num_blocks

    @property
    def nbytes(self) -> int:
        """Logical payload size (records * fixed-width equivalent)."""
        return self.num_records * self._record_size

    @property
    def stored_bytes(self) -> int:
        """Accounted bytes after compression."""
        return self._var.payload_bytes

    @property
    def compression_ratio(self) -> float:
        """``logical / stored`` (higher is better; 1.0 when empty)."""
        return self.nbytes / self.stored_bytes if self.stored_bytes else 1.0

    def __len__(self) -> int:
        return self.num_records

    # -- writing -----------------------------------------------------------

    def append(self, record: Record) -> None:
        """Append one record through the codec-aware write buffer."""
        if self._closed:
            raise StorageError(f"file {self.name!r} is closed for writing")
        nbytes = self.codec.encoded_size(record, self._prev)
        if self._var.tail_bytes + nbytes > self.device.block_size:
            # The tail block closes before this record lands, so it opens
            # the next block and its gap chain restarts.  A block-start
            # encoding is never smaller than a gap encoding, so the
            # VarRecordFile flushes on exactly this append.
            nbytes = self.codec.encoded_size(record, None)
        self._var.append(record, nbytes)
        self._prev = record

    def extend(self, records: Iterable[Record]) -> None:
        """Append many records through the codec-aware write buffer.

        The batch path (default, see :func:`batch_enabled`) computes the
        codec sizes for a whole chunk at once, replays the scalar writer's
        greedy block walk over the size array, and hands the chunk to the
        :class:`~repro.io.varfile.VarRecordFile` as pre-cut block slices —
        the resulting blocks, accounted bytes, and ledger charges are
        byte-identical to per-record :meth:`append` calls.
        """
        if self._closed:
            raise StorageError(f"file {self.name!r} is closed for writing")
        if not _batch_enabled:
            for record in records:
                self.append(record)
            return
        if isinstance(records, (list, tuple)):
            if len(records) <= BATCH_CHUNK:
                if records:
                    self._extend_chunk(records)
                return
            for start in range(0, len(records), BATCH_CHUNK):
                self._extend_chunk(records[start : start + BATCH_CHUNK])
            return
        iterator = iter(records)
        while True:
            chunk = list(islice(iterator, BATCH_CHUNK))
            if not chunk:
                return
            self._extend_chunk(chunk)

    def _extend_chunk(self, chunk: Sequence[Record]) -> None:
        """Batch-append one chunk: the scalar greedy walk over precomputed
        chain sizes.  ``sizes[i]`` starts as the gap-chain size against the
        previous record; exactly when the scalar path would close the tail
        block (``tail + size > B``) it is recomputed as a block-start size
        and the cut recorded — block-start encodings are never smaller
        than chain encodings, so the walk cuts where the scalar one does.

        Between cuts nothing inspects individual records, so the walk
        advances cut-to-cut: a C-level prefix sum plus a bisect finds each
        overflow index, and only those indices are touched from Python.
        Non-positive sizes (impossible for the built-in codecs, and what
        the scalar path rejects record by record) break the prefix sum's
        monotonicity, so that case keeps the per-record reference walk.
        """
        codec = self.codec
        block_size = self.device.block_size
        sizes = codec.encoded_sizes(chunk, self._prev)
        if min(sizes) > 0:
            cum = list(accumulate(sizes))
            adj = 0  # total drift the cut reprices applied to ``sizes``
            prev_cum = 0  # true cumulative bytes before the current segment
            start = 0
            tail = self._var.tail_bytes
            cuts: List[int] = []
            n = len(sizes)
            while True:
                index = bisect_right(
                    cum, block_size - tail + prev_cum - adj, start
                )
                if index >= n:
                    break
                fill = tail if index == start else (
                    tail + cum[index - 1] + adj - prev_cum
                )
                nbytes = codec.encoded_size(chunk[index], None)
                if nbytes != sizes[index]:
                    adj += nbytes - sizes[index]
                    sizes[index] = nbytes
                if nbytes <= 0 or nbytes > block_size:
                    # Commit the valid prefix, then fail exactly like the
                    # scalar path would on this record.
                    self._var.append_batch(chunk[:index], sizes[:index], cuts)
                    if index:
                        self._prev = chunk[index - 1]
                    if nbytes <= 0:
                        raise ValueError("record size must be positive")
                    raise StorageError(
                        f"record of {nbytes} bytes exceeds the block size "
                        f"{block_size}"
                    )
                if fill + nbytes > block_size:
                    cuts.append(index)
                    tail = nbytes
                else:
                    tail = fill + nbytes
                prev_cum = cum[index] + adj
                start = index + 1
            self._var.append_batch(chunk, sizes, cuts)
            self._prev = chunk[-1]
            return
        tail = self._var.tail_bytes
        cuts = []
        for index, nbytes in enumerate(sizes):
            if tail + nbytes > block_size:
                # The scalar writer re-prices the record as a block start
                # here.  Usually that closes the tail block too — but with
                # zigzag gap deltas on unsorted input the start encoding
                # can be *smaller* than the chain encoding, in which case
                # the record still fits and no cut happens; the flush test
                # below therefore repeats with the re-priced size, exactly
                # like VarRecordFile.append does.
                nbytes = codec.encoded_size(chunk[index], None)
                sizes[index] = nbytes
            if nbytes <= 0 or nbytes > block_size:
                # Commit the valid prefix, then fail exactly like the
                # scalar path would on this record.
                self._var.append_batch(chunk[:index], sizes[:index], cuts)
                if index:
                    self._prev = chunk[index - 1]
                if nbytes <= 0:
                    raise ValueError("record size must be positive")
                raise StorageError(
                    f"record of {nbytes} bytes exceeds the block size "
                    f"{block_size}"
                )
            if tail + nbytes > block_size:
                cuts.append(index)
                tail = 0
            tail += nbytes
        self._var.append_batch(chunk, sizes, cuts)
        self._prev = chunk[-1]

    def close(self) -> None:
        """Flush the tail block and report the stream's byte footprint to
        the ledger; the file becomes read-only."""
        if self._closed:
            return
        self._var.close()
        self._closed = True
        self.device.stats.record_payload_write(
            self.num_records, self.nbytes, self.stored_bytes, self._record_size
        )

    # -- reading -----------------------------------------------------------

    def scan(self) -> Iterator[Record]:
        """Stream records front to back with sequential block reads."""
        if not self._closed:
            raise StorageError(f"close {self.name!r} before scanning it")
        return self._var.scan()  # type: ignore[return-value]

    def scan_blocks(self) -> Iterator[Sequence[Tuple[Record]]]:
        """Stream whole blocks sequentially (symmetric with
        :meth:`ExternalFile.scan_blocks`; entries are ``(record,)`` slots)."""
        if not self._closed:
            raise StorageError(f"close {self.name!r} before scanning it")
        return self._var.scan_blocks()

    def scan_block_range(
        self, start: int, stop: Optional[int] = None
    ) -> Iterator[Sequence[Tuple[Record]]]:
        """Stream blocks ``start .. stop`` sequentially (``None``: to EOF) —
        the shard primitive mirroring :meth:`ExternalFile.scan_block_range`."""
        if not self._closed:
            raise StorageError(f"close {self.name!r} before scanning it")
        return self._var.scan_block_range(start, stop)

    def scan_range(self, start: int, stop: Optional[int] = None) -> Iterator[Record]:
        """Stream the records of blocks ``start .. stop`` sequentially."""
        if not self._closed:
            raise StorageError(f"close {self.name!r} before scanning it")
        return self._var.scan_range(start, stop)  # type: ignore[return-value]

    def read_block_random(self, index: int) -> Sequence[Record]:
        """Compressed intermediates are scan-only by design."""
        raise StorageError(
            f"compressed file {self.name!r} supports sequential scans only"
        )

    # -- management --------------------------------------------------------

    def rename(self, new_name: str, overwrite: bool = True) -> None:
        """Rename the file on the device (metadata only)."""
        self._var.rename(new_name, overwrite=overwrite)

    def delete(self) -> None:
        """Remove the file from the device."""
        self._var.delete()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressedRecordFile({self.name!r}, codec={self.codec.name!r}, "
            f"records={self.num_records}, blocks={self.num_blocks})"
        )


RecordStore = Union[ExternalFile, CompressedRecordFile]
"""Either record-file kind; operators consume both through one interface."""


def create_record_file(
    device: BlockDevice,
    name: str,
    record_size: int,
    codec: Union[None, str, Codec] = None,
    sort_field: Optional[int] = 0,
    overwrite: bool = False,
) -> RecordStore:
    """Create a record file of the kind the codec in effect calls for.

    ``"fixed"`` yields a plain :class:`ExternalFile` (byte-identical to the
    uncompressed pipeline); anything else yields a
    :class:`CompressedRecordFile`.  ``sort_field`` names the field the
    stream will be ordered by (``None`` for unordered streams).
    """
    resolved = resolve_codec(codec, record_size, sort_field, device=device)
    if isinstance(resolved, FixedCodec):
        return ExternalFile.create(device, name, record_size, overwrite=overwrite)
    return CompressedRecordFile(device, name, record_size, resolved, overwrite=overwrite)


def record_file_from_records(
    device: BlockDevice,
    name: str,
    records: Iterable[Record],
    record_size: int,
    codec: Union[None, str, Codec] = None,
    sort_field: Optional[int] = 0,
    overwrite: bool = False,
) -> RecordStore:
    """Create, fill, and close a record file (mirrors
    :meth:`ExternalFile.from_records` for either file kind)."""
    out = create_record_file(
        device, name, record_size, codec=codec, sort_field=sort_field, overwrite=overwrite
    )
    out.extend(records)
    out.close()
    return out
