"""Sharded multi-channel parallelism: striped devices, worker pools, and
the makespan metric.

The paper's model charges every block I/O to one global ledger, which
measures *work*.  A disk array (or SSD with independent channels) overlaps
transfers, so the wall-clock-relevant quantity is the *critical path*: the
busiest channel's share of each phase.  This module adds that second axis
without disturbing the first:

* :class:`StripedDevice` — a :class:`~repro.io.blocks.BlockDevice` that
  stripes every file's blocks across ``channels`` independent channels
  (RAID-0 style, ``(file.uid + block_index) % K``) and keeps one
  :class:`~repro.io.stats.IOStats` ledger per channel *in addition to* the
  unchanged global ledger.  Every charge goes to both, so totals, phase
  attribution, budgets, and crash ordinals are identical to the plain
  device — striping only *partitions* the ledger.

* :class:`MakespanMeter` — derives the critical-path I/O count from the
  per-channel ledgers: for each top-level phase, the busiest channel's
  delta; summed over phases (plus the busiest channel's unattributed
  residual).  With one channel the makespan equals the total exactly, so
  ``K=1`` reproduces today's numbers.

* :class:`WorkerPool` — a tiny executor abstraction (``serial`` or
  ``threads``) that partitionable operators use to run shards.  The
  *serial* backend executes thunks in submission order on the calling
  thread, so ledgers and fault-injection ordinals stay bit-for-bit
  deterministic; the *threads* backend overlaps shards and relies on the
  ledger's internal lock (totals are order-independent sums).  Operators
  are factored so the records and charges they produce are identical
  under either backend — parallelism here is task-level, never
  record-level, which is what keeps the K=1 invariant exact.

Makespan is a property of the striping geometry, not of the executor:
the same run measured on a ``StripedDevice`` reports the same makespan
whether its shards ran on threads or serially.  The scaling benchmark
exploits this — it runs the deterministic serial backend and reports the
modeled critical path.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.exceptions import StorageError, WorkerCrashError
from repro.io.blocks import BlockDevice, DiskFile
from repro.io.parity import ParityStore
from repro.io.stats import IOBudget, IOSnapshot, IOStats, REPAIR_PHASE

__all__ = [
    "WorkerPool",
    "StripedDevice",
    "MakespanMeter",
    "EXECUTOR_BACKENDS",
    "PROCESS_TASK_MIN",
    "processes_available",
    "set_processes_available",
    "shard_ranges",
]

T = TypeVar("T")

EXECUTOR_BACKENDS = ("serial", "threads", "processes")
"""Recognized :class:`WorkerPool` backends.  ``serial`` is the default
everywhere: it keeps crash ordinals and hypothesis traces deterministic.
``threads`` is opt-in for callers that want real overlap; ``processes``
additionally farms *picklable pure-CPU kernels* (see
:meth:`WorkerPool.run_pure`) to worker processes for real multicore
wall-clock."""

PROCESS_TASK_MIN = 4096
"""Smallest task (in records) worth shipping across the process boundary.
Below this, pickling dominates the kernel — the granularity-control idea
of Wang et al.'s parallel-SCC work applied to offload decisions.  Callers
check it before invoking :meth:`WorkerPool.run_pure`."""

_processes_override: Optional[bool] = None


def set_processes_available(value: Optional[bool]) -> Optional[bool]:
    """Test hook: force :func:`processes_available` to ``value`` (``None``
    restores platform detection).  Returns the previous override."""
    global _processes_override
    previous, _processes_override = _processes_override, value
    return previous


def processes_available() -> bool:
    """Whether this platform can fork/spawn worker processes.

    ``multiprocessing.synchronize`` imports only where ``sem_open`` works
    (it fails on some sandboxed/embedded platforms), and a start method
    must exist — both are prerequisites of ``ProcessPoolExecutor``.
    """
    if _processes_override is not None:
        return _processes_override
    try:
        import multiprocessing
        import multiprocessing.synchronize  # noqa: F401  (needs a working sem_open)
    except (ImportError, OSError):
        return False
    return bool(multiprocessing.get_all_start_methods())


class WorkerPool:
    """A fixed-width pool of workers behind a two-backend facade.

    Args:
        workers: shard width ``K``; partitionable operators split their
            input into up to ``K`` shards.
        backend: ``"serial"`` (run thunks in order on the calling thread),
            ``"threads"`` (a :class:`ThreadPoolExecutor` of ``K``
            threads), or ``"processes"``.  Generic thunks close over the
            simulated device and cannot cross a process boundary, so the
            processes backend runs them on threads exactly like
            ``"threads"``; only the picklable pure-CPU kernels submitted
            through :meth:`run_pure` execute in worker processes.

    All backends present the same barrier semantics: :meth:`run` returns
    results in submission order and re-raises the first exception.
    """

    def __init__(self, workers: int = 1, backend: str = "serial") -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor backend {backend!r}; choose from {EXECUTOR_BACKENDS}"
            )
        self.workers = workers
        self.backend = backend
        self._executor: Optional[ThreadPoolExecutor] = None
        self._process_executor = None  # lazy ProcessPoolExecutor
        self._process_broken = False
        self._threads_broken = False
        self._lock = threading.Lock()
        # Back-reference to the device this pool is attached to (set by
        # BlockDevice.attach_workers).  Through it the supervisor reaches
        # the fault schedule (simulated worker faults), the fault policy
        # (per-task deadline), and the health ledger.  None for pools used
        # standalone — every access is guarded.
        self._device: Optional[BlockDevice] = None
        # Nested submissions (a parallel sort inside a parallel operator)
        # run inline on the worker thread: with all K threads occupied by
        # outer tasks, queued inner tasks would never start and the outer
        # barrier would deadlock waiting on them.
        self._in_task = threading.local()

    def _threads(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            return self._executor

    def _mark_process_fallback(self, reason: str) -> None:
        if not self._process_broken:
            self._process_broken = True
            self._record_degradation(f"executor degraded processes -> threads: {reason}")
            warnings.warn(
                f"processes executor unavailable ({reason}); running tasks "
                "inline instead — results are identical, only wall-clock "
                "overlap is lost",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- supervision -------------------------------------------------------

    def _health(self):
        device = self._device
        return device.stats.health if device is not None else None

    def _record_degradation(self, message: str) -> None:
        health = self._health()
        if health is not None:
            health.record_event(message)

    def _record_redispatch(self, exc: Exception) -> None:
        health = self._health()
        if health is not None:
            health.redispatches += 1
            health.record_event(f"re-dispatched task after: {exc}")

    def _task_timeout(self) -> Optional[float]:
        device = self._device
        policy = getattr(device, "fault_policy", None) if device is not None else None
        return policy.task_timeout if policy is not None else None

    def _guard(self, thunk: Callable[[], T]) -> Callable[[], T]:
        """Wrap a thunk so scheduled worker faults fire at dispatch.

        The fault fires *before* the task performs any I/O, so a replayed
        task charges exactly what the original would have — re-dispatch is
        visible in the health ledger, never in the I/O ledger.
        """
        device = self._device
        schedule = getattr(device, "fault_schedule", None) if device is not None else None
        if schedule is None:
            return thunk

        def call() -> T:
            spec = schedule.on_task(device)
            if spec is not None:
                detail = (
                    "simulated crash" if spec.kind == "worker-die"
                    else "per-task deadline expired"
                )
                raise WorkerCrashError(spec.kind, f"{detail} (task #{schedule.task_ordinal})")
            return thunk()

        return call

    def _call_supervised(self, thunk: Callable[[], T]) -> T:
        """Run one thunk inline, re-dispatching it once if a scheduled
        worker fault kills the first dispatch (tasks are pure)."""
        try:
            return self._guard(thunk)()
        except WorkerCrashError as exc:
            self._record_redispatch(exc)
            return thunk()

    def _processes(self):
        """The lazy process executor, or ``None`` after a graceful
        fallback (platform can't fork/spawn, or spawning failed)."""
        with self._lock:
            if self._process_broken:
                return None
            if self._process_executor is None:
                if not processes_available():
                    self._mark_process_fallback("platform cannot fork/spawn")
                    return None
                try:
                    from concurrent.futures import ProcessPoolExecutor

                    self._process_executor = ProcessPoolExecutor(
                        max_workers=self.workers
                    )
                except (ImportError, OSError, PermissionError, ValueError) as exc:
                    self._mark_process_fallback(str(exc))
                    return None
            return self._process_executor

    def run_pure(
        self, fn: Callable[..., T], tasks: Sequence[Tuple]
    ) -> List[T]:
        """Run picklable pure-CPU tasks ``fn(*args)``; results in
        submission order.

        Under the ``processes`` backend the tasks execute in worker
        processes (real multicore, not just overlap); every other backend
        — and any failure to spawn workers or pickle a task — runs them
        inline.  ``fn`` must be a module-level function of picklable
        arguments with no side effects: the fallback may re-execute tasks,
        and nothing it touches crosses back except the return value.
        """
        tasks = list(tasks)
        if (
            self.backend != "processes"
            or self.workers == 1
            or len(tasks) == 0
            or self._process_broken
        ):
            return [fn(*args) for args in tasks]
        executor = self._processes()
        if executor is None:
            return [fn(*args) for args in tasks]
        try:
            futures = [executor.submit(fn, *args) for args in tasks]
            return [future.result() for future in futures]
        except BrokenProcessPool as exc:
            # A worker process died; the pool is unusable.  Tasks are
            # pure, so replaying the whole batch inline is safe.
            self._mark_process_fallback(f"worker process died: {exc}")
            self._record_redispatch(WorkerCrashError("worker-die", str(exc)))
            return [fn(*args) for args in tasks]
        except Exception as exc:  # pickling errors, spawn failures, ...
            self._mark_process_fallback(f"{type(exc).__name__}: {exc}")
            return [fn(*args) for args in tasks]

    def _inline(self) -> bool:
        return (
            self.backend == "serial"
            or self.workers == 1
            or getattr(self._in_task, "active", False)
        )

    def _wrap(self, thunk: Callable[[], T]) -> Callable[[], T]:
        def call() -> T:
            self._in_task.active = True
            try:
                return thunk()
            finally:
                self._in_task.active = False

        return call

    def run(self, thunks: Sequence[Callable[[], T]]) -> List[T]:
        """Execute all ``thunks``; barrier; results in submission order.

        Supervised: a task killed by a scheduled worker fault, a worker
        whose future times out past the policy's per-task deadline, or a
        thread backend that cannot accept submissions is detected here and
        the affected task re-dispatched inline (tasks are pure, so replay
        is safe); the re-dispatch and any executor degradation are
        recorded in the device's health ledger.
        """
        thunks = list(thunks)
        if self._inline() or len(thunks) <= 1:
            return [self._call_supervised(thunk) for thunk in thunks]
        try:
            futures = [
                self._threads().submit(self._wrap(self._guard(thunk)))
                for thunk in thunks
            ]
        except RuntimeError as exc:  # executor shut down mid-abort
            self._record_degradation(f"executor degraded threads -> serial: {exc}")
            return [self._call_supervised(thunk) for thunk in thunks]
        timeout = self._task_timeout()
        results: List[T] = []
        for thunk, future in zip(thunks, futures):
            try:
                results.append(future.result(timeout=timeout))
            except WorkerCrashError as exc:
                self._record_redispatch(exc)
                results.append(self._wrap(thunk)())
            except FutureTimeoutError:
                exc = WorkerCrashError(
                    "worker-hang", f"no result within {timeout}s deadline"
                )
                self._record_redispatch(exc)
                results.append(self._wrap(thunk)())
        return results

    def map(self, fn: Callable[[T], object], items: Iterable[T]) -> List[object]:
        """``run`` over one function applied to each item."""
        return self.run([(lambda item=item: fn(item)) for item in items])

    def run_windowed(
        self, thunks: Iterable[Callable[[], T]], window: Optional[int] = None
    ) -> Iterator[T]:
        """Execute a (possibly long) stream of thunks with at most
        ``window`` in flight, yielding results in submission order.

        Classic run formation uses this to overlap writing run *i* with
        buffering run *i+1* without holding every run in memory.
        """
        limit = max(1, window if window is not None else self.workers)
        if self._inline():
            for thunk in thunks:
                yield self._call_supervised(thunk)
            return
        pending: List[Tuple[Callable[[], T], object]] = []
        executor = self._threads()
        timeout = self._task_timeout()
        for thunk in thunks:
            pending.append((thunk, executor.submit(self._wrap(self._guard(thunk)))))
            while len(pending) >= limit:
                yield self._drain_one(pending, timeout)
        while pending:
            yield self._drain_one(pending, timeout)

    def _drain_one(self, pending: List, timeout: Optional[float]) -> T:
        thunk, future = pending.pop(0)
        try:
            return future.result(timeout=timeout)
        except (WorkerCrashError, FutureTimeoutError) as exc:
            self._record_redispatch(exc)
            return self._wrap(thunk)()

    def close(self) -> None:
        """Shut the thread and process backends down (no-op for serial).

        Safe to call twice, and exception-safe: the executors are detached
        under the lock first, and the process pool is shut down in a
        ``finally`` so a ``KeyboardInterrupt`` delivered during the thread
        pool's shutdown cannot leak worker processes.  The pool stays
        usable — the next submission lazily recreates its executors.
        """
        with self._lock:
            executor, self._executor = self._executor, None
            procs, self._process_executor = self._process_executor, None
        try:
            if executor is not None:
                executor.shutdown(wait=True)
        finally:
            if procs is not None:
                procs.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerPool(workers={self.workers}, backend={self.backend!r})"


def shard_ranges(num_blocks: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, num_blocks)`` into up to ``shards`` contiguous
    ``(start, stop)`` ranges of near-equal size (empty list when the file
    has no blocks).  Scanning the ranges in order charges exactly what one
    whole-file scan charges, which is what makes block-range sharding safe
    for the ledger at any shard count."""
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    if num_blocks <= 0:
        return []
    shards = min(shards, num_blocks)
    base, extra = divmod(num_blocks, shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


class StripedDevice(BlockDevice):
    """A block device striped over ``channels`` independent I/O channels.

    Block ``i`` of a file lives on channel ``(file.uid + i) % K`` — the
    uid offset rotates the starting channel per file so small files do not
    all hammer channel 0.  Each channel owns an :class:`IOStats` ledger
    that shares the main ledger's phase stack (so per-channel numbers are
    attributed to the same phase labels); every block charge lands on both
    the main ledger and the owning channel, making the channel ledgers an
    exact partition of the main one.

    Budgets and fault injection stay on the main ledger/device path, so a
    striped run aborts and crashes at exactly the same block ordinal as an
    unstriped one.

    With ``parity=True`` the device additionally keeps a RAID-5-style
    parity channel over the K data channels (see
    :mod:`repro.io.parity`): every data-block write is mirrored by one
    parity read-modify-write charged to the parity channel's own ledger
    (and counted in ``health.parity_writes``) — *not* to the main ledger,
    so enabling parity never moves a baseline I/O counter.  In exchange, a
    CRC-failed block or a block on a downed channel is *read-repaired*:
    reconstructed from the stripe's survivors plus parity, with the
    reconstruction traffic charged to the dedicated ``repair`` label and
    the makespan meter extended over the parity channel.
    """

    def __init__(
        self,
        block_size: int = 4096,
        stats: Optional[IOStats] = None,
        budget: Optional[IOBudget] = None,
        channels: int = 1,
        parity: bool = False,
    ) -> None:
        super().__init__(block_size=block_size, stats=stats, budget=budget)
        if channels < 1:
            raise StorageError(f"need at least one channel, got {channels}")
        self.channels: List[IOStats] = []
        for _ in range(channels):
            channel = IOStats()
            # Same list object: attribution on the channel follows the
            # phases the orchestrator pushes on the main ledger.
            channel._phase_stack = self.stats._phase_stack
            self.channels.append(channel)
        self.parity_store: Optional[ParityStore] = None
        self.parity_stats: Optional[IOStats] = None
        if parity:
            self.parity_store = ParityStore(group_width=channels)
            self.parity_stats = IOStats()
            self.parity_stats._phase_stack = self.stats._phase_stack

    @property
    def num_channels(self) -> int:
        """Number of independent channels (the striping width ``K``)."""
        return len(self.channels)

    @property
    def has_parity(self) -> bool:
        """Whether the device keeps a parity channel (degraded mode)."""
        return self.parity_store is not None

    def _channel_index(self, f: DiskFile, index: int) -> int:
        return (f.uid + index) % len(self.channels)

    def _channel(self, f: DiskFile, index: int) -> IOStats:
        return self.channels[self._channel_index(f, index)]

    def _charge_read(self, f: DiskFile, index: int, sequential: bool) -> None:
        super()._charge_read(f, index, sequential)
        self._channel(f, index).record_read(sequential=sequential)

    def _charge_write(self, f: DiskFile, index: int, sequential: bool) -> None:
        super()._charge_write(f, index, sequential)
        self._channel(f, index).record_write(sequential=sequential)

    def _charge_fault(self, f: DiskFile, index: Optional[int], label: str,
                      is_read: bool, sequential: bool) -> None:
        super()._charge_fault(f, index, label, is_read, sequential)
        position = index if index is not None else len(f.blocks)
        self._channel(f, position).record_fault_io(label, is_read, sequential)

    def channel_totals(self) -> List[int]:
        """Total block I/Os per channel (sums to the main ledger's total;
        the parity channel, when present, is accounted separately)."""
        return [channel.total for channel in self.channels]

    # -- parity maintenance ------------------------------------------------

    def _append_impl(self, f: DiskFile, records: Sequence) -> None:
        index = len(f.blocks)
        super()._append_impl(f, records)
        if self.parity_store is not None:
            self._update_parity(f, index, None, f.blocks[index], sequential=True)

    def _overwrite_impl(self, f: DiskFile, index: int, records: Sequence,
                        sequential: bool) -> None:
        old = f.blocks[index] if self.parity_store is not None else None
        super()._overwrite_impl(f, index, records, sequential)
        if self.parity_store is not None:
            self._update_parity(f, index, old, f.blocks[index], sequential=sequential)

    def _update_parity(self, f: DiskFile, index: int, old, new,
                       sequential: bool) -> None:
        self.parity_store.update(f.uid, index, old, new)
        # One read-modify-write of the group's parity block, charged to
        # the parity channel only (the main ledger is the *data* cost
        # model and must not move when parity is switched on).
        self.parity_stats.record_write(sequential=sequential)
        self.stats.health.parity_writes += 1

    def delete(self, name: str) -> None:
        f = self._files.get(name)
        super().delete(name)
        if self.parity_store is not None and f is not None:
            self.parity_store.drop_file(f.uid)

    # -- degraded mode -----------------------------------------------------

    def _repair_block(self, f: DiskFile, index: int, rewrite: bool) -> bool:
        """Reconstruct ``f[index]`` from its stripe survivors + parity.

        Charges one random read per surviving stripe member and one parity
        read to the ``repair`` label; with ``rewrite=True`` (bit-rot — the
        stored block is damaged) the reconstruction is also written back
        in place, one more ``repair`` write.  With ``rewrite=False`` (a
        channel outage — the data is fine, the channel is not) the block
        is served degraded and left alone.  Returns False when the device
        has no parity; the caller then escalates.
        """
        if self.parity_store is None or index >= len(f.blocks):
            return False
        start, stop = self.parity_store.group_range(index)
        siblings = []
        for j in range(start, min(stop, len(f.blocks))):
            if j == index:
                continue
            siblings.append(f.blocks[j])
            self._charge_fault(f, j, REPAIR_PHASE, is_read=True, sequential=False)
        # The parity block read: main ledger under `repair`, parity channel
        # ledger for the makespan.
        self.stats.record_fault_io(REPAIR_PHASE, True, False)
        self.parity_stats.record_read(sequential=False)
        records = self.parity_store.reconstruct(f.uid, index, siblings)
        if records is None:
            return False
        self.stats.health.repairs += 1
        if rewrite:
            f.blocks[index] = tuple(records)
            f.block_checksums[index] = self._block_checksum(records)
            if self.pool is not None:
                self.pool.invalidate_block(f, index)
            self.stats.health.record_event(
                f"read-repaired block {index} of {f.name!r} from parity"
            )
            self._charge_fault(f, index, REPAIR_PHASE, is_read=False, sequential=False)
        return True


class MakespanMeter:
    """Measures critical-path block I/Os over a window of device activity.

    Start the meter, run the workload, then read :meth:`makespan`:

    * per *top-level phase* (labels pushed while the phase stack was
      empty — contraction, semi-scc, expansion, recovery, ...), the
      busiest channel's I/O delta is the phase's critical path, because
      phases are sequential barriers while channels overlap within one;
    * I/O outside any phase (input loading, the final result scan) is a
      per-channel residual; its busiest channel is one more critical path
      segment.

    ``makespan = sum(max-per-channel phase delta) + max residual``.  On an
    unstriped device (or one channel) every maximum is the only channel's
    delta and the makespan equals the total I/O delta exactly — the K=1
    identity the scaling tests pin.
    """

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self.stats = device.stats
        self._channels: Sequence[IOStats] = list(
            getattr(device, "channels", None) or [device.stats]
        )
        # The parity channel, when present, is one more independent
        # channel on the critical path: its read-modify-writes overlap the
        # data channels' transfers but can themselves become the phase
        # bottleneck (the classic RAID-5 write penalty).
        parity_stats = getattr(device, "parity_stats", None)
        if parity_stats is not None:
            self._channels.append(parity_stats)
        self._start_totals = [channel.total for channel in self._channels]
        self._start_by_phase: List[Dict[str, int]] = [
            {label: snap.total for label, snap in channel.by_phase.items()}
            for channel in self._channels
        ]

    def _phase_delta(self, channel_index: int, label: str) -> int:
        channel = self._channels[channel_index]
        start = self._start_by_phase[channel_index].get(label, 0)
        return channel.by_phase.get(label, IOSnapshot()).total - start

    def makespan(self) -> int:
        """Critical-path block I/Os since the meter was created."""
        labels = list(self.stats.top_level_phases)
        total = 0
        residuals = []
        for ci in range(len(self._channels)):
            channel_total = self._channels[ci].total - self._start_totals[ci]
            attributed = sum(self._phase_delta(ci, label) for label in labels)
            residuals.append(channel_total - attributed)
        for label in labels:
            total += max(
                self._phase_delta(ci, label) for ci in range(len(self._channels))
            )
        if residuals:
            total += max(0, max(residuals))
        return total

    def phase_makespans(self) -> Dict[str, int]:
        """Per-top-level-phase critical path (for reporting)."""
        return {
            label: max(
                self._phase_delta(ci, label) for ci in range(len(self._channels))
            )
            for label in self.stats.top_level_phases
        }

    def channel_snapshot(self) -> List[int]:
        """Per-channel I/O deltas since the meter started."""
        return [
            channel.total - start
            for channel, start in zip(self._channels, self._start_totals)
        ]
