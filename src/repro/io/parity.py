"""RAID-5-style XOR parity for the striped device.

A :class:`~repro.io.parallel.StripedDevice` built with ``parity=True``
keeps one extra *parity channel* next to its K data channels.  Blocks are
grouped into stripes of K consecutive block indexes — exactly one block
per data channel, since channel assignment is ``(uid + index) % K`` — and
the parity channel stores, per stripe, the XOR of the member blocks'
canonical encodings.  Losing any *single* member (a CRC-failed block, a
channel outage) is then recoverable: XOR the parity with the surviving
members and decode.

The canonical encoding is the same tagged int/tuple scheme the persistent
backend stores on disk, so parity works for fixed-width record blocks and
variable-record (nested tuple) blocks alike.  Encodings differ in length
across blocks; XOR operands are zero-padded to the longest, and decoding
reads a self-delimiting prefix, so the padding is inert.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import StorageError

__all__ = ["ParityStore", "encode_records", "decode_records", "xor_bytes"]

_FIELD = struct.Struct("<q")
_COUNT = struct.Struct("<I")
_TAG_INT = b"\x00"
_TAG_TUPLE = b"\x01"


def _encode_obj(obj: object, parts: List[bytes]) -> None:
    if isinstance(obj, tuple):
        parts.append(_TAG_TUPLE)
        parts.append(_COUNT.pack(len(obj)))
        for item in obj:
            _encode_obj(item, parts)
    elif isinstance(obj, int):
        parts.append(_TAG_INT)
        parts.append(_FIELD.pack(obj))
    else:
        raise StorageError(
            f"parity encoding covers nested int tuples, got {type(obj).__name__}"
        )


def _decode_obj(payload: bytes, offset: int) -> Tuple[object, int]:
    tag = payload[offset : offset + 1]
    offset += 1
    if tag == _TAG_TUPLE:
        (count,) = _COUNT.unpack_from(payload, offset)
        offset += _COUNT.size
        items = []
        for _ in range(count):
            item, offset = _decode_obj(payload, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _TAG_INT:
        (value,) = _FIELD.unpack_from(payload, offset)
        return value, offset + _FIELD.size
    raise StorageError(f"corrupt parity reconstruction (tag {tag!r})")


def encode_records(records: Sequence) -> bytes:
    """Canonical, self-delimiting byte encoding of one record block."""
    parts = [_COUNT.pack(len(records))]
    for record in records:
        _encode_obj(record, parts)
    return b"".join(parts)


def decode_records(data: bytes) -> Tuple:
    """Inverse of :func:`encode_records`; trailing zero padding is ignored
    (XOR reconstruction pads operands to the longest member)."""
    if len(data) < _COUNT.size:
        raise StorageError("parity reconstruction shorter than a block header")
    (count,) = _COUNT.unpack_from(data, 0)
    offset = _COUNT.size
    records = []
    for _ in range(count):
        record, offset = _decode_obj(data, offset)
        records.append(record)
    return tuple(records)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two byte strings, zero-padding the shorter one."""
    if len(a) < len(b):
        a, b = b, a
    out = bytearray(a)
    for i, byte in enumerate(b):
        out[i] ^= byte
    return bytes(out)


class ParityStore:
    """Per-stripe XOR parity over a striped device's files.

    Keyed by ``(file.uid, block_index // group_width)``: with
    ``group_width == K`` (the data channel count) each group's members sit
    on K distinct channels, so a single channel outage touches at most one
    member per group — the single-fault model RAID-5 covers.

    The store is maintained incrementally: every block write XORs
    ``old_encoding ^ new_encoding`` into the group's parity (an append
    contributes just ``new``), which is exactly the read-modify-write a
    real parity disk performs — and what the parity channel's ledger is
    charged for.
    """

    def __init__(self, group_width: int) -> None:
        if group_width < 1:
            raise StorageError(f"parity group width must be >= 1, got {group_width}")
        self.group_width = group_width
        self._parity: Dict[Tuple[int, int], bytes] = {}

    def _key(self, uid: int, index: int) -> Tuple[int, int]:
        return (uid, index // self.group_width)

    def group_range(self, index: int) -> Tuple[int, int]:
        """The ``[start, stop)`` block-index range of ``index``'s stripe."""
        start = (index // self.group_width) * self.group_width
        return start, start + self.group_width

    def update(
        self,
        uid: int,
        index: int,
        old_records: Optional[Sequence],
        new_records: Sequence,
    ) -> None:
        """Fold one block write into its group's parity."""
        delta = encode_records(new_records)
        if old_records is not None:
            delta = xor_bytes(delta, encode_records(old_records))
        key = self._key(uid, index)
        self._parity[key] = xor_bytes(self._parity.get(key, b""), delta)

    def reconstruct(
        self, uid: int, index: int, siblings: Iterable[Sequence]
    ) -> Optional[Tuple]:
        """Rebuild block ``index`` from parity and its surviving stripe
        members; ``None`` when no parity was ever written for the group."""
        data = self._parity.get(self._key(uid, index))
        if data is None:
            return None
        for records in siblings:
            data = xor_bytes(data, encode_records(records))
        return decode_records(data)

    def drop_file(self, uid: int) -> None:
        """Forget all parity for a deleted file."""
        for key in [key for key in self._parity if key[0] == uid]:
            del self._parity[key]

    def __len__(self) -> int:
        return len(self._parity)
