"""Simulated block device.

The device stores named files as sequences of fixed-capacity blocks.  A block
nominally holds ``block_size`` bytes; a file created with ``record_size = r``
therefore packs ``block_size // r`` records per block.  Records themselves
are kept as Python tuples (serialization is *accounted*, not performed — the
quantity under study is the number of block I/Os, and packing bytes in pure
Python would only slow the simulation without changing any counter).

Every block read/write is reported to the device's :class:`IOStats` with its
access pattern; callers declare the pattern through the API they use
(``append_block``/``read_block(..., sequential=True)`` for scans,
``sequential=False`` for seeks), which keeps the classification deterministic
and independent of interleaving between files.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CorruptBlockError, StorageError
from repro.io.stats import IOBudget, IOStats

__all__ = ["BlockDevice", "DiskFile", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 4096
"""Default simulated block size in bytes (the paper uses 256 KB blocks on a
2008-era disk; 4 KB keeps the block count meaningful at simulation scale)."""

Record = Tuple[int, ...]


class DiskFile:
    """A named file on the simulated device: a list of record blocks.

    Not created directly — use :meth:`BlockDevice.create`.
    """

    # Monotonic ids: unlike ``id()``, a uid is never reused after a file is
    # garbage collected, so it is a safe cache/striping key (the buffer
    # pool and the striped device both key on it).
    _uids = itertools.count()

    def __init__(self, name: str, record_size: int, block_capacity: int) -> None:
        if block_capacity < 1:
            raise StorageError(
                f"record of {record_size} bytes does not fit in one block"
            )
        self.uid = next(DiskFile._uids)
        self.name = name
        self.record_size = record_size
        self.block_capacity = block_capacity
        self.blocks: List[Sequence[Record]] = []
        self.num_records = 0
        # CRC32 of each block's *intended* content, maintained on every
        # write; a torn write stores the checksum of what should have
        # landed, so verify_block can detect the damage.
        self.block_checksums: List[int] = []

    @property
    def num_blocks(self) -> int:
        """Number of blocks currently held by the file."""
        return len(self.blocks)


class BlockDevice:
    """A simulated disk: named record files plus an I/O ledger.

    Args:
        block_size: bytes per block; record capacity of each file is
            ``block_size // record_size``.
        stats: the :class:`IOStats` ledger to charge; a fresh one is created
            when omitted.
        budget: optional I/O budget installed on the ledger.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        stats: Optional[IOStats] = None,
        budget: Optional[IOBudget] = None,
    ) -> None:
        if block_size <= 0:
            raise StorageError(f"block size must be positive, got {block_size}")
        self.block_size = block_size
        self.stats = stats if stats is not None else IOStats()
        if budget is not None:
            self.stats.budget = budget
        self._files: Dict[str, DiskFile] = {}
        self._tmp_counter = 0
        self._tmp_lock = threading.Lock()
        self.pool = None  # optional SharedBufferPool (see attach_pool)
        self.injector = None  # optional FaultInjector (see attach_injector)
        self.worker_pool = None  # optional WorkerPool (see attach_workers)
        # Codec name applied when operators create intermediates without an
        # explicit codec argument; None falls through to the module default
        # in repro.io.codecs.  ExtSCC.run sets this from its config so one
        # knob switches the whole pipeline.
        self.default_codec: Optional[str] = None
        # The checkpoint journal (list of JSON-able entries) lives on the
        # device so it shares the data's fate: in RAM here, inside the
        # manifest on PersistentBlockDevice.  CheckpointManager owns the
        # format; the device only stores it.
        self.checkpoint_journal: List[dict] = []

    def attach_pool(self, pool) -> None:
        """Install a :class:`~repro.io.pool.SharedBufferPool` on the device.

        Scans and random reads of every file are then routed through the
        pool (readahead / optional caching); file deletions and in-place
        overwrites invalidate it.  Passing ``None`` detaches the pool.
        """
        self.pool = pool

    def attach_injector(self, injector) -> None:
        """Install a :class:`~repro.recovery.fault.FaultInjector`.

        Every subsequent block read/write first passes through the
        injector, which may raise
        :class:`~repro.exceptions.SimulatedCrash` (optionally leaving a
        torn block first).  Passing ``None`` detaches it.
        """
        self.injector = injector

    def attach_workers(self, worker_pool) -> None:
        """Install a :class:`~repro.io.parallel.WorkerPool` on the device.

        Partitionable operators (the external sort's merge passes, the
        degree co-scan, the two expansion augments) then run their shards
        through it.  Like ``default_codec``, this rides on the device so
        operator signatures stay unchanged.  Passing ``None`` detaches it.
        """
        self.worker_pool = worker_pool

    # -- file namespace ----------------------------------------------------

    def create(self, name: str, record_size: int, overwrite: bool = False) -> DiskFile:
        """Create an empty file of ``record_size``-byte records."""
        if name in self._files and not overwrite:
            raise StorageError(f"file {name!r} already exists")
        f = DiskFile(name, record_size, self.block_size // record_size)
        self._files[name] = f
        return f

    def open(self, name: str) -> DiskFile:
        """Look up an existing file by name."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        """Return True when ``name`` is a file on this device."""
        return name in self._files

    def delete(self, name: str) -> None:
        """Remove a file (its blocks are freed; deleting is not an I/O)."""
        if name not in self._files:
            raise StorageError(f"no such file: {name!r}")
        if self.pool is not None:
            self.pool.invalidate_file(self._files[name])
        del self._files[name]

    def rename(self, old: str, new: str, overwrite: bool = True) -> None:
        """Rename a file in place (metadata only, no I/O)."""
        f = self.open(old)
        if new in self._files:
            if not overwrite:
                raise StorageError(f"file {new!r} already exists")
            # The clobbered target's blocks may still sit in the buffer
            # pool; drop them, or a later lookup that collides on the dead
            # file's identity would be served stale content.
            if self.pool is not None and self._files[new] is not f:
                self.pool.invalidate_file(self._files[new])
        del self._files[old]
        f.name = new
        self._files[new] = f

    def temp_name(self, prefix: str = "tmp") -> str:
        """Return a fresh unused file name for intermediates."""
        with self._tmp_lock:
            while True:
                self._tmp_counter += 1
                name = f"{prefix}.{self._tmp_counter}"
                if name not in self._files:
                    return name

    def list_files(self) -> List[str]:
        """Names of all files on the device."""
        return sorted(self._files)

    # -- block I/O ---------------------------------------------------------

    def _charge_read(self, f: DiskFile, index: int, sequential: bool) -> None:
        """Charge one block read of ``f[index]`` to the ledger(s).

        The single routing point for read accounting: a striped device
        overrides it to additionally charge the owning channel's ledger.
        """
        self.stats.record_read(sequential=sequential)

    def _charge_write(self, f: DiskFile, index: int, sequential: bool) -> None:
        """Charge one block write of ``f[index]`` (see :meth:`_charge_read`)."""
        self.stats.record_write(sequential=sequential)

    def _assert_live(self, f: DiskFile) -> None:
        """Reject I/O on files that were deleted from the namespace."""
        if self._files.get(f.name) is not f:
            raise StorageError(f"file {f.name!r} is not open on this device")

    @staticmethod
    def _block_checksum(records: Sequence[Record]) -> int:
        """Content checksum of a block (the in-memory backend has no byte
        serialization to hash, so the tuple hash stands in — content-based
        and, for the integer records every pipeline file holds, stable
        across processes; only str/bytes hashing is salted).  Masked to 32
        bits so :meth:`file_checksum` can pack it."""
        return hash(tuple(records)) & 0xFFFFFFFF

    def append_block(self, f: DiskFile, records: Sequence[Record]) -> None:
        """Append one block of records to ``f`` (a sequential write)."""
        self._assert_live(f)
        if len(records) > f.block_capacity:
            raise StorageError(
                f"{len(records)} records exceed block capacity {f.block_capacity}"
            )
        if self.injector is not None:
            self.injector.on_io(self, f, is_write=True, records=records)
        f.blocks.append(tuple(records))
        f.num_records += len(records)
        f.block_checksums.append(self._block_checksum(records))
        self._charge_write(f, len(f.blocks) - 1, sequential=True)

    def read_block(self, f: DiskFile, index: int, sequential: bool) -> Sequence[Record]:
        """Read block ``index`` of ``f``, charging one read of the given pattern."""
        self._assert_live(f)
        try:
            block = f.blocks[index]
        except IndexError:
            raise StorageError(
                f"block {index} out of range for {f.name!r} ({f.num_blocks} blocks)"
            ) from None
        if self.injector is not None:
            self.injector.on_io(self, f, is_write=False)
        self._charge_read(f, index, sequential=sequential)
        return block

    def overwrite_block(self, f: DiskFile, index: int, records: Sequence[Record], sequential: bool = False) -> None:
        """Overwrite block ``index`` in place (a random write by default).

        Only the DFS baseline's mutable structures (external stack, buffered
        repository tree) use in-place writes; the Ext-SCC pipeline never
        does.
        """
        self._assert_live(f)
        if len(records) > f.block_capacity:
            raise StorageError(
                f"{len(records)} records exceed block capacity {f.block_capacity}"
            )
        if not 0 <= index < len(f.blocks):
            raise StorageError(f"block {index} out of range for {f.name!r}")
        if self.injector is not None:
            self.injector.on_io(self, f, is_write=True, records=records, index=index)
        old_len = len(f.blocks[index])
        f.blocks[index] = tuple(records)
        f.num_records += len(records) - old_len
        f.block_checksums[index] = self._block_checksum(records)
        if self.pool is not None:
            self.pool.invalidate_block(f, index)
        self._charge_write(f, index, sequential=sequential)

    # -- crash surface -----------------------------------------------------

    def _torn_write(self, f: DiskFile, records: Sequence[Record],
                    index: Optional[int] = None) -> None:
        """Leave a half-written block behind, as a mid-write power loss
        would: only the first half of the records land, while the recorded
        checksum is that of the *intended* content — so the block fails
        :meth:`verify_block`.  No I/O is charged (the machine died)."""
        torn = tuple(records)[: len(records) // 2]
        checksum = self._block_checksum(records)
        if index is None:
            f.blocks.append(torn)
            f.num_records += len(torn)
            f.block_checksums.append(checksum)
        else:
            f.num_records += len(torn) - len(f.blocks[index])
            f.blocks[index] = torn
            f.block_checksums[index] = checksum
            if self.pool is not None:
                self.pool.invalidate_block(f, index)

    def verify_block(self, f: DiskFile, index: int) -> Sequence[Record]:
        """Read block ``index`` and check it against its stored checksum.

        Charges one sequential read (recovery validation is a scan);
        raises :class:`~repro.exceptions.CorruptBlockError` on mismatch.
        """
        self._assert_live(f)
        if not 0 <= index < len(f.blocks):
            raise StorageError(f"block {index} out of range for {f.name!r}")
        block = f.blocks[index]
        self._charge_read(f, index, sequential=True)
        if self._block_checksum(block) != f.block_checksums[index]:
            raise CorruptBlockError(f.name, index)
        return block

    def file_checksum(self, f: DiskFile) -> Optional[int]:
        """Combined CRC32 over the file's per-block checksums, or ``None``
        when the per-block list is incomplete (a reopened legacy file) —
        callers then fall back to metadata-only validation."""
        if len(f.block_checksums) != f.num_blocks:
            return None
        crc = 0
        for checksum in f.block_checksums:
            crc = zlib.crc32(checksum.to_bytes(4, "big"), crc)
        return crc

    # -- reporting ---------------------------------------------------------

    def total_blocks(self) -> int:
        """Total number of blocks across all files (simulated disk usage)."""
        return sum(f.num_blocks for f in self._files.values())
