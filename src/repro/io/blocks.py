"""Simulated block device.

The device stores named files as sequences of fixed-capacity blocks.  A block
nominally holds ``block_size`` bytes; a file created with ``record_size = r``
therefore packs ``block_size // r`` records per block.  Records themselves
are kept as Python tuples (serialization is *accounted*, not performed — the
quantity under study is the number of block I/Os, and packing bytes in pure
Python would only slow the simulation without changing any counter).

Every block read/write is reported to the device's :class:`IOStats` with its
access pattern; callers declare the pattern through the API they use
(``append_block``/``read_block(..., sequential=True)`` for scans,
``sequential=False`` for seeks), which keeps the classification deterministic
and independent of interleaving between files.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import (
    ChannelOutageError,
    CorruptBlockError,
    RetryExhaustedError,
    StorageError,
    TransientIOError,
)
from repro.io.stats import IOBudget, IOStats, RETRY_PHASE

__all__ = ["BlockDevice", "DiskFile", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 4096
"""Default simulated block size in bytes (the paper uses 256 KB blocks on a
2008-era disk; 4 KB keeps the block count meaningful at simulation scale)."""

Record = Tuple[int, ...]


class DiskFile:
    """A named file on the simulated device: a list of record blocks.

    Not created directly — use :meth:`BlockDevice.create`.
    """

    # Monotonic ids: unlike ``id()``, a uid is never reused after a file is
    # garbage collected, so it is a safe cache/striping key (the buffer
    # pool and the striped device both key on it).
    _uids = itertools.count()

    def __init__(self, name: str, record_size: int, block_capacity: int) -> None:
        if block_capacity < 1:
            raise StorageError(
                f"record of {record_size} bytes does not fit in one block"
            )
        self.uid = next(DiskFile._uids)
        self.name = name
        self.record_size = record_size
        self.block_capacity = block_capacity
        self.blocks: List[Sequence[Record]] = []
        self.num_records = 0
        # CRC32 of each block's *intended* content, maintained on every
        # write; a torn write stores the checksum of what should have
        # landed, so verify_block can detect the damage.
        self.block_checksums: List[int] = []

    @property
    def num_blocks(self) -> int:
        """Number of blocks currently held by the file."""
        return len(self.blocks)


class BlockDevice:
    """A simulated disk: named record files plus an I/O ledger.

    Args:
        block_size: bytes per block; record capacity of each file is
            ``block_size // record_size``.
        stats: the :class:`IOStats` ledger to charge; a fresh one is created
            when omitted.
        budget: optional I/O budget installed on the ledger.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        stats: Optional[IOStats] = None,
        budget: Optional[IOBudget] = None,
    ) -> None:
        if block_size <= 0:
            raise StorageError(f"block size must be positive, got {block_size}")
        self.block_size = block_size
        self.stats = stats if stats is not None else IOStats()
        if budget is not None:
            self.stats.budget = budget
        self._files: Dict[str, DiskFile] = {}
        self._tmp_counter = 0
        self._tmp_lock = threading.Lock()
        self.pool = None  # optional SharedBufferPool (see attach_pool)
        self.injector = None  # optional FaultInjector (see attach_injector)
        self.worker_pool = None  # optional WorkerPool (see attach_workers)
        self.fault_schedule = None  # optional FaultSchedule (attach_schedule)
        self.fault_policy = None  # optional FaultPolicy (attach_policy)
        # True when any fault machinery is attached; the block-I/O fast
        # path branches on this single flag so a fault-free run pays one
        # attribute check per operation and nothing else.
        self._fault_active = False
        # In-memory blocks are only checksum-verified on read while a
        # schedule is attached (injected bit-rot must surface through the
        # CRC layer); the persistent backend verifies every read always.
        self._verify_reads = False
        # Codec name applied when operators create intermediates without an
        # explicit codec argument; None falls through to the module default
        # in repro.io.codecs.  ExtSCC.run sets this from its config so one
        # knob switches the whole pipeline.
        self.default_codec: Optional[str] = None
        # The checkpoint journal (list of JSON-able entries) lives on the
        # device so it shares the data's fate: in RAM here, inside the
        # manifest on PersistentBlockDevice.  CheckpointManager owns the
        # format; the device only stores it.
        self.checkpoint_journal: List[dict] = []

    def attach_pool(self, pool) -> None:
        """Install a :class:`~repro.io.pool.SharedBufferPool` on the device.

        Scans and random reads of every file are then routed through the
        pool (readahead / optional caching); file deletions and in-place
        overwrites invalidate it.  Passing ``None`` detaches the pool.
        """
        self.pool = pool

    def attach_injector(self, injector) -> None:
        """Install a :class:`~repro.recovery.fault.FaultInjector`.

        Every subsequent block read/write first passes through the
        injector, which may raise
        :class:`~repro.exceptions.SimulatedCrash` (optionally leaving a
        torn block first).  Passing ``None`` detaches it.
        """
        self.injector = injector
        self._refresh_fault_path()

    def attach_schedule(self, schedule) -> None:
        """Install a :class:`~repro.recovery.fault.FaultSchedule`.

        Every block-operation *attempt* is then first offered to the
        schedule, which may raise transient faults, declare channel
        outages, or damage a block's stored payload; the device's retry
        wrapper (governed by the attached :class:`FaultPolicy`, or the
        package defaults) absorbs what it can.  Passing ``None`` detaches.
        """
        self.fault_schedule = schedule
        self._verify_reads = schedule is not None
        self._refresh_fault_path()

    def attach_policy(self, policy) -> None:
        """Install a :class:`~repro.recovery.policy.FaultPolicy` governing
        retries/backoff for transient faults.  Passing ``None`` reverts to
        the package defaults (used only while a schedule or injector is
        attached — a policy alone also activates the guarded I/O path so
        real ``CorruptBlockError`` from a reopened store hits the same
        repair/escalation logic)."""
        self.fault_policy = policy
        self._refresh_fault_path()

    def _refresh_fault_path(self) -> None:
        self._fault_active = (
            self.injector is not None
            or self.fault_schedule is not None
            or self.fault_policy is not None
        )

    def attach_workers(self, worker_pool) -> None:
        """Install a :class:`~repro.io.parallel.WorkerPool` on the device.

        Partitionable operators (the external sort's merge passes, the
        degree co-scan, the two expansion augments) then run their shards
        through it.  Like ``default_codec``, this rides on the device so
        operator signatures stay unchanged.  Passing ``None`` detaches it.
        """
        self.worker_pool = worker_pool
        if worker_pool is not None:
            # Back-reference for the pool's supervisor: scheduled worker
            # faults, the per-task deadline, and the health ledger all
            # live on the device side.
            worker_pool._device = self

    # -- file namespace ----------------------------------------------------

    def create(self, name: str, record_size: int, overwrite: bool = False) -> DiskFile:
        """Create an empty file of ``record_size``-byte records."""
        if name in self._files and not overwrite:
            raise StorageError(f"file {name!r} already exists")
        f = DiskFile(name, record_size, self.block_size // record_size)
        self._files[name] = f
        return f

    def open(self, name: str) -> DiskFile:
        """Look up an existing file by name."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        """Return True when ``name`` is a file on this device."""
        return name in self._files

    def delete(self, name: str) -> None:
        """Remove a file (its blocks are freed; deleting is not an I/O)."""
        if name not in self._files:
            raise StorageError(f"no such file: {name!r}")
        if self.pool is not None:
            self.pool.invalidate_file(self._files[name])
        del self._files[name]

    def rename(self, old: str, new: str, overwrite: bool = True) -> None:
        """Rename a file in place (metadata only, no I/O)."""
        f = self.open(old)
        if new in self._files:
            if not overwrite:
                raise StorageError(f"file {new!r} already exists")
            # The clobbered target's blocks may still sit in the buffer
            # pool; drop them, or a later lookup that collides on the dead
            # file's identity would be served stale content.
            if self.pool is not None and self._files[new] is not f:
                self.pool.invalidate_file(self._files[new])
        del self._files[old]
        f.name = new
        self._files[new] = f

    def temp_name(self, prefix: str = "tmp") -> str:
        """Return a fresh unused file name for intermediates."""
        with self._tmp_lock:
            while True:
                self._tmp_counter += 1
                name = f"{prefix}.{self._tmp_counter}"
                if name not in self._files:
                    return name

    def list_files(self) -> List[str]:
        """Names of all files on the device."""
        return sorted(self._files)

    # -- block I/O ---------------------------------------------------------

    def _charge_read(self, f: DiskFile, index: int, sequential: bool) -> None:
        """Charge one block read of ``f[index]`` to the ledger(s).

        The single routing point for read accounting: a striped device
        overrides it to additionally charge the owning channel's ledger.
        """
        self.stats.record_read(sequential=sequential)

    def _charge_write(self, f: DiskFile, index: int, sequential: bool) -> None:
        """Charge one block write of ``f[index]`` (see :meth:`_charge_read`)."""
        self.stats.record_write(sequential=sequential)

    def _assert_live(self, f: DiskFile) -> None:
        """Reject I/O on files that were deleted from the namespace."""
        if self._files.get(f.name) is not f:
            raise StorageError(f"file {f.name!r} is not open on this device")

    @staticmethod
    def _block_checksum(records: Sequence[Record]) -> int:
        """Content checksum of a block (the in-memory backend has no byte
        serialization to hash, so the tuple hash stands in — content-based
        and, for the integer records every pipeline file holds, stable
        across processes; only str/bytes hashing is salted).  Masked to 32
        bits so :meth:`file_checksum` can pack it."""
        return hash(tuple(records)) & 0xFFFFFFFF

    def append_block(self, f: DiskFile, records: Sequence[Record]) -> None:
        """Append one block of records to ``f`` (a sequential write)."""
        self._assert_live(f)
        if len(records) > f.block_capacity:
            raise StorageError(
                f"{len(records)} records exceed block capacity {f.block_capacity}"
            )
        if self._fault_active:
            return self._run_io(
                lambda: self._append_impl(f, records),
                f, is_write=True, sequential=True, records=records,
            )
        self._append_impl(f, records)

    def _append_impl(self, f: DiskFile, records: Sequence[Record]) -> None:
        f.blocks.append(tuple(records))
        f.num_records += len(records)
        f.block_checksums.append(self._block_checksum(records))
        self._charge_write(f, len(f.blocks) - 1, sequential=True)

    def read_block(self, f: DiskFile, index: int, sequential: bool) -> Sequence[Record]:
        """Read block ``index`` of ``f``, charging one read of the given pattern."""
        self._assert_live(f)
        if not 0 <= index < len(f.blocks):
            raise StorageError(
                f"block {index} out of range for {f.name!r} ({f.num_blocks} blocks)"
            )
        if self._fault_active:
            return self._run_io(
                lambda: self._read_impl(f, index, sequential),
                f, is_write=False, sequential=sequential, index=index,
            )
        return self._read_impl(f, index, sequential)

    def _read_impl(self, f: DiskFile, index: int, sequential: bool) -> Sequence[Record]:
        block = f.blocks[index]
        if self._verify_reads and self._block_checksum(block) != f.block_checksums[index]:
            raise CorruptBlockError(f.name, index)
        self._charge_read(f, index, sequential=sequential)
        return block

    def overwrite_block(self, f: DiskFile, index: int, records: Sequence[Record], sequential: bool = False) -> None:
        """Overwrite block ``index`` in place (a random write by default).

        Only the DFS baseline's mutable structures (external stack, buffered
        repository tree) use in-place writes; the Ext-SCC pipeline never
        does.
        """
        self._assert_live(f)
        if len(records) > f.block_capacity:
            raise StorageError(
                f"{len(records)} records exceed block capacity {f.block_capacity}"
            )
        if not 0 <= index < len(f.blocks):
            raise StorageError(f"block {index} out of range for {f.name!r}")
        if self._fault_active:
            return self._run_io(
                lambda: self._overwrite_impl(f, index, records, sequential),
                f, is_write=True, sequential=sequential,
                records=records, index=index,
            )
        self._overwrite_impl(f, index, records, sequential)

    def _overwrite_impl(self, f: DiskFile, index: int, records: Sequence[Record],
                        sequential: bool) -> None:
        old_len = len(f.blocks[index])
        f.blocks[index] = tuple(records)
        f.num_records += len(records) - old_len
        f.block_checksums[index] = self._block_checksum(records)
        if self.pool is not None:
            self.pool.invalidate_block(f, index)
        self._charge_write(f, index, sequential=sequential)

    # -- fault tolerance ---------------------------------------------------

    def _run_io(self, impl, f: DiskFile, *, is_write: bool, sequential: bool,
                records: Optional[Sequence[Record]] = None,
                index: Optional[int] = None):
        """Run one block operation through the fault machinery.

        Order of business per operation: the PR 3 crash injector first
        (fail-stop semantics are unchanged — a crash leaves the operation
        uncharged), then, per *attempt*, the fault schedule (which may
        raise transient faults or damage the target block), then the
        storage implementation itself.  Transient faults are retried under
        the attached :class:`FaultPolicy` with each failed attempt charged
        to the ``retry`` ledger label; a ``CorruptBlockError`` on read is
        handed to :meth:`_repair_block` (parity reconstruction on a
        :class:`StripedDevice`), after which the read is re-run clean.
        """
        if self.injector is not None:
            self.injector.on_io(self, f, is_write=is_write, records=records, index=index)
        attempt = 0
        while True:
            if self.fault_schedule is not None:
                try:
                    self.fault_schedule.on_io(
                        self, f, is_write=is_write, records=records,
                        index=index, attempt=attempt,
                    )
                except TransientIOError as exc:
                    if (
                        not is_write
                        and index is not None
                        and isinstance(exc, ChannelOutageError)
                        and self._repair_block(f, index, rewrite=False)
                    ):
                        # Degraded read: the channel is down but the block
                        # is reconstructible from parity + siblings.  The
                        # logical read is charged normally (ledger parity
                        # with the fault-free run); the reconstruction
                        # traffic was just charged to the repair label.
                        return impl()
                    attempt = self._next_attempt(exc, f, index, is_write, sequential, attempt)
                    continue
            try:
                return impl()
            except CorruptBlockError:
                if (
                    is_write
                    or index is None
                    or not self._repair_block(f, index, rewrite=True)
                ):
                    raise
                return impl()

    def _next_attempt(self, exc: TransientIOError, f: DiskFile,
                      index: Optional[int], is_write: bool, sequential: bool,
                      attempt: int) -> int:
        """Account a failed attempt; backoff and return the next attempt
        number, or escalate :class:`RetryExhaustedError` past the policy."""
        from repro.recovery.policy import DEFAULT_FAULT_POLICY  # lazy: no cycle

        policy = self.fault_policy or DEFAULT_FAULT_POLICY
        health = self.stats.health
        # The failed attempt consumed a device operation: charge it, so
        # fault-tolerance overhead is a measured quantity (and counts
        # toward the I/O budget — a run cannot retry its way past INF).
        self._charge_fault(f, index, RETRY_PHASE, is_read=not is_write,
                           sequential=sequential)
        attempt += 1
        if attempt > policy.max_retries:
            health.escalations += 1
            raise RetryExhaustedError(attempt, exc) from exc
        health.retries += 1
        seconds = policy.apply_backoff(attempt, token=getattr(f, "uid", 0))
        health.backoff_seconds += seconds
        stack = self.stats._phase_stack
        top = stack[0] if stack else ""
        spent = health.backoff_by_phase.get(top, 0.0) + seconds
        health.backoff_by_phase[top] = spent
        if policy.phase_deadline is not None and spent > policy.phase_deadline:
            health.escalations += 1
            raise RetryExhaustedError(
                attempt, exc,
                reason=f"phase {top or '<none>'} backoff deadline "
                       f"{policy.phase_deadline}s exceeded",
            ) from exc
        return attempt

    def _charge_fault(self, f: DiskFile, index: Optional[int], label: str,
                      is_read: bool, sequential: bool) -> None:
        """Charge one fault-handling block I/O (retry / repair traffic).

        The single routing point, like :meth:`_charge_read`: the striped
        device overrides it to also charge the owning channel's ledger so
        the channel partition of the main ledger stays exact.
        """
        self.stats.record_fault_io(label, is_read, sequential)

    def _repair_block(self, f: DiskFile, index: int, rewrite: bool) -> bool:
        """Attempt degraded-mode reconstruction of ``f[index]``.

        The base device has no redundancy — only the parity-equipped
        :class:`StripedDevice` can repair.  Returns True when the block
        was reconstructed (and, with ``rewrite=True``, rewritten in
        place).
        """
        return False

    def _damage_block(self, f: DiskFile, index: int) -> None:
        """Flip a bit in the stored content of block ``index`` without
        touching its recorded checksum — simulated bit-rot, surfaced as a
        :class:`CorruptBlockError` by the checksum layer on read."""
        block = f.blocks[index]
        damaged = self._flip_first_field(block)
        if damaged == block:
            # Nothing flippable in the payload (empty block): rot the
            # stored checksum instead — the mismatch is the same.
            f.block_checksums[index] ^= 1
        else:
            f.blocks[index] = damaged
        if self.pool is not None:
            self.pool.invalidate_block(f, index)

    @classmethod
    def _flip_first_field(cls, value):
        if isinstance(value, tuple):
            for pos, item in enumerate(value):
                flipped = cls._flip_first_field(item)
                if flipped != item:
                    return value[:pos] + (flipped,) + value[pos + 1:]
            return value
        return value ^ 1

    # -- crash surface -----------------------------------------------------

    def _torn_write(self, f: DiskFile, records: Sequence[Record],
                    index: Optional[int] = None) -> None:
        """Leave a half-written block behind, as a mid-write power loss
        would: only the first half of the records land, while the recorded
        checksum is that of the *intended* content — so the block fails
        :meth:`verify_block`.  No I/O is charged (the machine died)."""
        torn = tuple(records)[: len(records) // 2]
        checksum = self._block_checksum(records)
        if index is None:
            f.blocks.append(torn)
            f.num_records += len(torn)
            f.block_checksums.append(checksum)
        else:
            f.num_records += len(torn) - len(f.blocks[index])
            f.blocks[index] = torn
            f.block_checksums[index] = checksum
            if self.pool is not None:
                self.pool.invalidate_block(f, index)

    def verify_block(self, f: DiskFile, index: int) -> Sequence[Record]:
        """Read block ``index`` and check it against its stored checksum.

        Charges one sequential read (recovery validation is a scan);
        raises :class:`~repro.exceptions.CorruptBlockError` on mismatch.
        """
        self._assert_live(f)
        if not 0 <= index < len(f.blocks):
            raise StorageError(f"block {index} out of range for {f.name!r}")
        block = f.blocks[index]
        self._charge_read(f, index, sequential=True)
        if self._block_checksum(block) != f.block_checksums[index]:
            raise CorruptBlockError(f.name, index)
        return block

    def file_checksum(self, f: DiskFile) -> Optional[int]:
        """Combined CRC32 over the file's per-block checksums, or ``None``
        when the per-block list is incomplete (a reopened legacy file) —
        callers then fall back to metadata-only validation."""
        if len(f.block_checksums) != f.num_blocks:
            return None
        crc = 0
        for checksum in f.block_checksums:
            crc = zlib.crc32(checksum.to_bytes(4, "big"), crc)
        return crc

    # -- reporting ---------------------------------------------------------

    def total_blocks(self) -> int:
        """Total number of blocks across all files (simulated disk usage)."""
        return sum(f.num_blocks for f in self._files.values())
