"""Sorted-run formation for the external merge sort.

A *run* is a sorted :class:`~repro.io.files.ExternalFile` produced during run
formation.  Two run-formation strategies live here:

* :func:`form_runs` — the classic load-sort-write pass: fill memory, sort,
  write, repeat.  Runs are exactly ``M / record_size`` records long, so an
  input of ``m`` records yields ``ceil(m / M)`` runs.
* :func:`form_runs_replacement_selection` — heap-based replacement
  selection (Knuth TAOCP vol. 3, §5.4.1): records are pushed through a
  min-heap of capacity ``M / record_size``; a record whose key is not less
  than the last one written continues the *current* run, otherwise it is
  earmarked for the next run.  On random input the expected run length is
  ``2M``, halving the run count (``#runs ≈ m / 2M``) and therefore the
  number of merge passes ``ceil(log_F(#runs))``; on already-sorted input a
  single run emerges regardless of ``m``.

Both strategies are *stable*: records with equal keys leave run formation
in arrival order (the heap breaks ties on an arrival sequence number, and a
later arrival is never assigned an earlier run), so the downstream k-way
merge — which breaks ties by run order — reproduces exactly the order the
classic strategy produces.
"""

from __future__ import annotations

import heapq
import itertools
from operator import itemgetter
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.io.blocks import BlockDevice
from repro.io.codecs import Codec, FixedCodec, CompressedRecordFile, RecordStore
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.parallel import PROCESS_TASK_MIN

__all__ = [
    "KEY_DST_AUX_SRC",
    "KEY_DST_SRC",
    "KEY_SRC_DST",
    "form_runs",
    "form_runs_replacement_selection",
    "run_iterator",
]

Record = Tuple[int, ...]
KeyFn = Callable[[Record], object]

# Canonical sort keys that *permute* a record's fields.  A permutation key
# is injective — equal keys imply equal records — so sorts using these
# exact objects (identity, not equality) need no stability machinery:
# any order among records with equal keys is an order among identical
# records and writes identical bytes.  Call sites share these constants
# instead of building fresh ``itemgetter``\ s so the identity check works.
KEY_DST_SRC = itemgetter(1, 0)
"""Sort 2-field edge records by (dst, src)."""
KEY_SRC_DST = itemgetter(0, 1)
"""Sort 2-field edge records by (src, dst) explicitly."""
KEY_DST_AUX_SRC = itemgetter(1, 2, 0)
"""Sort 3-field records by (field 1, field 2, field 0)."""

_INJECTIVE_KEY_ARITY = {KEY_DST_SRC: 2, KEY_SRC_DST: 2, KEY_DST_AUX_SRC: 3}
"""Registered injective keys → the record arity they permute.  Records in
one store are uniform-arity (fixed-width decode derives the field count
from ``record_size``), so checking the first record's arity is enough."""


def _create_run(
    device: BlockDevice,
    record_size: int,
    codec: Optional[Codec],
    prefix: str,
) -> RecordStore:
    """Open a fresh run file of the kind the codec calls for.

    ``codec=None`` (direct calls outside the sort pipeline) and
    :class:`FixedCodec` both produce a plain fixed-width
    :class:`ExternalFile`, byte-identical to the uncompressed pipeline.
    """
    name = device.temp_name(prefix)
    if codec is None or isinstance(codec, FixedCodec):
        return ExternalFile.create(device, name, record_size)
    return CompressedRecordFile(device, name, record_size, codec)


def form_runs(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    prefix: str = "run",
    codec: Optional[Codec] = None,
) -> List[RecordStore]:
    """Split ``records`` into memory-sized sorted runs written to disk.

    Each run holds at most ``memory.record_capacity(record_size)`` records,
    sorted in memory and written with sequential writes — the classic run
    formation pass of external merge sort.

    With a :class:`~repro.io.parallel.WorkerPool` attached to the device,
    writing run *i* overlaps buffering run *i+1* (a window of at most
    ``workers`` runs is in flight).  Run *contents* are untouched — the
    buffers are cut at the same record boundaries and sorted by the same
    key — so the run files, and therefore the whole sort's ledger, are
    identical to the serial pass.

    Returns:
        The list of run files (possibly empty for empty input).
    """
    capacity = max(1, memory.record_capacity(record_size))

    def buffers() -> Iterator[List[Record]]:
        buffer: List[Record] = []
        for record in records:
            buffer.append(record)
            if len(buffer) >= capacity:
                yield buffer
                buffer = []
        if buffer:
            yield buffer

    pool = device.worker_pool
    if pool is not None and pool.workers > 1:
        thunks = (
            (lambda buf=buf: _write_run(device, buf, record_size, key, prefix, codec))
            for buf in buffers()
        )
        return list(pool.run_windowed(thunks, window=pool.workers))
    return [
        _write_run(device, buf, record_size, key, prefix, codec) for buf in buffers()
    ]


def _sort_buffer(buffer: List[Record]) -> List[Record]:
    """The picklable pure-CPU sort kernel for process offload (records
    sort by their own tuples — key functions don't cross processes)."""
    buffer.sort()
    return buffer


def _write_run(
    device: BlockDevice,
    buffer: List[Record],
    record_size: int,
    key: Optional[KeyFn],
    prefix: str,
    codec: Optional[Codec] = None,
) -> RecordStore:
    pool = device.worker_pool
    if (
        key is None
        and pool is not None
        and pool.backend == "processes"
        and len(buffer) >= PROCESS_TASK_MIN
    ):
        # Offload the sort to a worker process: sorted() is deterministic
        # and stable either way, so the run contents are identical — only
        # which core did the comparisons changes.
        buffer = pool.run_pure(_sort_buffer, [(buffer,)])[0]
    else:
        buffer.sort(key=key)
    out = _create_run(device, record_size, codec, prefix)
    out.extend(buffer)
    out.close()
    return out


def form_runs_replacement_selection(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    prefix: str = "run",
    codec: Optional[Codec] = None,
) -> List[RecordStore]:
    """Form sorted runs with replacement selection.

    The heap holds at most ``memory.record_capacity(record_size)`` records
    — the same footprint as the classic strategy's buffer — but the runs it
    emits average twice that length on random input (``#runs ≈ m / 2M``).

    Heap entries are ``(run_number, key, seq, record)``: ``run_number``
    keeps next-run records from escaping early, and ``seq`` (the arrival
    index) makes equal keys pop in arrival order, preserving the stability
    contract of :func:`form_runs`.

    Returns:
        The list of run files, in run order (possibly empty).
    """
    capacity = max(1, memory.record_capacity(record_size))
    # ``key=None`` (records sort by their own tuples) skips the key call
    # entirely — the record stands in as its own key, which is both the
    # common case and the hot one.
    key_fn: Optional[KeyFn] = key
    source = iter(records)
    fill = list(itertools.islice(source, capacity))
    if not fill:
        return []
    if len(fill) < capacity:
        # The whole input fit in the heap: every record drains as run 0 in
        # (key, arrival) order — exactly what one stable sort produces, so
        # skip the heap (and its decorated entries) entirely and bulk-write
        # the single run.
        fill.sort(key=key_fn)
        out = _create_run(device, record_size, codec, prefix)
        out.extend(fill)
        out.close()
        return [out]
    if key_fn is None or _INJECTIVE_KEY_ARITY.get(key_fn) == len(fill[0]):
        # With the record as its own key — or a registered permutation
        # key — equal keys mean *equal records*, so no arrival tiebreaker
        # is needed: interchanging identical records is unobservable in
        # the output bytes.  Lean entries make every sift cheaper.
        return _replacement_selection_lean(
            device, fill, source, record_size, codec, prefix, key_fn
        )
    heap: List[Tuple[int, object, int, Record]] = [
        (0, key_fn(record), seq, record) for seq, record in enumerate(fill)
    ]
    seq = capacity
    heapq.heapify(heap)

    runs: List[RecordStore] = []
    current_run = 0
    out = _create_run(device, record_size, codec, prefix)
    # Output records are staged in memory-light chunks and emitted through
    # the batch extend path instead of per-record appends; the emission
    # order (and therefore every block cut) is unchanged.
    pending: List[Record] = []
    emit_chunk = 1024
    heapreplace = heapq.heapreplace
    # Input is drained in islice chunks rather than one ``next()`` call per
    # record; reading ahead never changes what the heap sees (the records
    # arrive in the same order), it only trades 1024 generator resumptions
    # for one C-level list fill.
    inbuf: List[Record] = []
    pos = 0
    while heap:
        # Peek instead of pop: when another input record arrives it takes
        # the emitted record's slot via heapreplace (one sift instead of a
        # pop's sift-up plus a push's sift-down).
        run_number, run_key, _, record = heap[0]
        if run_number != current_run:
            if pending:
                out.extend(pending)
                pending = []
            out.close()
            runs.append(out)
            current_run = run_number
            out = _create_run(device, record_size, codec, prefix)
        pending.append(record)
        if len(pending) >= emit_chunk:
            out.extend(pending)
            pending = []
        if pos == len(inbuf):
            inbuf = list(itertools.islice(source, emit_chunk))
            pos = 0
        nxt = inbuf[pos] if inbuf else None
        if nxt is not None:
            pos += 1
        if nxt is None:
            # Input exhausted: the heap's remaining pops arrive in plain
            # ascending entry order, so one stable sort replaces them all.
            heapq.heappop(heap)
            for run_number, run_key, _, record in sorted(heap):
                if run_number != current_run:
                    if pending:
                        out.extend(pending)
                        pending = []
                    out.close()
                    runs.append(out)
                    current_run = run_number
                    out = _create_run(device, record_size, codec, prefix)
                pending.append(record)
                if len(pending) >= emit_chunk:
                    out.extend(pending)
                    pending = []
            break
        nxt_key = key_fn(nxt)
        # An incoming record continues the current run only when it can
        # still be emitted after the record just written.
        target = run_number if not nxt_key < run_key else run_number + 1  # type: ignore[operator]
        heapreplace(heap, (target, nxt_key, seq, nxt))
        seq += 1
    assert out is not None
    if pending:
        out.extend(pending)
    out.close()
    runs.append(out)
    return runs


def _replacement_selection_lean(
    device: BlockDevice,
    fill: List[Record],
    source: Iterator[Record],
    record_size: int,
    codec: Optional[Codec],
    prefix: str,
    key_fn: Optional[KeyFn],
) -> List[RecordStore]:
    """Replacement selection without the arrival-sequence tiebreaker.

    Only reachable when equal keys imply equal records (``key_fn=None``,
    where the record is its own key, or a registered permutation key), so
    any pop order among entries that compare equal writes identical
    bytes.  Heap entries are lean ``(run_number, record)`` pairs — or
    ``(run_number, key, record)`` triples for a keyed sort — making every
    sift cheaper than the generic loop's decorated 4-tuples.  The loop is
    otherwise :func:`form_runs_replacement_selection` verbatim.
    """
    if key_fn is None:
        heap: List[Tuple] = [(0, record) for record in fill]
    else:
        heap = [(0, key_fn(record), record) for record in fill]
    heapq.heapify(heap)

    runs: List[RecordStore] = []
    current_run = 0
    out = _create_run(device, record_size, codec, prefix)
    pending: List[Record] = []
    emit_chunk = 1024
    heapreplace = heapq.heapreplace
    inbuf: List[Record] = []
    pos = 0
    while heap:
        head = heap[0]
        run_number = head[0]
        run_key = head[1]
        record = head[-1]
        if run_number != current_run:
            if pending:
                out.extend(pending)
                pending = []
            out.close()
            runs.append(out)
            current_run = run_number
            out = _create_run(device, record_size, codec, prefix)
        pending.append(record)
        if len(pending) >= emit_chunk:
            out.extend(pending)
            pending = []
        if pos == len(inbuf):
            inbuf = list(itertools.islice(source, emit_chunk))
            pos = 0
            if not inbuf:
                # Input exhausted: drain the heap in sorted entry order.
                heapq.heappop(heap)
                for entry in sorted(heap):
                    run_number = entry[0]
                    if run_number != current_run:
                        if pending:
                            out.extend(pending)
                            pending = []
                        out.close()
                        runs.append(out)
                        current_run = run_number
                        out = _create_run(device, record_size, codec, prefix)
                    pending.append(entry[-1])
                    if len(pending) >= emit_chunk:
                        out.extend(pending)
                        pending = []
                break
        nxt = inbuf[pos]
        pos += 1
        # An incoming record continues the current run only when it can
        # still be emitted after the record just written.
        if key_fn is None:
            heapreplace(
                heap, (run_number if not nxt < record else run_number + 1, nxt)
            )
        else:
            nxt_key = key_fn(nxt)
            heapreplace(
                heap,
                (run_number if not nxt_key < run_key else run_number + 1,
                 nxt_key, nxt),
            )
    if pending:
        out.extend(pending)
    out.close()
    runs.append(out)
    return runs


def run_iterator(run: RecordStore) -> Iterator[Record]:
    """Stream a run's records sequentially (one buffered block at a time)."""
    return run.scan()
