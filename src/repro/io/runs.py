"""Sorted-run formation for the external merge sort.

A *run* is a sorted :class:`~repro.io.files.ExternalFile` produced during run
formation.  Two run-formation strategies live here:

* :func:`form_runs` — the classic load-sort-write pass: fill memory, sort,
  write, repeat.  Runs are exactly ``M / record_size`` records long, so an
  input of ``m`` records yields ``ceil(m / M)`` runs.
* :func:`form_runs_replacement_selection` — heap-based replacement
  selection (Knuth TAOCP vol. 3, §5.4.1): records are pushed through a
  min-heap of capacity ``M / record_size``; a record whose key is not less
  than the last one written continues the *current* run, otherwise it is
  earmarked for the next run.  On random input the expected run length is
  ``2M``, halving the run count (``#runs ≈ m / 2M``) and therefore the
  number of merge passes ``ceil(log_F(#runs))``; on already-sorted input a
  single run emerges regardless of ``m``.

Both strategies are *stable*: records with equal keys leave run formation
in arrival order (the heap breaks ties on an arrival sequence number, and a
later arrival is never assigned an earlier run), so the downstream k-way
merge — which breaks ties by run order — reproduces exactly the order the
classic strategy produces.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.io.blocks import BlockDevice
from repro.io.codecs import Codec, FixedCodec, CompressedRecordFile, RecordStore
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget

__all__ = ["form_runs", "form_runs_replacement_selection", "run_iterator"]

Record = Tuple[int, ...]
KeyFn = Callable[[Record], object]


def _create_run(
    device: BlockDevice,
    record_size: int,
    codec: Optional[Codec],
    prefix: str,
) -> RecordStore:
    """Open a fresh run file of the kind the codec calls for.

    ``codec=None`` (direct calls outside the sort pipeline) and
    :class:`FixedCodec` both produce a plain fixed-width
    :class:`ExternalFile`, byte-identical to the uncompressed pipeline.
    """
    name = device.temp_name(prefix)
    if codec is None or isinstance(codec, FixedCodec):
        return ExternalFile.create(device, name, record_size)
    return CompressedRecordFile(device, name, record_size, codec)


def form_runs(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    prefix: str = "run",
    codec: Optional[Codec] = None,
) -> List[RecordStore]:
    """Split ``records`` into memory-sized sorted runs written to disk.

    Each run holds at most ``memory.record_capacity(record_size)`` records,
    sorted in memory and written with sequential writes — the classic run
    formation pass of external merge sort.

    With a :class:`~repro.io.parallel.WorkerPool` attached to the device,
    writing run *i* overlaps buffering run *i+1* (a window of at most
    ``workers`` runs is in flight).  Run *contents* are untouched — the
    buffers are cut at the same record boundaries and sorted by the same
    key — so the run files, and therefore the whole sort's ledger, are
    identical to the serial pass.

    Returns:
        The list of run files (possibly empty for empty input).
    """
    capacity = max(1, memory.record_capacity(record_size))

    def buffers() -> Iterator[List[Record]]:
        buffer: List[Record] = []
        for record in records:
            buffer.append(record)
            if len(buffer) >= capacity:
                yield buffer
                buffer = []
        if buffer:
            yield buffer

    pool = device.worker_pool
    if pool is not None and pool.workers > 1:
        thunks = (
            (lambda buf=buf: _write_run(device, buf, record_size, key, prefix, codec))
            for buf in buffers()
        )
        return list(pool.run_windowed(thunks, window=pool.workers))
    return [
        _write_run(device, buf, record_size, key, prefix, codec) for buf in buffers()
    ]


def _write_run(
    device: BlockDevice,
    buffer: List[Record],
    record_size: int,
    key: Optional[KeyFn],
    prefix: str,
    codec: Optional[Codec] = None,
) -> RecordStore:
    buffer.sort(key=key)
    out = _create_run(device, record_size, codec, prefix)
    out.extend(buffer)
    out.close()
    return out


def form_runs_replacement_selection(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    prefix: str = "run",
    codec: Optional[Codec] = None,
) -> List[RecordStore]:
    """Form sorted runs with replacement selection.

    The heap holds at most ``memory.record_capacity(record_size)`` records
    — the same footprint as the classic strategy's buffer — but the runs it
    emits average twice that length on random input (``#runs ≈ m / 2M``).

    Heap entries are ``(run_number, key, seq, record)``: ``run_number``
    keeps next-run records from escaping early, and ``seq`` (the arrival
    index) makes equal keys pop in arrival order, preserving the stability
    contract of :func:`form_runs`.

    Returns:
        The list of run files, in run order (possibly empty).
    """
    capacity = max(1, memory.record_capacity(record_size))
    key_fn: KeyFn = key if key is not None else (lambda r: r)
    source = iter(records)
    heap: List[Tuple[int, object, int, Record]] = []
    seq = 0
    for record in source:
        heap.append((0, key_fn(record), seq, record))
        seq += 1
        if len(heap) >= capacity:
            break
    if not heap:
        return []
    heapq.heapify(heap)

    runs: List[RecordStore] = []
    current_run = 0
    out: Optional[RecordStore] = None
    exhausted = False
    while heap:
        run_number, run_key, _, record = heapq.heappop(heap)
        if run_number != current_run or out is None:
            if out is not None:
                out.close()
                runs.append(out)
            current_run = run_number
            out = _create_run(device, record_size, codec, prefix)
        out.append(record)
        if not exhausted:
            nxt = next(source, None)
            if nxt is None:
                exhausted = True
            else:
                nxt_key = key_fn(nxt)
                # An incoming record continues the current run only when it
                # can still be emitted after the record just written.
                target = run_number if not nxt_key < run_key else run_number + 1  # type: ignore[operator]
                heapq.heappush(heap, (target, nxt_key, seq, nxt))
                seq += 1
    assert out is not None
    out.close()
    runs.append(out)
    return runs


def run_iterator(run: RecordStore) -> Iterator[Record]:
    """Stream a run's records sequentially (one buffered block at a time)."""
    return run.scan()
