"""Sorted-run formation for the external merge sort.

A *run* is a sorted :class:`~repro.io.files.ExternalFile` produced during run
formation.  Two run-formation strategies live here:

* :func:`form_runs` — the classic load-sort-write pass: fill memory, sort,
  write, repeat.  Runs are exactly ``M / record_size`` records long, so an
  input of ``m`` records yields ``ceil(m / M)`` runs.
* :func:`form_runs_replacement_selection` — heap-based replacement
  selection (Knuth TAOCP vol. 3, §5.4.1): records are pushed through a
  min-heap of capacity ``M / record_size``; a record whose key is not less
  than the last one written continues the *current* run, otherwise it is
  earmarked for the next run.  On random input the expected run length is
  ``2M``, halving the run count (``#runs ≈ m / 2M``) and therefore the
  number of merge passes ``ceil(log_F(#runs))``; on already-sorted input a
  single run emerges regardless of ``m``.

Both strategies are *stable*: records with equal keys leave run formation
in arrival order (the heap breaks ties on an arrival sequence number, and a
later arrival is never assigned an earlier run), so the downstream k-way
merge — which breaks ties by run order — reproduces exactly the order the
classic strategy produces.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget

__all__ = ["form_runs", "form_runs_replacement_selection", "run_iterator"]

Record = Tuple[int, ...]
KeyFn = Callable[[Record], object]


def form_runs(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    prefix: str = "run",
) -> List[ExternalFile]:
    """Split ``records`` into memory-sized sorted runs written to disk.

    Each run holds at most ``memory.record_capacity(record_size)`` records,
    sorted in memory and written with sequential writes — the classic run
    formation pass of external merge sort.

    Returns:
        The list of run files (possibly empty for empty input).
    """
    capacity = max(1, memory.record_capacity(record_size))
    runs: List[ExternalFile] = []
    buffer: List[Record] = []
    for record in records:
        buffer.append(record)
        if len(buffer) >= capacity:
            runs.append(_write_run(device, buffer, record_size, key, prefix))
            buffer = []
    if buffer:
        runs.append(_write_run(device, buffer, record_size, key, prefix))
    return runs


def _write_run(
    device: BlockDevice,
    buffer: List[Record],
    record_size: int,
    key: Optional[KeyFn],
    prefix: str,
) -> ExternalFile:
    buffer.sort(key=key)
    return ExternalFile.from_records(
        device, device.temp_name(prefix), buffer, record_size
    )


def form_runs_replacement_selection(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    prefix: str = "run",
) -> List[ExternalFile]:
    """Form sorted runs with replacement selection.

    The heap holds at most ``memory.record_capacity(record_size)`` records
    — the same footprint as the classic strategy's buffer — but the runs it
    emits average twice that length on random input (``#runs ≈ m / 2M``).

    Heap entries are ``(run_number, key, seq, record)``: ``run_number``
    keeps next-run records from escaping early, and ``seq`` (the arrival
    index) makes equal keys pop in arrival order, preserving the stability
    contract of :func:`form_runs`.

    Returns:
        The list of run files, in run order (possibly empty).
    """
    capacity = max(1, memory.record_capacity(record_size))
    key_fn: KeyFn = key if key is not None else (lambda r: r)
    source = iter(records)
    heap: List[Tuple[int, object, int, Record]] = []
    seq = 0
    for record in source:
        heap.append((0, key_fn(record), seq, record))
        seq += 1
        if len(heap) >= capacity:
            break
    if not heap:
        return []
    heapq.heapify(heap)

    runs: List[ExternalFile] = []
    current_run = 0
    out: Optional[ExternalFile] = None
    exhausted = False
    while heap:
        run_number, run_key, _, record = heapq.heappop(heap)
        if run_number != current_run or out is None:
            if out is not None:
                out.close()
                runs.append(out)
            current_run = run_number
            out = ExternalFile.create(device, device.temp_name(prefix), record_size)
        out.append(record)
        if not exhausted:
            nxt = next(source, None)
            if nxt is None:
                exhausted = True
            else:
                nxt_key = key_fn(nxt)
                # An incoming record continues the current run only when it
                # can still be emitted after the record just written.
                target = run_number if not nxt_key < run_key else run_number + 1  # type: ignore[operator]
                heapq.heappush(heap, (target, nxt_key, seq, nxt))
                seq += 1
    assert out is not None
    out.close()
    runs.append(out)
    return runs


def run_iterator(run: ExternalFile) -> Iterator[Record]:
    """Stream a run's records sequentially (one buffered block at a time)."""
    return run.scan()
