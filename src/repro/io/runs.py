"""Sorted-run formation for the external merge sort.

A *run* is a sorted :class:`~repro.io.files.ExternalFile` produced during run
formation.  Two run-formation strategies live here:

* :func:`form_runs` — the classic load-sort-write pass: fill memory, sort,
  write, repeat.  Runs are exactly ``M / record_size`` records long, so an
  input of ``m`` records yields ``ceil(m / M)`` runs.
* :func:`form_runs_replacement_selection` — heap-based replacement
  selection (Knuth TAOCP vol. 3, §5.4.1): records are pushed through a
  min-heap of capacity ``M / record_size``; a record whose key is not less
  than the last one written continues the *current* run, otherwise it is
  earmarked for the next run.  On random input the expected run length is
  ``2M``, halving the run count (``#runs ≈ m / 2M``) and therefore the
  number of merge passes ``ceil(log_F(#runs))``; on already-sorted input a
  single run emerges regardless of ``m``.

Both strategies are *stable*: records with equal keys leave run formation
in arrival order (the heap breaks ties on an arrival sequence number, and a
later arrival is never assigned an earlier run), so the downstream k-way
merge — which breaks ties by run order — reproduces exactly the order the
classic strategy produces.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
from operator import itemgetter
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.io.blocks import BlockDevice
from repro.io.codecs import Codec, FixedCodec, CompressedRecordFile, RecordStore
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.parallel import PROCESS_TASK_MIN
from repro.kernels import sort_records

__all__ = [
    "KEY_DST_AUX_SRC",
    "KEY_DST_SRC",
    "KEY_SRC_DST",
    "form_runs",
    "form_runs_replacement_selection",
    "run_iterator",
]

Record = Tuple[int, ...]
KeyFn = Callable[[Record], object]

# Canonical sort keys that *permute* a record's fields.  A permutation key
# is injective — equal keys imply equal records — so sorts using these
# exact objects (identity, not equality) need no stability machinery:
# any order among records with equal keys is an order among identical
# records and writes identical bytes.  Call sites share these constants
# instead of building fresh ``itemgetter``\ s so the identity check works.
KEY_DST_SRC = itemgetter(1, 0)
"""Sort 2-field edge records by (dst, src)."""
KEY_SRC_DST = itemgetter(0, 1)
"""Sort 2-field edge records by (src, dst) explicitly."""
KEY_DST_AUX_SRC = itemgetter(1, 2, 0)
"""Sort 3-field records by (field 1, field 2, field 0)."""

_INJECTIVE_KEY_ARITY = {KEY_DST_SRC: 2, KEY_SRC_DST: 2, KEY_DST_AUX_SRC: 3}
"""Registered injective keys → the record arity they permute.  Records in
one store are uniform-arity (fixed-width decode derives the field count
from ``record_size``), so checking the first record's arity is enough."""

_KEY_COLUMNS = {KEY_DST_SRC: (1, 0), KEY_SRC_DST: (0, 1), KEY_DST_AUX_SRC: (1, 2, 0)}
"""The registered permutation keys as column priorities, for the
vectorized whole-buffer sort (:func:`repro.kernels.sort_records`)."""

_KEY_INVERSE: dict = {}
for _key, _cols in _KEY_COLUMNS.items():
    _inv = [0] * len(_cols)
    for _pos, _col in enumerate(_cols):
        _inv[_col] = _pos
    _KEY_INVERSE[_key] = itemgetter(*_inv)
del _key, _cols, _inv, _pos, _col
"""Inverse permutation per registered key: ``inverse(key(r)) == r``, so a
permuted stream can be mapped back to original records in C."""


def _sorted_records(buffer: List[Record], key: Optional[KeyFn]) -> List[Record]:
    """Sort a whole run buffer through the kernel layer.

    The numpy lexsort applies when the order is the record's own tuple or
    a registered permutation of *all* its fields (injective, so the stable
    list sort and the stable lexsort write identical bytes); any other key
    — including a permutation key over records with extra fields, where
    equal keys no longer imply equal records — takes the scalar sort.
    """
    if key is None:
        return sort_records(buffer)
    columns = _KEY_COLUMNS.get(key)
    if columns is not None and buffer and len(buffer[0]) == len(columns):
        return sort_records(buffer, key=key, columns=columns)
    buffer.sort(key=key)
    return buffer


def _create_run(
    device: BlockDevice,
    record_size: int,
    codec: Optional[Codec],
    prefix: str,
) -> RecordStore:
    """Open a fresh run file of the kind the codec calls for.

    ``codec=None`` (direct calls outside the sort pipeline) and
    :class:`FixedCodec` both produce a plain fixed-width
    :class:`ExternalFile`, byte-identical to the uncompressed pipeline.
    """
    name = device.temp_name(prefix)
    if codec is None or isinstance(codec, FixedCodec):
        return ExternalFile.create(device, name, record_size)
    return CompressedRecordFile(device, name, record_size, codec)


def form_runs(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    prefix: str = "run",
    codec: Optional[Codec] = None,
) -> List[RecordStore]:
    """Split ``records`` into memory-sized sorted runs written to disk.

    Each run holds at most ``memory.record_capacity(record_size)`` records,
    sorted in memory and written with sequential writes — the classic run
    formation pass of external merge sort.

    With a :class:`~repro.io.parallel.WorkerPool` attached to the device,
    writing run *i* overlaps buffering run *i+1* (a window of at most
    ``workers`` runs is in flight).  Run *contents* are untouched — the
    buffers are cut at the same record boundaries and sorted by the same
    key — so the run files, and therefore the whole sort's ledger, are
    identical to the serial pass.

    Returns:
        The list of run files (possibly empty for empty input).
    """
    capacity = max(1, memory.record_capacity(record_size))

    def buffers() -> Iterator[List[Record]]:
        buffer: List[Record] = []
        for record in records:
            buffer.append(record)
            if len(buffer) >= capacity:
                yield buffer
                buffer = []
        if buffer:
            yield buffer

    pool = device.worker_pool
    if pool is not None and pool.workers > 1:
        thunks = (
            (lambda buf=buf: _write_run(device, buf, record_size, key, prefix, codec))
            for buf in buffers()
        )
        return list(pool.run_windowed(thunks, window=pool.workers))
    return [
        _write_run(device, buf, record_size, key, prefix, codec) for buf in buffers()
    ]


def _sort_buffer(buffer: List[Record]) -> List[Record]:
    """The picklable pure-CPU sort kernel for process offload (records
    sort by their own tuples — key functions don't cross processes)."""
    buffer.sort()
    return buffer


def _write_run(
    device: BlockDevice,
    buffer: List[Record],
    record_size: int,
    key: Optional[KeyFn],
    prefix: str,
    codec: Optional[Codec] = None,
) -> RecordStore:
    pool = device.worker_pool
    if (
        key is None
        and pool is not None
        and pool.backend == "processes"
        and len(buffer) >= PROCESS_TASK_MIN
    ):
        # Offload the sort to a worker process: sorted() is deterministic
        # and stable either way, so the run contents are identical — only
        # which core did the comparisons changes.
        buffer = pool.run_pure(_sort_buffer, [(buffer,)])[0]
    else:
        buffer = _sorted_records(buffer, key)
    out = _create_run(device, record_size, codec, prefix)
    out.extend(buffer)
    out.close()
    return out


def form_runs_replacement_selection(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    prefix: str = "run",
    codec: Optional[Codec] = None,
) -> List[RecordStore]:
    """Form sorted runs with replacement selection.

    The heap holds at most ``memory.record_capacity(record_size)`` records
    — the same footprint as the classic strategy's buffer — but the runs it
    emits average twice that length on random input (``#runs ≈ m / 2M``).

    Heap entries are ``(run_number, key, seq, record)``: ``run_number``
    keeps next-run records from escaping early, and ``seq`` (the arrival
    index) makes equal keys pop in arrival order, preserving the stability
    contract of :func:`form_runs`.

    Returns:
        The list of run files, in run order (possibly empty).
    """
    capacity = max(1, memory.record_capacity(record_size))
    # ``key=None`` (records sort by their own tuples) skips the key call
    # entirely — the record stands in as its own key, which is both the
    # common case and the hot one.
    key_fn: Optional[KeyFn] = key
    source = iter(records)
    fill = list(itertools.islice(source, capacity))
    if not fill:
        return []
    if len(fill) < capacity:
        # The whole input fit in the heap: every record drains as run 0 in
        # (key, arrival) order — exactly what one stable sort produces, so
        # skip the heap (and its decorated entries) entirely and bulk-write
        # the single run.
        fill = _sorted_records(fill, key_fn)
        out = _create_run(device, record_size, codec, prefix)
        out.extend(fill)
        out.close()
        return [out]
    if key_fn is None or _INJECTIVE_KEY_ARITY.get(key_fn) == len(fill[0]):
        # With the record as its own key — or a registered permutation
        # key — equal keys mean *equal records*, so no arrival tiebreaker
        # is needed: interchanging identical records is unobservable in
        # the output bytes.  Lean entries make every sift cheaper.
        return _replacement_selection_lean(
            device, fill, source, record_size, codec, prefix, key_fn
        )
    heap: List[Tuple[int, object, int, Record]] = [
        (0, key_fn(record), seq, record) for seq, record in enumerate(fill)
    ]
    seq = capacity
    heapq.heapify(heap)

    runs: List[RecordStore] = []
    current_run = 0
    out = _create_run(device, record_size, codec, prefix)
    # Output records are staged in memory-light chunks and emitted through
    # the batch extend path instead of per-record appends; the emission
    # order (and therefore every block cut) is unchanged.
    pending: List[Record] = []
    emit_chunk = 1024
    heapreplace = heapq.heapreplace
    # Input is drained in islice chunks rather than one ``next()`` call per
    # record; reading ahead never changes what the heap sees (the records
    # arrive in the same order), it only trades 1024 generator resumptions
    # for one C-level list fill.
    inbuf: List[Record] = []
    pos = 0
    while heap:
        # Peek instead of pop: when another input record arrives it takes
        # the emitted record's slot via heapreplace (one sift instead of a
        # pop's sift-up plus a push's sift-down).
        run_number, run_key, _, record = heap[0]
        if run_number != current_run:
            if pending:
                out.extend(pending)
                pending = []
            out.close()
            runs.append(out)
            current_run = run_number
            out = _create_run(device, record_size, codec, prefix)
        pending.append(record)
        if len(pending) >= emit_chunk:
            out.extend(pending)
            pending = []
        if pos == len(inbuf):
            inbuf = list(itertools.islice(source, emit_chunk))
            pos = 0
        nxt = inbuf[pos] if inbuf else None
        if nxt is not None:
            pos += 1
        if nxt is None:
            # Input exhausted: the heap's remaining pops arrive in plain
            # ascending entry order, so one stable sort replaces them all.
            heapq.heappop(heap)
            for run_number, run_key, _, record in sorted(heap):
                if run_number != current_run:
                    if pending:
                        out.extend(pending)
                        pending = []
                    out.close()
                    runs.append(out)
                    current_run = run_number
                    out = _create_run(device, record_size, codec, prefix)
                pending.append(record)
                if len(pending) >= emit_chunk:
                    out.extend(pending)
                    pending = []
            break
        nxt_key = key_fn(nxt)
        # An incoming record continues the current run only when it can
        # still be emitted after the record just written.
        target = run_number if not nxt_key < run_key else run_number + 1  # type: ignore[operator]
        heapreplace(heap, (target, nxt_key, seq, nxt))
        seq += 1
    assert out is not None
    if pending:
        out.extend(pending)
    out.close()
    runs.append(out)
    return runs


def _replacement_selection_lean(
    device: BlockDevice,
    fill: List[Record],
    source: Iterator[Record],
    record_size: int,
    codec: Optional[Codec],
    prefix: str,
    key_fn: Optional[KeyFn],
) -> List[RecordStore]:
    """Replacement selection over a sorted live list, without run tags.

    Only reachable when equal keys imply equal records (``key_fn=None``,
    where the record is its own key, or a registered permutation key), so
    any pop order among entries that compare equal writes identical
    bytes.  The current run's candidates sit in a *sorted* list with a
    moving head index: emitting the minimum is an index read, and an
    incoming record that continues the run is placed by one C-level
    :func:`bisect.insort` — about half the comparisons of a heap
    replacement's down-and-up sift.  Records earmarked for the next run
    collect unsorted in a side list that is sorted wholesale when the
    live list drains; the run boundaries are exactly the classic
    formulation's, because the live list empties precisely when every
    buffered record has been earmarked for the next run.  The emitted
    prefix is compacted once per input chunk, so the list's footprint
    stays at the buffer capacity.
    """
    # A registered permutation key reorders a record's own fields, so
    # instead of decorating every record with a ``(key, record)`` pair the
    # whole stream is *permuted into key order* up front (one C-level
    # ``map(key_fn, ...)`` per chunk), the selection loop runs on plain
    # tuples that sort by themselves, and emitted chunks are permuted back
    # (``map(inverse, ...)``) on the way into the run file.  Comparisons
    # and the loop body are exactly the unkeyed ones; the written bytes
    # are identical because ``inverse(key(r)) == r`` record by record.
    inverse = _KEY_INVERSE[key_fn] if key_fn is not None else None
    if key_fn is not None:
        live: List = list(map(key_fn, fill))
        live.sort()
    else:
        fill.sort()
        live = fill
    head = 0

    def emit(out: RecordStore, batch: List[Record]) -> None:
        out.extend(list(map(inverse, batch)) if inverse is not None else batch)

    runs: List[RecordStore] = []
    out = _create_run(device, record_size, codec, prefix)
    pending: List[Record] = []
    emit_chunk = 1024
    insort = bisect.insort
    pending_append = pending.append
    side: List = []
    side_append = side.append
    while True:
        inbuf = list(itertools.islice(source, emit_chunk))
        if not inbuf:
            break
        if key_fn is not None:
            inbuf = list(map(key_fn, inbuf))
        for nxt in inbuf:
            record = live[head]
            head += 1
            pending_append(record)
            if nxt < record:
                side_append(nxt)
                if head == len(live):
                    if pending:
                        emit(out, pending)
                        pending = []
                        pending_append = pending.append
                    out.close()
                    runs.append(out)
                    out = _create_run(device, record_size, codec, prefix)
                    side.sort()
                    live = side
                    head = 0
                    side = []
                    side_append = side.append
            else:
                insort(live, nxt, head)
        if len(pending) >= emit_chunk:
            emit(out, pending)
            pending = []
            pending_append = pending.append
        if head:
            del live[:head]
            head = 0
    # Input exhausted: the live list's remaining records finish the
    # current run already in order, and the side list — everything
    # earmarked for the run after it — drains the same way into a fresh
    # run file.
    pending.extend(live[head:] if head else live)
    if pending:
        emit(out, pending)
    out.close()
    runs.append(out)
    if side:
        out = _create_run(device, record_size, codec, prefix)
        side.sort()
        emit(out, side)
        out.close()
        runs.append(out)
    return runs


def run_iterator(run: RecordStore) -> Iterator[Record]:
    """Stream a run's records sequentially (one buffered block at a time)."""
    return run.scan()
