"""Sorted-run helpers for the external merge sort.

A *run* is a sorted :class:`~repro.io.files.ExternalFile` produced during run
formation.  This module contains the two halves external sort is built from:
forming initial runs from an unsorted scan under a memory budget, and lazily
streaming a run back for merging.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget

__all__ = ["form_runs", "run_iterator"]

Record = Tuple[int, ...]
KeyFn = Callable[[Record], object]


def form_runs(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    prefix: str = "run",
) -> List[ExternalFile]:
    """Split ``records`` into memory-sized sorted runs written to disk.

    Each run holds at most ``memory.record_capacity(record_size)`` records,
    sorted in memory and written with sequential writes — the classic run
    formation pass of external merge sort.

    Returns:
        The list of run files (possibly empty for empty input).
    """
    capacity = max(1, memory.record_capacity(record_size))
    runs: List[ExternalFile] = []
    buffer: List[Record] = []
    for record in records:
        buffer.append(record)
        if len(buffer) >= capacity:
            runs.append(_write_run(device, buffer, record_size, key, prefix))
            buffer = []
    if buffer:
        runs.append(_write_run(device, buffer, record_size, key, prefix))
    return runs


def _write_run(
    device: BlockDevice,
    buffer: List[Record],
    record_size: int,
    key: Optional[KeyFn],
    prefix: str,
) -> ExternalFile:
    buffer.sort(key=key)
    return ExternalFile.from_records(
        device, device.temp_name(prefix), buffer, record_size
    )


def run_iterator(run: ExternalFile) -> Iterator[Record]:
    """Stream a run's records sequentially (one buffered block at a time)."""
    return run.scan()
