"""Variable-length-record files: the substrate for compressed storage.

The fixed-width :class:`~repro.io.files.ExternalFile` charges every record
the same accounted bytes.  Compressed formats (gap-encoded edge lists,
varint record streams) produce records of varying width, so this module
provides :class:`VarRecordFile`: records are byte strings, blocks are
filled to the block size by *accounted* byte length, and the ledger charges
exactly the blocks a real encoder would produce.

Like the fixed-width file, payloads are held as Python objects and only
their sizes are accounted — the compression *ratio* and the resulting
block-I/O savings are real; the CPU cost of bit-twiddling is not simulated.
(The codecs in :mod:`repro.io.codecs` do implement the real byte encoding,
and their property tests pin the accounted sizes to the encoded lengths.)
"""

from __future__ import annotations

from itertools import chain
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import StorageError
from repro.io.blocks import BlockDevice

__all__ = ["VarRecordFile", "varint_size"]


def varint_size(value: int) -> int:
    """Bytes a LEB128-style varint needs for ``value`` (>= 0)."""
    if value < 0:
        raise ValueError(f"varints encode non-negative integers, got {value}")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


class VarRecordFile:
    """An append-only file of variable-size records.

    Records are arbitrary Python payloads tagged with their accounted byte
    size; blocks close when the next record would overflow ``block_size``.
    A record whose accounted size alone exceeds the block size raises
    :class:`~repro.exceptions.StorageError` — records are never silently
    truncated or split across blocks.

    Args:
        device: the simulated disk.
        name: file name on the device.
        overwrite: replace an existing file of the same name.
    """

    def __init__(self, device: BlockDevice, name: str, overwrite: bool = False) -> None:
        self.device = device
        # Payload slot width 1: we pack (payload,) tuples and track bytes
        # ourselves, so capacity checks are done here, not in the device.
        self._file = device.create(name, record_size=1, overwrite=overwrite)
        self._file.block_capacity = device.block_size  # up to B one-byte units
        self._buffer: List[Tuple[object]] = []
        self._buffer_bytes = 0
        self._closed = False
        self.num_records = 0
        self.payload_bytes = 0

    @classmethod
    def open(cls, device: BlockDevice, name: str) -> "VarRecordFile":
        """Reattach to an existing var-record file, read-only.

        ``payload_bytes`` is 0 on a reopened file (the accounted sizes were
        charged when the file was written and are not recorded per record);
        only scanning and metadata are supported.
        """
        vf = cls.__new__(cls)
        vf.device = device
        vf._file = device.open(name)
        vf._file.block_capacity = device.block_size
        vf._buffer = []
        vf._buffer_bytes = 0
        vf._closed = True
        vf.num_records = vf._file.num_records
        vf.payload_bytes = 0
        return vf

    @property
    def name(self) -> str:
        """The file's name on the device."""
        return self._file.name

    @property
    def num_blocks(self) -> int:
        """Blocks written so far (excluding the open tail buffer)."""
        return self._file.num_blocks

    @property
    def tail_bytes(self) -> int:
        """Accounted bytes sitting in the open (unflushed) tail block.

        Codec-aware writers use this to detect block boundaries: a record
        that does not fit in the tail starts a fresh block, so gap chains
        must restart there.
        """
        return self._buffer_bytes

    def append(self, payload: object, nbytes: int) -> None:
        """Append one record whose accounted size is ``nbytes``."""
        if self._closed:
            raise StorageError(f"file {self.name!r} is closed for writing")
        if nbytes <= 0:
            raise ValueError("record size must be positive")
        if nbytes > self.device.block_size:
            raise StorageError(
                f"record of {nbytes} bytes exceeds the block size "
                f"{self.device.block_size}"
            )
        if self._buffer_bytes + nbytes > self.device.block_size:
            self._flush()
        self._buffer.append((payload,))
        self._buffer_bytes += nbytes
        self.num_records += 1
        self.payload_bytes += nbytes

    def append_batch(
        self,
        payloads: Sequence[object],
        sizes: Sequence[int],
        cuts: Sequence[int],
    ) -> None:
        """Append many records with pre-cut block boundaries.

        ``sizes[i]`` is payload ``i``'s accounted bytes and ``cuts`` lists
        the indices whose payload opens a new block (the tail flushes just
        before it lands) — exactly the flush points per-record
        :meth:`append` calls would hit, so blocks, counters, and charges
        are identical.  Size validation (positive, at most one block) is
        the caller's job: the codec layer's greedy walk already performed
        it while computing the cuts.
        """
        if self._closed:
            raise StorageError(f"file {self.name!r} is closed for writing")
        total = 0
        start = 0
        for cut in cuts:
            if cut > start:
                segment = sum(sizes[start:cut])
                # zip(seq) wraps each payload in a 1-tuple slot in C
                self._buffer.extend(zip(payloads[start:cut]))
                self._buffer_bytes += segment
                total += segment
            self._flush()
            start = cut
        segment = sum(sizes[start:])
        self._buffer.extend(zip(payloads[start:]))
        self._buffer_bytes += segment
        total += segment
        self.num_records += len(payloads)
        self.payload_bytes += total

    def _flush(self) -> None:
        if self._buffer:
            self.device.append_block(self._file, self._buffer)
            self._buffer = []
            self._buffer_bytes = 0

    def close(self) -> None:
        """Flush the tail block; the file becomes read-only."""
        if self._closed:
            return
        self._flush()
        self._closed = True

    def scan(self) -> Iterator[object]:
        """Stream payloads front to back with sequential block reads.

        Blocks hold ``(payload,)`` slots, so two nested C-level flattens
        stream the payloads without a per-record Python step."""
        return chain.from_iterable(chain.from_iterable(self.scan_blocks()))

    def scan_blocks(self) -> Iterator[Sequence[Tuple[object]]]:
        """Stream whole blocks sequentially — the block-granular iterator
        symmetric with :meth:`repro.io.files.ExternalFile.scan_blocks`.

        With a :class:`~repro.io.pool.SharedBufferPool` attached, blocks
        arrive through its readahead path (same charges, batched fetches).
        """
        yield from self.scan_block_range(0, None)

    def scan_block_range(
        self, start: int, stop: Optional[int] = None
    ) -> Iterator[Sequence[Tuple[object]]]:
        """Stream blocks ``start .. stop`` sequentially (``None``: to EOF) —
        the shard primitive mirroring :meth:`ExternalFile.scan_block_range`."""
        if not self._closed:
            raise StorageError(f"close {self.name!r} before scanning it")
        end = self._file.num_blocks if stop is None else min(stop, self._file.num_blocks)
        pool = self.device.pool
        if pool is not None:
            yield from pool.scan_blocks(self._file, start, end)
            return
        for index in range(start, end):
            yield self.device.read_block(self._file, index, sequential=True)

    def scan_range(self, start: int, stop: Optional[int] = None) -> Iterator[object]:
        """Stream the payloads of blocks ``start .. stop`` sequentially."""
        for block in self.scan_block_range(start, stop):
            yield from [payload for (payload,) in block]

    def rename(self, new_name: str, overwrite: bool = True) -> None:
        """Rename the file on the device (metadata only)."""
        self.device.rename(self.name, new_name, overwrite=overwrite)

    def delete(self) -> None:
        """Remove the file from the device."""
        self.device.delete(self.name)
