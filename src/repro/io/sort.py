"""External merge sort under a memory budget.

This is the ``sort(m)`` primitive of the paper's I/O model: run formation
reads and writes every block once; each merge pass reads and writes every
block once; the number of passes is ``ceil(log_F(#runs))`` where the fan-in
``F`` is bounded by the number of blocks that fit in memory minus one output
buffer.  All accesses are sequential, matching
``sort(m) = Theta(m/B * log_{M/B}(m/B))``.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.runs import form_runs

__all__ = ["external_sort", "external_sort_records", "merge_runs", "sorted_unique_scan"]

Record = Tuple[int, ...]
KeyFn = Callable[[Record], object]


def external_sort(
    infile: ExternalFile,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    unique: bool = False,
    out_name: Optional[str] = None,
    delete_input: bool = False,
) -> ExternalFile:
    """Sort an :class:`ExternalFile` into a new file.

    Args:
        infile: closed input file.
        memory: memory budget governing run size and merge fan-in.
        key: sort key (default: the record tuple itself).
        unique: drop duplicate *records* (exact tuple equality) during the
            final merge — used for node files and lazy parallel-edge removal.
        out_name: name for the output file (a temp name when omitted).
        delete_input: delete ``infile`` once the sorted copy exists.

    Returns:
        A new sorted (optionally deduplicated) file on the same device.
    """
    device = infile.device
    result = external_sort_records(
        device,
        infile.scan(),
        record_size=infile.record_size,
        memory=memory,
        key=key,
        unique=unique,
        out_name=out_name,
    )
    if delete_input:
        infile.delete()
    return result


def external_sort_records(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    unique: bool = False,
    out_name: Optional[str] = None,
) -> ExternalFile:
    """Sort a record stream into a new file (see :func:`external_sort`)."""
    memory.validate_against_block(device.block_size)
    runs = form_runs(device, records, record_size, memory, key=key)
    out_name = out_name if out_name is not None else device.temp_name("sorted")
    if not runs:
        return ExternalFile.from_records(device, out_name, [], record_size)
    fan_in = max(2, memory.block_capacity(device.block_size) - 1)
    while len(runs) > fan_in:
        runs = _merge_pass(device, runs, record_size, fan_in, key)
    merged = merge_runs((run.scan() for run in runs), key=key)
    if unique:
        merged = sorted_unique_scan(merged)
    result = ExternalFile.from_records(device, out_name, merged, record_size, overwrite=True)
    for run in runs:
        run.delete()
    return result


def _merge_pass(
    device: BlockDevice,
    runs: List[ExternalFile],
    record_size: int,
    fan_in: int,
    key: Optional[KeyFn],
) -> List[ExternalFile]:
    """Merge groups of ``fan_in`` runs into longer runs (one full pass)."""
    next_runs: List[ExternalFile] = []
    for start in range(0, len(runs), fan_in):
        group = runs[start : start + fan_in]
        merged = merge_runs((run.scan() for run in group), key=key)
        next_runs.append(
            ExternalFile.from_records(
                device, device.temp_name("merge"), merged, record_size
            )
        )
        for run in group:
            run.delete()
    return next_runs


def merge_runs(
    streams: Iterable[Iterator[Record]], key: Optional[KeyFn] = None
) -> Iterator[Record]:
    """K-way merge of sorted record streams (an in-memory heap of heads)."""
    if key is None:
        return heapq.merge(*streams)
    return heapq.merge(*streams, key=key)


def sorted_unique_scan(records: Iterable[Record]) -> Iterator[Record]:
    """Drop exact-duplicate neighbors from an already-sorted stream."""
    previous: Optional[Record] = None
    for record in records:
        if record != previous:
            yield record
            previous = record
