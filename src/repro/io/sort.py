"""External merge sort under a memory budget, with a streaming interface.

This is the ``sort(m)`` primitive of the paper's I/O model: run formation
reads and writes every block once; each merge pass reads and writes every
block once; the number of passes is ``ceil(log_F(#runs))`` where the fan-in
``F`` is bounded by the number of blocks that fit in memory minus one output
buffer.  All accesses are sequential, matching
``sort(m) = Theta(m/B * log_{M/B}(m/B))``.

Two constant-factor levers on top of the textbook algorithm:

* Run formation uses **replacement selection** by default
  (:func:`repro.io.runs.form_runs_replacement_selection`), so an input of
  ``m`` records forms ``≈ m / 2M`` runs instead of ``m / M`` — fewer runs
  means fewer merge passes and more sorts that finish as a single run.
* :func:`external_sort_stream` exposes the *final merge as an iterator*
  instead of materializing it, so a downstream operator (a merge join, a
  semi-join filter, another sort's run formation) can consume sorted output
  directly.  Every fused boundary eliminates one full write pass and one
  full read pass over the stream — the pipelining the tentpole operators in
  ``repro.core`` are built on.  :func:`external_sort_records` is the
  materializing wrapper; when run formation yields a single run (input
  ``≲ 2M``) it renames the run into place instead of copying it, saving
  another read+write pass.

Merge passes are reported to the device's :class:`~repro.io.stats.IOStats`
(``stats.merge_passes`` / ``stats.runs_formed``) so benchmarks can verify
the replacement-selection claim directly.

Both ends of the sort ride the *batch record path*: run formation stages
its output in chunks, and merge output streams into
``RecordStore.extend``, which materializes generator input
``BATCH_CHUNK`` records at a time and hands each slice to the
block-granularity codec encoders (:mod:`repro.io.codecs`).  The batching
is purely a host-CPU optimization — block cuts, codec chains, and every
ledger counter are identical to per-record appends, which is what the
batch/scalar equivalence suite pins down.
"""

from __future__ import annotations

import heapq
from itertools import groupby
from operator import itemgetter
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.io.blocks import BlockDevice
from repro.io.codecs import Codec, RecordStore, record_file_from_records, resolve_codec
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.runs import (
    KEY_DST_AUX_SRC,
    KEY_DST_SRC,
    KEY_SRC_DST,
    form_runs,
    form_runs_replacement_selection,
)
from repro.kernels import merge_two_keyed, merge_two_unkeyed

__all__ = [
    "KEY_DST_AUX_SRC",
    "KEY_DST_SRC",
    "KEY_SRC_DST",
    "external_sort",
    "external_sort_records",
    "external_sort_stream",
    "merge_runs",
    "sorted_unique_scan",
]

Record = Tuple[int, ...]
KeyFn = Callable[[Record], object]

RUN_FORMATIONS = {
    "replacement-selection": form_runs_replacement_selection,
    "classic": form_runs,
}

DEFAULT_RUN_FORMATION = "replacement-selection"


def external_sort(
    infile: RecordStore,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    unique: bool = False,
    out_name: Optional[str] = None,
    delete_input: bool = False,
    codec: Union[None, str, Codec] = None,
    sort_field: Optional[int] = None,
) -> RecordStore:
    """Sort a record file into a new file.

    Args:
        infile: closed input file (fixed-width or compressed).
        memory: memory budget governing run size and merge fan-in.
        key: sort key (default: the record tuple itself).
        unique: drop duplicate *records* (exact tuple equality) during the
            final merge — used for node files and lazy parallel-edge removal.
        out_name: name for the output file (a temp name when omitted).
        delete_input: delete ``infile`` once the sorted copy exists.
        codec: storage codec for runs, merge outputs, and the result
            (``None``: the device default, then the module default).
        sort_field: index of the record field that is non-decreasing under
            ``key`` — the gap-encoded field.  Defaults to 0 when ``key`` is
            ``None`` (records sort by their own tuples); with a custom key
            and no hint, gap encoding degrades to plain varints.

    Returns:
        A new sorted (optionally deduplicated) file on the same device.
    """
    device = infile.device
    result = external_sort_records(
        device,
        infile.scan(),
        record_size=infile.record_size,
        memory=memory,
        key=key,
        unique=unique,
        out_name=out_name,
        codec=codec,
        sort_field=sort_field,
    )
    if delete_input:
        infile.delete()
    return result


def _form_and_reduce_runs(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn],
    run_formation: Optional[str],
    codec: Union[None, str, Codec] = None,
    sort_field: Optional[int] = None,
) -> Tuple[List[RecordStore], Codec]:
    """Run formation plus intermediate merge passes down to one merge's
    worth of runs; shared by the streaming and materializing sorts.

    The codec is resolved here, once per sort: runs, intermediate merge
    outputs, and (in the materializing wrapper) the final file all share
    it.  With ``key=None`` records sort by their own tuples, so field 0 is
    the non-decreasing gap field unless the caller says otherwise.
    """
    memory.validate_against_block(device.block_size)
    if sort_field is None and key is None:
        sort_field = 0
    resolved = resolve_codec(codec, record_size, sort_field, device=device)
    form = RUN_FORMATIONS[run_formation or DEFAULT_RUN_FORMATION]
    runs = form(device, records, record_size, memory, key=key, codec=resolved)
    device.stats.record_runs_formed(len(runs))
    fan_in = max(2, memory.block_capacity(device.block_size) - 1)
    while len(runs) > fan_in:
        runs = _merge_pass(device, runs, record_size, fan_in, key, resolved)
    return runs, resolved


def external_sort_stream(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    unique: bool = False,
    run_formation: Optional[str] = None,
    codec: Union[None, str, Codec] = None,
    sort_field: Optional[int] = None,
) -> Iterator[Record]:
    """Sort a record stream and *yield* the result instead of writing it.

    The producer side of operator fusion: run formation and any
    intermediate merge passes happen eagerly on first ``next()``, then the
    final merge streams records straight to the consumer.  Compared to
    ``external_sort_records`` + ``scan()``, the fused boundary saves one
    sequential write pass and one sequential read pass over the data.

    Run files are deleted when the stream is exhausted or closed, so
    abandoning the iterator early does not leak simulated disk space.
    """
    runs, _ = _form_and_reduce_runs(
        device, records, record_size, memory, key, run_formation, codec, sort_field
    )
    if not runs:
        return
    try:
        if len(runs) > 1:
            device.stats.record_merge_pass()
        merged = merge_runs((run.scan() for run in runs), key=key)
        if unique:
            merged = sorted_unique_scan(merged)
        yield from merged
    finally:
        for run in runs:
            if device.exists(run.name):
                run.delete()


def external_sort_records(
    device: BlockDevice,
    records: Iterable[Record],
    record_size: int,
    memory: MemoryBudget,
    key: Optional[KeyFn] = None,
    unique: bool = False,
    out_name: Optional[str] = None,
    run_formation: Optional[str] = None,
    codec: Union[None, str, Codec] = None,
    sort_field: Optional[int] = None,
) -> RecordStore:
    """Sort a record stream into a new file (see :func:`external_sort`)."""
    runs, resolved = _form_and_reduce_runs(
        device, records, record_size, memory, key, run_formation, codec, sort_field
    )
    out_name = out_name if out_name is not None else device.temp_name("sorted")
    if not runs:
        return record_file_from_records(
            device, out_name, [], record_size, codec=resolved
        )
    if len(runs) == 1 and not unique:
        # A single run already *is* the sorted output — rename it into
        # place instead of copying (saves one read+write pass).
        run = runs[0]
        if device.exists(out_name):
            device.delete(out_name)
        run.rename(out_name)
        return run
    device.stats.record_merge_pass()
    merged = merge_runs((run.scan() for run in runs), key=key)
    if unique:
        merged = sorted_unique_scan(merged)
    result = record_file_from_records(
        device, out_name, merged, record_size, codec=resolved, overwrite=True
    )
    for run in runs:
        run.delete()
    return result


def _merge_pass(
    device: BlockDevice,
    runs: List[RecordStore],
    record_size: int,
    fan_in: int,
    key: Optional[KeyFn],
    codec: Codec,
) -> List[RecordStore]:
    """Merge groups of ``fan_in`` runs into longer runs (one full pass).

    The groups are independent (disjoint inputs, separate outputs), so
    when the device has a :class:`~repro.io.parallel.WorkerPool` attached
    they run as one barrier of parallel tasks.  Each group's reads and
    writes are identical either way — the pool only changes overlap, so
    the ledger totals match the serial pass exactly.
    """
    device.stats.record_merge_pass()

    def merge_group(group: List[RecordStore]) -> RecordStore:
        merged = merge_runs((run.scan() for run in group), key=key)
        out = record_file_from_records(
            device, device.temp_name("merge"), merged, record_size, codec=codec
        )
        for run in group:
            run.delete()
        return out

    groups = [runs[start : start + fan_in] for start in range(0, len(runs), fan_in)]
    pool = device.worker_pool
    if pool is not None and len(groups) > 1:
        return list(pool.map(merge_group, groups))
    return [merge_group(group) for group in groups]


def merge_runs(
    streams: Iterable[Iterator[Record]], key: Optional[KeyFn] = None
) -> Iterator[Record]:
    """K-way merge of sorted record streams (an in-memory heap of heads).

    Small fan-ins are special-cased: one stream needs no merge at all and
    two streams merge faster through the kernel layer's dedicated 2-way
    merges — chunked Timsort galloping when the kernel fast path is
    active, a direct two-pointer loop otherwise — than through the
    generic heap (stability is preserved — on a tie the *earlier* stream
    wins, exactly :func:`heapq.merge`'s contract).
    """
    streams = list(streams)
    if len(streams) == 1:
        return iter(streams[0])
    if len(streams) == 2:
        if key is None:
            return merge_two_unkeyed(streams[0], streams[1])
        return merge_two_keyed(streams[0], streams[1], key)
    if key is None:
        return heapq.merge(*streams)
    return heapq.merge(*streams, key=key)


def sorted_unique_scan(records: Iterable[Record]) -> Iterator[Record]:
    """Drop exact-duplicate neighbors from an already-sorted stream.

    ``groupby`` with no key function buckets consecutive ``==`` records
    and hands back each run's first element as the group key, so the
    whole dedup pipeline (comparisons and skipping) runs in C — Python
    resumes once per *unique* record, not once per record.
    """
    return map(itemgetter(0), groupby(records))
