"""Record-oriented files over the simulated block device.

:class:`ExternalFile` is the unit every external algorithm in this package
manipulates: an immutable-once-written sequence of fixed-width integer-tuple
records.  Appending goes through a one-block write buffer (sequential
writes); :meth:`scan` streams records back with sequential reads;
:meth:`read_block_random` models a disk seek and charges a random read.
"""

from __future__ import annotations

from itertools import chain, islice
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import StorageError
from repro.io.blocks import BlockDevice, DiskFile

__all__ = ["ExternalFile"]

Record = Tuple[int, ...]


class ExternalFile:
    """A fixed-width record file on a :class:`BlockDevice`.

    Typical lifecycle::

        ef = ExternalFile.create(device, "edges", record_size=8)
        ef.extend((u, v) for u, v in edges)
        ef.close()                       # flush the partial tail block
        for u, v in ef.scan():           # sequential re-read
            ...

    Args:
        device: the block device holding the file.
        disk_file: the underlying :class:`DiskFile`.
    """

    def __init__(self, device: BlockDevice, disk_file: DiskFile) -> None:
        self.device = device
        self._file = disk_file
        self._write_buffer: List[Record] = []
        self._closed = False

    # -- constructors ------------------------------------------------------

    @classmethod
    def create(
        cls,
        device: BlockDevice,
        name: str,
        record_size: int,
        overwrite: bool = False,
    ) -> "ExternalFile":
        """Create a new empty file of ``record_size``-byte records."""
        return cls(device, device.create(name, record_size, overwrite=overwrite))

    @classmethod
    def from_records(
        cls,
        device: BlockDevice,
        name: str,
        records: Iterable[Record],
        record_size: int,
        overwrite: bool = False,
    ) -> "ExternalFile":
        """Create a file, write all ``records`` sequentially, and close it."""
        ef = cls.create(device, name, record_size, overwrite=overwrite)
        ef.extend(records)
        ef.close()
        return ef

    @classmethod
    def open(cls, device: BlockDevice, name: str) -> "ExternalFile":
        """Open an existing file for reading."""
        ef = cls(device, device.open(name))
        ef._closed = True
        return ef

    # -- metadata ----------------------------------------------------------

    @property
    def name(self) -> str:
        """The file's name on the device."""
        return self._file.name

    @property
    def record_size(self) -> int:
        """Width of one record in (simulated) bytes."""
        return self._file.record_size

    @property
    def num_records(self) -> int:
        """Number of records written (including any still buffered)."""
        return self._file.num_records + len(self._write_buffer)

    @property
    def num_blocks(self) -> int:
        """Number of blocks on disk (excludes the unflushed write buffer)."""
        return self._file.num_blocks

    @property
    def nbytes(self) -> int:
        """Logical payload size in bytes (records * record width)."""
        return self.num_records * self.record_size

    def __len__(self) -> int:
        return self.num_records

    # -- writing -----------------------------------------------------------

    def _flush_threshold(self) -> int:
        """Records buffered before flushing: one block, or — with a
        coalescing pool attached — ``coalesce_writes`` blocks batched."""
        pool = self.device.pool
        coalesce = pool.coalesce_writes if pool is not None else 1
        return self._file.block_capacity * coalesce

    def _flush_full_blocks(self, final: bool = False) -> None:
        """Write buffered records out as whole blocks, back to back.  Each
        block is charged one sequential write, exactly as without
        coalescing; only the submission batching changes."""
        capacity = self._file.block_capacity
        buffer = self._write_buffer
        flushed = 0
        pool = self.device.pool
        if pool is not None and len(buffer) > capacity:
            pool.coalesced_flushes += 1
        while len(buffer) - flushed >= capacity:
            self.device.append_block(self._file, buffer[flushed : flushed + capacity])
            flushed += capacity
        if final and len(buffer) > flushed:
            self.device.append_block(self._file, buffer[flushed:])
            flushed = len(buffer)
        if flushed:
            # Fixed-width storage: stored bytes equal the logical footprint.
            nbytes = flushed * self.record_size
            self.device.stats.record_payload_write(
                flushed, nbytes, nbytes, self.record_size
            )
        self._write_buffer = buffer[flushed:]

    def append(self, record: Record) -> None:
        """Append one record through the sequential write buffer."""
        if self._closed:
            raise StorageError(f"file {self.name!r} is closed for writing")
        self._write_buffer.append(record)
        if len(self._write_buffer) >= self._flush_threshold():
            self._flush_full_blocks()

    def extend(self, records: Iterable[Record]) -> None:
        """Append many records through the sequential write buffer.

        Batched: the buffer is filled to exactly the flush threshold per
        step, so full blocks flush in the same buffer states as per-record
        :meth:`append` calls — identical block cuts, identical coalesced
        flush counts — without a Python-level call per record.
        """
        if self._closed:
            raise StorageError(f"file {self.name!r} is closed for writing")
        if isinstance(records, (list, tuple)):
            position = 0
            remaining = len(records)
        else:
            iterator = iter(records)
            position = remaining = None
        while True:
            threshold = self._flush_threshold()
            buffer = self._write_buffer
            take = threshold - len(buffer)
            if take <= 0:  # threshold shrank under a full buffer
                self._flush_full_blocks()
                continue
            if position is not None:
                if not remaining:
                    return
                buffer.extend(records[position : position + take])
                taken = min(take, remaining)
                position += taken
                remaining -= taken
            else:
                chunk = list(islice(iterator, take))
                if not chunk:
                    return
                buffer.extend(chunk)
            if len(buffer) >= threshold:
                self._flush_full_blocks()

    def close(self) -> None:
        """Flush the partial tail block; the file becomes read-only."""
        if self._write_buffer:
            self._flush_full_blocks(final=True)
        self._closed = True

    # -- reading -----------------------------------------------------------

    def scan(self) -> Iterator[Record]:
        """Stream all records front to back with sequential block reads.

        With a :class:`~repro.io.pool.SharedBufferPool` attached, blocks
        arrive through its readahead path (same charges, batched fetches).
        """
        if not self._closed:
            raise StorageError(f"close {self.name!r} before scanning it")
        return chain.from_iterable(self.scan_blocks())

    def scan_reverse(self) -> Iterator[Record]:
        """Stream all records back to front (a backward sequential scan;
        each block is still read exactly once)."""
        if not self._closed:
            raise StorageError(f"close {self.name!r} before scanning it")
        for index in range(self._file.num_blocks - 1, -1, -1):
            block = self.device.read_block(self._file, index, sequential=True)
            yield from reversed(block)

    def scan_blocks(self) -> Iterator[Sequence[Record]]:
        """Stream whole blocks sequentially (for block-granular algorithms)."""
        return self.scan_block_range(0, None)

    def scan_block_range(
        self, start: int, stop: Optional[int] = None
    ) -> Iterator[Sequence[Record]]:
        """Stream blocks ``start .. stop`` sequentially (``None``: to EOF).

        The shard primitive of the parallel operators: disjoint ranges of
        one file can be scanned concurrently, and scanning a partition of
        ranges in order charges exactly what one whole-file scan charges.
        """
        if not self._closed:
            raise StorageError(f"close {self.name!r} before scanning it")
        end = self._file.num_blocks if stop is None else min(stop, self._file.num_blocks)
        pool = self.device.pool
        if pool is not None:
            yield from pool.scan_blocks(self._file, start, end)
            return
        for index in range(start, end):
            yield self.device.read_block(self._file, index, sequential=True)

    def scan_range(self, start: int, stop: Optional[int] = None) -> Iterator[Record]:
        """Stream the records of blocks ``start .. stop`` sequentially."""
        for block in self.scan_block_range(start, stop):
            yield from block

    def read_block_random(self, index: int) -> Sequence[Record]:
        """Read one block by index, charging a *random* read (a seek) —
        unless a caching pool serves it from memory for free."""
        pool = self.device.pool
        if pool is not None:
            return pool.read_block(self._file, index, sequential=False)
        return self.device.read_block(self._file, index, sequential=False)

    def read_record_random(self, position: int) -> Record:
        """Read the record at ``position`` via a random block read."""
        if not 0 <= position < self._file.num_records:
            raise StorageError(
                f"record {position} out of range for {self.name!r} "
                f"({self._file.num_records} records)"
            )
        capacity = self._file.block_capacity
        block = self.read_block_random(position // capacity)
        return block[position % capacity]

    # -- management --------------------------------------------------------

    def delete(self) -> None:
        """Remove the file from the device (no I/O is charged)."""
        self.device.delete(self.name)

    def rename(self, new_name: str, overwrite: bool = True) -> None:
        """Rename the file on the device (metadata only)."""
        self.device.rename(self.name, new_name, overwrite=overwrite)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExternalFile({self.name!r}, records={self.num_records}, "
            f"blocks={self.num_blocks}, record_size={self.record_size})"
        )
