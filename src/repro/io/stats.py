"""I/O accounting for the simulated external-memory model.

The paper evaluates algorithms by the number of block I/Os they perform and
distinguishes the *sequential* access pattern of scans and external sorts
from the *random* accesses of external DFS.  :class:`IOStats` is the ledger
every simulated device writes into; it tracks reads/writes split by
sequential/random, optionally broken down by a user-pushed *phase* label
(e.g. ``"contraction"`` / ``"expansion"``), and enforces an optional
:class:`IOBudget`.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.exceptions import IOBudgetExceeded

__all__ = [
    "IOBudget",
    "IOStats",
    "IOSnapshot",
    "HealthLedger",
    "RECOVERY_PHASE",
    "RETRY_PHASE",
    "REPAIR_PHASE",
    "FAULT_PHASES",
]

RECOVERY_PHASE = "recovery"
"""Phase label for checkpoint-resume work: journal validation reads on
restart are charged here, so recovery overhead is separable from the
algorithm's own ledger (the MTTR report subtracts it)."""

RETRY_PHASE = "retry"
"""Phase label for block I/Os burned on failed transient attempts.  Charged
via :meth:`IOStats.record_fault_io` outside the phase stack, so a faulty
run's per-phase ledger stays equal to the fault-free run's and the *only*
delta is this label (plus :data:`REPAIR_PHASE`)."""

REPAIR_PHASE = "repair"
"""Phase label for degraded-mode read-repair I/Os: parity + sibling reads
and the rewrite of a reconstructed block."""

FAULT_PHASES = (RETRY_PHASE, REPAIR_PHASE)
"""The labels fault handling may charge; every other label must be
byte-identical between a faulty and a fault-free run."""


class HealthLedger:
    """Counters for fault-tolerance work, kept next to the I/O ledger.

    Everything here is *bookkeeping about degradation*, not block I/O:
    how many transient attempts were retried, how many blocks were
    read-repaired from parity, how many pool tasks were re-dispatched
    after a worker died or hung, how many simulated backoff seconds the
    retry policy charged, and which executor degradations happened.
    Surfaced in ``scc -v``, bench tables/JSON, and ``--trace-json``.
    """

    _COUNTERS = (
        "retries",
        "repairs",
        "redispatches",
        "parity_writes",
        "escalations",
    )

    def __init__(self) -> None:
        self.retries = 0
        self.repairs = 0
        self.redispatches = 0
        self.parity_writes = 0
        self.escalations = 0
        self.backoff_seconds = 0.0
        # top-level phase label -> simulated backoff seconds spent there
        # (the policy's per-phase deadline is enforced against this).
        self.backoff_by_phase: Dict[str, float] = {}
        # Human-readable degradation events, in order: executor fallbacks,
        # channel outages survived, re-dispatched shards, ...
        self.events: List[str] = []

    def record_event(self, message: str) -> None:
        self.events.append(message)

    def snapshot(self) -> dict:
        """A JSON-friendly copy of the ledger (events included)."""
        out = {name: getattr(self, name) for name in self._COUNTERS}
        out["backoff_seconds"] = self.backoff_seconds
        out["events"] = list(self.events)
        return out

    def delta(self, start: dict) -> dict:
        """The ledger delta since a :meth:`snapshot` taken earlier."""
        now = self.snapshot()
        out = {
            name: now[name] - start.get(name, 0) for name in self._COUNTERS
        }
        out["backoff_seconds"] = now["backoff_seconds"] - start.get(
            "backoff_seconds", 0.0
        )
        out["events"] = now["events"][len(start.get("events", ())) :]
        return out

    @property
    def faulted(self) -> bool:
        """True when any fault-tolerance machinery actually fired."""
        return bool(
            self.retries
            or self.repairs
            or self.redispatches
            or self.escalations
            or self.events
        )

    def reset(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)
        self.backoff_seconds = 0.0
        self.backoff_by_phase.clear()
        self.events.clear()


@dataclass
class IOBudget:
    """A cap on the total number of block I/Os a run may perform.

    This is the deterministic analogue of the paper's 24-hour wall-clock
    limit: once ``max_ios`` block operations have been counted, the next
    operation raises :class:`~repro.exceptions.IOBudgetExceeded` and the
    benchmark harness reports the run as ``INF``.
    """

    max_ios: int

    def check(self, used: int) -> None:
        """Raise :class:`IOBudgetExceeded` if ``used`` exceeds the cap."""
        if used > self.max_ios:
            raise IOBudgetExceeded(used, self.max_ios)


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable copy of the four I/O counters at a point in time."""

    seq_reads: int = 0
    seq_writes: int = 0
    rand_reads: int = 0
    rand_writes: int = 0

    @property
    def total(self) -> int:
        """Total number of block I/Os."""
        return self.seq_reads + self.seq_writes + self.rand_reads + self.rand_writes

    @property
    def sequential(self) -> int:
        """Number of sequential block I/Os (scans, sort runs, appends)."""
        return self.seq_reads + self.seq_writes

    @property
    def random(self) -> int:
        """Number of random block I/Os (seeks into the middle of files)."""
        return self.rand_reads + self.rand_writes

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            seq_reads=self.seq_reads - other.seq_reads,
            seq_writes=self.seq_writes - other.seq_writes,
            rand_reads=self.rand_reads - other.rand_reads,
            rand_writes=self.rand_writes - other.rand_writes,
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        """Counter-wise sum — how the service rolls per-tenant ledgers up
        into one service-level view."""
        return IOSnapshot(
            seq_reads=self.seq_reads + other.seq_reads,
            seq_writes=self.seq_writes + other.seq_writes,
            rand_reads=self.rand_reads + other.rand_reads,
            rand_writes=self.rand_writes + other.rand_writes,
        )

    def to_dict(self) -> Dict[str, int]:
        """JSON-friendly counters plus the derived totals."""
        return {
            "seq_reads": self.seq_reads,
            "seq_writes": self.seq_writes,
            "rand_reads": self.rand_reads,
            "rand_writes": self.rand_writes,
            "sequential": self.sequential,
            "random": self.random,
            "total": self.total,
        }


class IOStats:
    """Mutable ledger of block I/Os performed on a simulated device.

    Counters are in units of *blocks*.  ``record_read`` / ``record_write``
    are called by the :class:`~repro.io.blocks.BlockDevice`; user code only
    reads the properties, takes snapshots, or pushes phase labels::

        stats = IOStats(budget=IOBudget(10_000))
        with stats.phase("contraction"):
            ...  # device operations are attributed to "contraction"
        print(stats.total, stats.by_phase["contraction"].total)
    """

    def __init__(self, budget: Optional[IOBudget] = None) -> None:
        self.seq_reads = 0
        self.seq_writes = 0
        self.rand_reads = 0
        self.rand_writes = 0
        self.merge_passes = 0
        self.runs_formed = 0
        self.records_written = 0
        self.bytes_logical = 0
        self.bytes_stored = 0
        self.budget = budget
        # label -> [seq_reads, seq_writes, rand_reads, rand_writes].  Kept
        # as plain mutable lists so the per-I/O attribution is one C-level
        # ``list[idx] += blocks``; the public :attr:`by_phase` view freezes
        # them into :class:`IOSnapshot` objects on read.
        self._phase_counts: Dict[str, list[int]] = {}
        self.passes_by_phase: Dict[str, int] = {}
        self.runs_by_phase: Dict[str, int] = {}
        # label -> [records, logical bytes, stored bytes]
        self.bytes_by_phase: Dict[str, list[int]] = {}
        # label -> host wall-clock seconds spent inside the phase.  Unlike
        # the I/O counters this is a *measurement*, not a simulation
        # quantity — regression gates must never compare it.
        self.seconds_by_phase: Dict[str, float] = {}
        # logical record width -> [records, stored bytes] (feeds the cost
        # model's bytes-per-record calibration)
        self.bytes_by_width: Dict[int, list[int]] = {}
        self._phase_stack: list[str] = []
        # Labels entered while the stack was empty, in first-entry order —
        # the run's outermost phases, which partition its attributed I/O
        # (the makespan meter in repro.io.parallel sums channel maxima over
        # exactly these, so nested labels are never double counted).
        self.top_level_phases: List[str] = []
        # Worker threads of a parallel executor record into the same ledger
        # concurrently; the counter updates and by-phase read-modify-writes
        # must be atomic.  The budget check stays outside the lock so an
        # IOBudgetExceeded never propagates with the lock held.
        self._lock = threading.Lock()
        self.health = HealthLedger()

    # -- recording (called by the device) ---------------------------------

    def record_read(self, sequential: bool, blocks: int = 1) -> None:
        """Count ``blocks`` block reads with the given access pattern."""
        with self._lock:
            if sequential:
                self.seq_reads += blocks
            else:
                self.rand_reads += blocks
            self._attribute(sequential, blocks, is_read=True)
        self._enforce_budget()

    def record_write(self, sequential: bool, blocks: int = 1) -> None:
        """Count ``blocks`` block writes with the given access pattern."""
        with self._lock:
            if sequential:
                self.seq_writes += blocks
            else:
                self.rand_writes += blocks
            self._attribute(sequential, blocks, is_read=False)
        self._enforce_budget()

    def record_merge_pass(self, passes: int = 1) -> None:
        """Count ``passes`` full merge passes of the external sort.

        A *pass* reads and (for intermediate passes) rewrites every block
        of the data being sorted; the external sort reports one per merge
        level, and none when run formation already produced a single run.
        The counter is attributed to every active phase label, so per-phase
        pass counts (``passes_by_phase``) let a benchmark compare run
        formation strategies level by level.
        """
        with self._lock:
            self.merge_passes += passes
            for label in self._phase_stack:
                self.passes_by_phase[label] = self.passes_by_phase.get(label, 0) + passes

    def record_runs_formed(self, runs: int) -> None:
        """Count ``runs`` initial sorted runs written by run formation."""
        with self._lock:
            self.runs_formed += runs
            for label in self._phase_stack:
                self.runs_by_phase[label] = self.runs_by_phase.get(label, 0) + runs

    def record_payload_write(
        self, records: int, logical: int, stored: int, record_size: int
    ) -> None:
        """Account the payload bytes of ``records`` written records.

        ``logical`` is the fixed-width footprint (records × declared record
        width); ``stored`` is what landed on disk after the stream's codec
        — equal for fixed-width files, smaller for compressed ones.  The
        ratio between the per-phase sums is the phase's compression ratio,
        and the per-width sums calibrate the cost model's stored
        bytes-per-record estimates.
        """
        if records <= 0:
            return
        with self._lock:
            self.records_written += records
            self.bytes_logical += logical
            self.bytes_stored += stored
            for label in self._phase_stack:
                entry = self.bytes_by_phase.setdefault(label, [0, 0, 0])
                entry[0] += records
                entry[1] += logical
                entry[2] += stored
            width_entry = self.bytes_by_width.setdefault(record_size, [0, 0])
            width_entry[0] += records
            width_entry[1] += stored

    def record_fault_io(
        self, label: str, is_read: bool, sequential: bool, blocks: int = 1
    ) -> None:
        """Count fault-handling I/O under ``label`` instead of the phase stack.

        Failed transient attempts (:data:`RETRY_PHASE`) and read-repair
        traffic (:data:`REPAIR_PHASE`) go through here: the blocks count
        toward the global totals — and therefore toward the
        :class:`IOBudget`, so a run cannot retry its way past the paper's
        INF cutoff — but are attributed *only* to the given label, never
        to the active algorithm phases.  That keeps the per-phase ledger
        of a faulty run byte-identical to the fault-free run, with the
        fault labels as the whole, separately auditable delta.
        """
        with self._lock:
            if is_read and sequential:
                self.seq_reads += blocks
            elif is_read:
                self.rand_reads += blocks
            elif sequential:
                self.seq_writes += blocks
            else:
                self.rand_writes += blocks
            idx = (0 if sequential else 2) if is_read else (1 if sequential else 3)
            counts = self._phase_counts.get(label)
            if counts is None:
                counts = self._phase_counts[label] = [0, 0, 0, 0]
            counts[idx] += blocks
        self._enforce_budget()

    def fault_total(self) -> int:
        """Block I/Os charged to the fault labels (retry + repair)."""
        return sum(self.phase_total(label) for label in FAULT_PHASES)

    def _attribute(self, sequential: bool, blocks: int, is_read: bool) -> None:
        idx = (0 if sequential else 2) if is_read else (1 if sequential else 3)
        phase_counts = self._phase_counts
        for label in self._phase_stack:
            counts = phase_counts.get(label)
            if counts is None:
                counts = phase_counts[label] = [0, 0, 0, 0]
            counts[idx] += blocks

    def _enforce_budget(self) -> None:
        if self.budget is not None:
            self.budget.check(self.total)

    # -- reading -----------------------------------------------------------

    @property
    def total(self) -> int:
        """Total block I/Os so far."""
        return self.seq_reads + self.seq_writes + self.rand_reads + self.rand_writes

    @property
    def sequential(self) -> int:
        """Sequential block I/Os so far."""
        return self.seq_reads + self.seq_writes

    @property
    def random(self) -> int:
        """Random block I/Os so far."""
        return self.rand_reads + self.rand_writes

    def snapshot(self) -> IOSnapshot:
        """Freeze the current counters (use ``later - earlier`` for deltas)."""
        with self._lock:
            return IOSnapshot(self.seq_reads, self.seq_writes, self.rand_reads, self.rand_writes)

    @property
    def by_phase(self) -> Dict[str, IOSnapshot]:
        """Per-phase I/O counters, frozen into snapshots at read time."""
        with self._lock:
            return {
                label: IOSnapshot(*counts)
                for label, counts in self._phase_counts.items()
            }

    def phase_total(self, label: str) -> int:
        """Total block I/Os attributed to ``label`` (0 if it never ran)."""
        counts = self._phase_counts.get(label)
        return sum(counts) if counts is not None else 0

    @property
    def current_phase(self) -> str:
        """The active phase stack as a ``/``-joined path (``""`` outside
        any phase) — what an executed plan stage's span is labelled with."""
        return "/".join(self._phase_stack)

    @contextlib.contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Attribute all I/O inside the ``with`` block to ``label``.

        Phases nest: inner-phase I/O is attributed to every label on the
        stack, so a ``"contraction"`` phase containing a ``"sort"`` phase
        charges both.

        Only the orchestrating thread pushes phases; worker tasks of a
        parallel executor run entirely *inside* a phase, so the stack is
        never mutated while another thread attributes against it.
        """
        if not self._phase_stack and label not in self.top_level_phases:
            self.top_level_phases.append(label)
        self._phase_stack.append(label)
        started = time.perf_counter()
        try:
            yield
        finally:
            self._phase_stack.pop()
            # Wall-clock is attributed to the exiting label only: an outer
            # label's own span already covers the time its inner phases ran.
            elapsed = time.perf_counter() - started
            self.seconds_by_phase[label] = (
                self.seconds_by_phase.get(label, 0.0) + elapsed
            )

    def reset(self) -> None:
        """Zero every counter and drop all phase attributions."""
        self.seq_reads = self.seq_writes = self.rand_reads = self.rand_writes = 0
        self.merge_passes = 0
        self.runs_formed = 0
        self.records_written = 0
        self.bytes_logical = 0
        self.bytes_stored = 0
        self._phase_counts.clear()
        self.passes_by_phase.clear()
        self.runs_by_phase.clear()
        self.bytes_by_phase.clear()
        self.seconds_by_phase.clear()
        self.bytes_by_width.clear()
        self.top_level_phases.clear()
        self.health.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IOStats(seq_reads={self.seq_reads}, seq_writes={self.seq_writes}, "
            f"rand_reads={self.rand_reads}, rand_writes={self.rand_writes})"
        )
