"""External priority queue (the Kumar–Schwabe substrate [17]).

Kumar and Schwabe's external DFS keeps its deferred-edge messages in
*tournament trees* — external priority queues with O((1/B)·log(N/B))
amortized I/O per operation.  This module implements the standard
buffered-heap realization of an external PQ: an in-memory heap holds the
freshest items; when it overflows, its contents are spilled as a sorted
run to disk (sequential writes); ``pop_min`` draws from the in-memory heap
and from a lazy merge over the runs' heads (sequential reads per run).

Items are ``(key, payload)`` pairs ordered by ``key`` then ``payload``.
Duplicates are allowed.  ``pop_min``/``peek_min`` interleave freely with
``push``.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget

__all__ = ["ExternalPriorityQueue"]

Item = Tuple[int, int]

_RECORD_BYTES = 8


class _RunCursor:
    """A sorted on-disk run with a one-block read-ahead buffer."""

    def __init__(self, file: ExternalFile) -> None:
        self.file = file
        self._block_index = 0
        self._buffer: List[Item] = []
        self._position = 0
        self._advance_block()

    def _advance_block(self) -> None:
        if self._block_index < self.file.num_blocks:
            self._buffer = list(
                self.file.device.read_block(
                    self.file._file, self._block_index, sequential=True
                )
            )
            self._block_index += 1
            self._position = 0
        else:
            self._buffer = []
            self._position = 0

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._buffer)

    def peek(self) -> Item:
        return self._buffer[self._position]

    def pop(self) -> Item:
        item = self._buffer[self._position]
        self._position += 1
        if self._position >= len(self._buffer):
            self._advance_block()
        return item


class ExternalPriorityQueue:
    """A min-priority queue whose bulk lives on the simulated disk.

    Args:
        device: the simulated disk.
        memory: sizes the in-memory heap (half the budget's records).
        name: file-name prefix for spilled runs.
    """

    def __init__(
        self,
        device: BlockDevice,
        memory: MemoryBudget,
        name: str = "epq",
    ) -> None:
        self.device = device
        self.name = name
        self._heap_capacity = max(16, memory.record_capacity(_RECORD_BYTES) // 2)
        self._heap: List[Item] = []
        self._runs: List[_RunCursor] = []
        self._run_heads: List[Tuple[Item, int]] = []  # (item, run index)
        self._counter = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def num_runs(self) -> int:
        """Number of spilled runs currently on disk."""
        return len(self._runs)

    # -- writing ------------------------------------------------------------

    def push(self, key: int, payload: int = 0) -> None:
        """Insert an item; overflow spills the heap as a sorted run."""
        heapq.heappush(self._heap, (key, payload))
        self._size += 1
        if len(self._heap) >= self._heap_capacity:
            self._spill()

    def _spill(self) -> None:
        items = sorted(self._heap)
        self._heap = []
        self._counter += 1
        run_file = ExternalFile.from_records(
            self.device, f"{self.name}.run.{self._counter}", items, _RECORD_BYTES
        )
        cursor = _RunCursor(run_file)
        run_index = len(self._runs)
        self._runs.append(cursor)
        if not cursor.exhausted:
            heapq.heappush(self._run_heads, (cursor.peek(), run_index))

    # -- reading ------------------------------------------------------------

    def _min_source(self) -> Optional[int]:
        """-1 for the in-memory heap, a run index, or None when empty."""
        best: Optional[int] = None
        best_item: Optional[Item] = None
        if self._heap:
            best, best_item = -1, self._heap[0]
        while self._run_heads:
            item, run_index = self._run_heads[0]
            cursor = self._runs[run_index]
            if cursor.exhausted or cursor.peek() != item:
                heapq.heappop(self._run_heads)  # stale head
                if not cursor.exhausted:
                    heapq.heappush(self._run_heads, (cursor.peek(), run_index))
                continue
            if best_item is None or item < best_item:
                return run_index
            return best
        return best

    def peek_min(self) -> Item:
        """The smallest item without removing it."""
        source = self._min_source()
        if source is None:
            raise IndexError("peek on an empty external priority queue")
        return self._heap[0] if source == -1 else self._runs[source].peek()

    def pop_min(self) -> Item:
        """Remove and return the smallest item."""
        source = self._min_source()
        if source is None:
            raise IndexError("pop on an empty external priority queue")
        self._size -= 1
        if source == -1:
            return heapq.heappop(self._heap)
        cursor = self._runs[source]
        item = cursor.pop()
        heapq.heappop(self._run_heads)
        if not cursor.exhausted:
            heapq.heappush(self._run_heads, (cursor.peek(), source))
        return item

    def pop_key(self, key: int) -> List[int]:
        """Remove every item whose key equals ``key`` *iff* it is minimal.

        This is the "extract all messages for the current node" operation
        of the Kumar–Schwabe scheme; it only makes sense when ``key`` is
        the queue's current minimum (keys are popped in order).

        Batched: once ``key`` is confirmed minimal, every matching item in
        any source is minimal too, so each source is drained in one go and
        the sorted drains merged — the same payloads in the same order as
        repeated :meth:`pop_min` calls, without per-item heap churn.  Run
        cursors advance block by block exactly as scalar pops would, so
        the charges are identical; head entries left stale are discarded
        lazily by the next :meth:`_min_source`.
        """
        if not self._size or self.peek_min()[0] != key:
            return []
        sources: List[List[Item]] = []
        heap = self._heap
        if heap and heap[0][0] == key:
            drained: List[Item] = []
            while heap and heap[0][0] == key:
                drained.append(heapq.heappop(heap))
            sources.append(drained)
        for cursor in self._runs:
            if not cursor.exhausted and cursor.peek()[0] == key:
                drained = []
                while not cursor.exhausted and cursor.peek()[0] == key:
                    drained.append(cursor.pop())
                sources.append(drained)
        if len(sources) == 1:
            merged: List[Item] = sources[0]
        else:
            merged = list(heapq.merge(*sources))
        self._size -= len(merged)
        return [payload for _, payload in merged]

    def drop(self) -> None:
        """Delete every spilled run from the device."""
        for cursor in self._runs:
            if self.device.exists(cursor.file.name):
                cursor.file.delete()
        self._runs.clear()
        self._run_heads = []
        self._heap = []
        self._size = 0
