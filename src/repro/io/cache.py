"""A bounded LRU buffer pool over one external file's blocks.

External structures that mutate state in place — the DFS baseline's node
table, the visited bitmaps, the buffered trees — all need the same thing:
random block access through a small cache with dirty write-back, where
every miss is a *random* read and every dirty eviction a *random* write.
:class:`BufferPool` centralizes that policy.

For the *device-wide*, read-mostly counterpart — sequential readahead,
write coalescing, and an optional shared clean-block cache — see
:class:`repro.io.pool.SharedBufferPool`; the two compose (a pooled device
serves this class's misses through its cache when one is enabled).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Sequence, Tuple

from repro.io.files import ExternalFile

__all__ = ["BufferPool", "LabelCache"]

Record = Tuple[int, ...]


class BufferPool:
    """LRU cache of mutable block copies for one :class:`ExternalFile`.

    Args:
        file: the backing file (must be closed for writing).
        capacity_blocks: number of blocks held in memory at once.
    """

    def __init__(self, file: ExternalFile, capacity_blocks: int) -> None:
        if capacity_blocks < 1:
            raise ValueError("buffer pool needs at least one block")
        self.file = file
        self.capacity_blocks = capacity_blocks
        self._entries: "OrderedDict[int, Tuple[List[Record], bool]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_block(self, index: int) -> List[Record]:
        """The (mutable) cached copy of block ``index``; misses seek."""
        entry = self._entries.get(index)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(index)
            return entry[0]
        self.misses += 1
        block = list(self.file.read_block_random(index))
        self._entries[index] = (block, False)
        self._evict()
        return block

    def mark_dirty(self, index: int) -> None:
        """Flag block ``index`` for write-back (must be cached)."""
        block, _ = self._entries[index]
        self._entries[index] = (block, True)
        self._entries.move_to_end(index)

    def _evict(self) -> None:
        while len(self._entries) > self.capacity_blocks:
            index, (block, dirty) = self._entries.popitem(last=False)
            if dirty:
                self._write_back(index, block)

    def _write_back(self, index: int, block: Sequence[Record]) -> None:
        self.file.device.overwrite_block(
            self.file._file, index, block, sequential=False
        )

    def flush(self) -> None:
        """Write back every dirty block; the cache stays warm."""
        for index, (block, dirty) in list(self._entries.items()):
            if dirty:
                self._write_back(index, block)
                self._entries[index] = (block, False)

    def drop(self) -> None:
        """Discard the cache *without* writing anything back."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from memory (0.0 before any access)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LabelCache:
    """Bounded LRU cache of *point-lookup results* (key -> record).

    Where :class:`BufferPool` caches whole blocks for one reader, this
    caches individual answers in front of the query service's node
    tables: a hit answers a lookup with zero block I/O for any session.
    Negative results (``None`` — the key is absent from the table) are
    cached too, so :meth:`get` signals a miss with the :data:`MISSING`
    sentinel rather than ``None``.

    ``capacity_entries == 0`` disables the cache (every get misses,
    puts are dropped) — the configuration the batched-vs-random CI gate
    measures raw block I/O under.
    """

    MISSING = object()
    """Sentinel returned by :meth:`get` when the key is not cached."""

    def __init__(self, capacity_entries: int) -> None:
        if capacity_entries < 0:
            raise ValueError("label cache capacity must be >= 0")
        self.capacity_entries = capacity_entries
        self._entries: "OrderedDict[int, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: int) -> object:
        """The cached value for ``key``, or :data:`MISSING`."""
        value = self._entries.get(key, LabelCache.MISSING)
        if value is LabelCache.MISSING:
            self.misses += 1
            return LabelCache.MISSING
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: int, value: object) -> None:
        """Cache ``value`` (which may be ``None``) for ``key``."""
        if self.capacity_entries == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (the hit/miss counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        """Total gets so far."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of gets served from the cache (0.0 before any get —
        the zero-lookup case is well-defined, not a ZeroDivisionError)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
