"""A shared buffer pool on the block device: readahead, write coalescing,
and an optional LRU block cache.

:class:`~repro.io.cache.BufferPool` (the per-file, mutable, write-back pool
the DFS baseline's structures use) solves a different problem — this module
generalizes the *read side* to the whole device.  A
:class:`SharedBufferPool` attached via :meth:`BlockDevice.attach_pool`
gives every :class:`~repro.io.files.ExternalFile` on the device:

* **sequential readahead** — scans fetch up to ``readahead`` blocks per
  batch ahead of consumption.  Every block is still charged to
  :class:`~repro.io.stats.IOStats` exactly once, as a *sequential* read, at
  fetch time: the ledger of a pooled run is identical, counter for counter,
  to the unpooled run (the trace test in ``tests/test_io_pool.py`` pins
  this).  What changes is the shape of the request stream a real disk would
  see — ``readahead``-deep batches instead of single-block calls;
* **write coalescing** — the file layer buffers up to ``coalesce_writes``
  blocks before flushing them back-to-back (each block still charged as
  one sequential write at flush), modelling batched submission;
* **optional LRU caching** (``cache_blocks > 0``) — a shared
  last-recently-used cache over clean blocks.  A hit is served from memory
  and charged *nothing*; a miss is charged with the access pattern the
  caller declared.  Because cached blocks are read-only copies and every
  mutation path (:meth:`BlockDevice.overwrite_block`, ``delete``,
  ``rename`` over an existing target) invalidates them, honesty is
  preserved: the ledger never counts an I/O that did not happen and never
  misclassifies one that did.

Cache entries are keyed by :attr:`DiskFile.uid` — a monotonic id that is
never reused.  The previous ``id(file)`` keys could collide when a deleted
file's object was garbage collected and a new :class:`DiskFile` landed at
the same address (most easily provoked through ``rename(overwrite=True)``,
which silently dropped the clobbered target without invalidation), serving
the dead file's blocks as the new file's content.  A lock guards the shared
structures so several worker shards may scan — including two block ranges
of the *same* file — concurrently.

The Ext-SCC pipeline attaches a readahead/coalescing pool (cache off) so
its ledger keeps reproducing the paper's sequential/random split exactly;
the cache mode is for workloads that genuinely re-read hot blocks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.io.blocks import BlockDevice, DiskFile

__all__ = ["SharedBufferPool"]

Record = Tuple[int, ...]


class SharedBufferPool:
    """Device-wide buffer pool: readahead, coalescing, optional LRU cache.

    Args:
        device: the :class:`BlockDevice` to serve (the pool registers
            itself via :meth:`BlockDevice.attach_pool`).
        readahead: blocks fetched per batch on sequential scans (1 disables
            readahead).
        coalesce_writes: blocks the file layer may buffer before flushing
            (1 disables coalescing).
        cache_blocks: capacity of the shared LRU block cache (0 disables
            caching; readahead and coalescing never change I/O counts, the
            cache does — by serving repeated reads for free).
    """

    def __init__(
        self,
        device: "BlockDevice",
        readahead: int = 8,
        coalesce_writes: int = 1,
        cache_blocks: int = 0,
    ) -> None:
        if readahead < 1:
            raise ValueError("readahead must be at least 1 block")
        if coalesce_writes < 1:
            raise ValueError("coalesce_writes must be at least 1 block")
        if cache_blocks < 0:
            raise ValueError("cache_blocks must be non-negative")
        self.device = device
        self.readahead = readahead
        self.coalesce_writes = coalesce_writes
        self.cache_blocks = cache_blocks
        self._cache: "OrderedDict[Tuple[int, int], Sequence[Record]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.readahead_batches = 0
        self.coalesced_flushes = 0
        device.attach_pool(self)

    # -- reading -----------------------------------------------------------

    def read_block(self, f: "DiskFile", index: int, sequential: bool) -> Sequence[Record]:
        """One block through the cache (if enabled); misses hit the device
        and are charged with the caller's declared access pattern."""
        if self.cache_blocks:
            key = (f.uid, index)
            with self._lock:
                block = self._cache.get(key)
                if block is not None:
                    self.hits += 1
                    self._cache.move_to_end(key)
                    return block
                self.misses += 1
        block = self.device.read_block(f, index, sequential=sequential)
        if self.cache_blocks:
            with self._lock:
                self._cache[(f.uid, index)] = block
                while len(self._cache) > self.cache_blocks:
                    self._cache.popitem(last=False)
        return block

    def scan_blocks(
        self, f: "DiskFile", start: int = 0, stop: Optional[int] = None
    ) -> Iterator[Sequence[Record]]:
        """Sequential scan with readahead: blocks are fetched (and charged,
        sequentially, once each) in ``readahead``-deep batches.

        ``start``/``stop`` bound the scan to a block range, so worker
        shards can stream disjoint ranges of the same file concurrently —
        each range is its own readahead stream and the charges are exactly
        those of scanning the range without a pool.
        """
        index = start
        end = f.num_blocks if stop is None else min(stop, f.num_blocks)
        while index < end:
            batch_end = min(end, index + self.readahead)
            batch = [
                self.read_block(f, j, sequential=True)
                for j in range(index, batch_end)
            ]
            with self._lock:
                self.readahead_batches += 1
            for block in batch:
                yield block
            index = batch_end

    # -- invalidation (called by the device) -------------------------------

    def invalidate_file(self, f: "DiskFile") -> None:
        """Drop every cached block of ``f`` (deleted, truncated, or
        clobbered by a rename)."""
        with self._lock:
            if not self._cache:
                return
            uid = f.uid
            for key in [k for k in self._cache if k[0] == uid]:
                del self._cache[key]

    def invalidate_block(self, f: "DiskFile", index: int) -> None:
        """Drop one cached block of ``f`` (overwritten in place)."""
        with self._lock:
            self._cache.pop((f.uid, index), None)

    # -- reporting ---------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served from memory (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
