"""Merge joins and grouping over sorted record streams.

Algorithms 3–5 of the paper are phrased as sequences of external sorts and
``X ⋈ Y`` merge joins consumed by single sequential scans.  The helpers here
implement that vocabulary:

* :func:`grouped` — stream (key, [records]) groups off a sorted scan;
* :func:`merge_join` — inner join of two sorted streams on their keys;
* :func:`cogroup` — full outer co-grouping of two sorted streams;
* :func:`semi_join` / :func:`anti_join` — keep records whose key is
  (not) present in a sorted key stream, the ``V_{i+1} ⋈ E`` filters.

Groups are buffered in memory one key at a time; in the contraction pipeline
group sizes are node degrees, and Theorem 5.3 bounds the degree of every
node the pipeline groups on by ``sqrt(2|E|)``.
"""

from __future__ import annotations

from itertools import chain, groupby, islice, product
from typing import Callable, Iterable, Iterator, List, Tuple

__all__ = ["grouped", "merge_join", "cogroup", "lookup_join", "semi_join", "anti_join"]

Record = Tuple[int, ...]
KeyFn = Callable[[Record], object]

_SENTINEL = object()


def grouped(records: Iterable[Record], key: KeyFn) -> Iterator[Tuple[object, List[Record]]]:
    """Yield ``(key, group)`` for consecutive equal-key records.

    The input must already be sorted by ``key`` (as after an external sort);
    only one group is held in memory at a time.  :func:`itertools.groupby`
    does the consecutive-equal-key bucketing in C with the same contract
    (``key`` called once per record, groups compared by ``==``).
    """
    for k, group in groupby(records, key):
        yield k, list(group)


def cogroup(
    left: Iterable[Record],
    right: Iterable[Record],
    left_key: KeyFn,
    right_key: KeyFn,
) -> Iterator[Tuple[object, List[Record], List[Record]]]:
    """Full outer co-grouping of two key-sorted streams.

    Yields ``(key, left_group, right_group)`` for every key present in either
    stream, in key order; the missing side is an empty list.  Both streams
    are consumed with a single forward pass each.
    """
    left_groups = grouped(left, left_key)
    right_groups = grouped(right, right_key)
    l = next(left_groups, None)
    r = next(right_groups, None)
    while l is not None or r is not None:
        if r is None or (l is not None and l[0] < r[0]):  # type: ignore[operator]
            yield l[0], l[1], []
            l = next(left_groups, None)
        elif l is None or r[0] < l[0]:  # type: ignore[operator]
            yield r[0], [], r[1]
            r = next(right_groups, None)
        else:
            yield l[0], l[1], r[1]
            l = next(left_groups, None)
            r = next(right_groups, None)


def merge_join(
    left: Iterable[Record],
    right: Iterable[Record],
    left_key: KeyFn,
    right_key: KeyFn,
) -> Iterator[Tuple[Record, Record]]:
    """Inner merge join: yield every (left, right) pair with equal keys.

    The per-pair cross product runs in C (``product`` flattened by
    ``chain.from_iterable``); Python resumes once per matched key, not
    once per pair.
    """
    return chain.from_iterable(
        product(lgroup, rgroup)
        for _, lgroup, rgroup in cogroup(left, right, left_key, right_key)
        if lgroup and rgroup
    )


def lookup_join(
    records: Iterable[Record],
    table: Iterable[Record],
    key: KeyFn,
    table_key: KeyFn,
) -> Iterator[Tuple[Record, Record]]:
    """Inner join of a key-sorted stream against a *unique-key* sorted
    stream; yields ``(record, match)`` pairs in record order.

    The one-match-per-key restriction (which the degree and label files
    satisfy by construction — one record per node) is what
    :func:`merge_join` cannot assume, and what lets this run chunked:
    each :data:`JOIN_CHUNK`-record step probes a dict window of the
    table rows spanning the chunk's keys, so the match loop is one
    listcomp over C-level dict lookups instead of a generator stack of
    per-key groups.  Records without a match are dropped, exactly like
    the inner merge join.  Both streams are consumed in a single forward
    pass (same blocks, same order, same ledger); the resident window is
    the table rows spanned by one record chunk plus one chunk of
    look-ahead.
    """
    return chain.from_iterable(
        _lookup_batches(iter(records), iter(table), key, table_key)
    )


def _lookup_batches(
    records: Iterator[Record],
    table_iter: Iterator[Record],
    key: KeyFn,
    table_key: KeyFn,
) -> Iterator[List[Tuple[Record, Record]]]:
    window: dict = {}
    top = _SENTINEL  # largest table key consumed so far
    exhausted = False
    while True:
        chunk = list(islice(records, JOIN_CHUNK))
        if not chunk:
            return
        ks = list(map(key, chunk))
        hi = ks[-1]
        while not exhausted and (top is _SENTINEL or top < hi):  # type: ignore[operator]
            tchunk = list(islice(table_iter, JOIN_CHUNK))
            if not tchunk:
                exhausted = True
                break
            window.update(zip(map(table_key, tchunk), tchunk))
            top = table_key(tchunk[-1])
        get = window.get
        yield [(r, m) for r, k in zip(chunk, ks) if (m := get(k)) is not None]
        # Later records have keys >= hi; once the window outgrows two
        # chunks, drop the rows that can never match again.
        if len(window) > 2 * JOIN_CHUNK:
            window = {k: v for k, v in window.items() if not k < hi}  # type: ignore[operator]


def semi_join(
    records: Iterable[Record],
    keys: Iterable[object],
    key: KeyFn,
) -> Iterator[Record]:
    """Keep records whose ``key`` appears in the sorted ``keys`` stream.

    Both inputs must be sorted; this is the single-scan filter the paper
    writes as ``V_{i+1} ⋈ E``.
    """
    return _membership_join(records, keys, key, keep_present=True)


def anti_join(
    records: Iterable[Record],
    keys: Iterable[object],
    key: KeyFn,
) -> Iterator[Record]:
    """Keep records whose ``key`` does NOT appear in the sorted ``keys``.

    This selects the edges incident to *removed* nodes (``v ∉ V_{i+1}``).
    """
    return _membership_join(records, keys, key, keep_present=False)


JOIN_CHUNK = 1024
"""Records (and keys) consumed per membership-join step."""


def _membership_join(
    records: Iterable[Record],
    keys: Iterable[object],
    key: KeyFn,
    keep_present: bool,
) -> Iterator[Record]:
    """Chunked membership filter over two key-sorted streams.

    Because both streams are sorted, a record matches iff its key occurs
    in ``keys`` at all, so each :data:`JOIN_CHUNK`-record step tests its
    chunk against a hash set of the key chunks overlapping the chunk's
    key span — the filter itself is one listcomp over C-level set
    lookups instead of a per-record two-pointer walk.  Both streams are
    still consumed in a single forward pass (every block read once,
    sequentially, same ledger); like the merge kernel's
    :data:`~repro.kernels.merge.MERGE_CHUNK` read-ahead, chunking
    reorders *host* work only.  Key chunks are dropped from the window
    as soon as the record frontier passes them, so the resident window
    is the keys spanned by one record chunk plus one chunk of
    look-ahead.
    """
    return chain.from_iterable(
        _membership_batches(iter(records), iter(keys), key, keep_present)
    )


def _membership_batches(
    records: Iterator[Record],
    key_iter: Iterator[object],
    key: KeyFn,
    keep_present: bool,
) -> Iterator[List[Record]]:
    windows: List[List[object]] = []  # key chunks overlapping the frontier
    present: set = set()
    top = _SENTINEL  # largest key consumed so far
    exhausted = False
    while True:
        chunk = list(islice(records, JOIN_CHUNK))
        if not chunk:
            return
        ks = list(map(key, chunk))
        hi = ks[-1]
        while not exhausted and (top is _SENTINEL or top < hi):  # type: ignore[operator]
            kchunk = list(islice(key_iter, JOIN_CHUNK))
            if not kchunk:
                exhausted = True
                break
            windows.append(kchunk)
            present.update(kchunk)
            top = kchunk[-1]
        if keep_present:
            yield [r for r, k in zip(chunk, ks) if k in present]
        else:
            yield [r for r, k in zip(chunk, ks) if k not in present]
        # Later records have keys >= hi, so key chunks topping out below
        # hi can never match again; drop them and rebuild the set.
        if len(windows) > 1:
            live = [w for w in windows if not w[-1] < hi]  # type: ignore[operator]
            if len(live) < len(windows):
                windows = live
                present = set()
                for w in live:
                    present.update(w)
