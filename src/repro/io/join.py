"""Merge joins and grouping over sorted record streams.

Algorithms 3–5 of the paper are phrased as sequences of external sorts and
``X ⋈ Y`` merge joins consumed by single sequential scans.  The helpers here
implement that vocabulary:

* :func:`grouped` — stream (key, [records]) groups off a sorted scan;
* :func:`merge_join` — inner join of two sorted streams on their keys;
* :func:`cogroup` — full outer co-grouping of two sorted streams;
* :func:`semi_join` / :func:`anti_join` — keep records whose key is
  (not) present in a sorted key stream, the ``V_{i+1} ⋈ E`` filters.

Groups are buffered in memory one key at a time; in the contraction pipeline
group sizes are node degrees, and Theorem 5.3 bounds the degree of every
node the pipeline groups on by ``sqrt(2|E|)``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Tuple

__all__ = ["grouped", "merge_join", "cogroup", "semi_join", "anti_join"]

Record = Tuple[int, ...]
KeyFn = Callable[[Record], object]

_SENTINEL = object()


def grouped(records: Iterable[Record], key: KeyFn) -> Iterator[Tuple[object, List[Record]]]:
    """Yield ``(key, group)`` for consecutive equal-key records.

    The input must already be sorted by ``key`` (as after an external sort);
    only one group is held in memory at a time.
    """
    current_key = _SENTINEL
    group: List[Record] = []
    for record in records:
        k = key(record)
        if k != current_key:
            if current_key is not _SENTINEL:
                yield current_key, group
            current_key = k
            group = []
        group.append(record)
    if current_key is not _SENTINEL:
        yield current_key, group


def cogroup(
    left: Iterable[Record],
    right: Iterable[Record],
    left_key: KeyFn,
    right_key: KeyFn,
) -> Iterator[Tuple[object, List[Record], List[Record]]]:
    """Full outer co-grouping of two key-sorted streams.

    Yields ``(key, left_group, right_group)`` for every key present in either
    stream, in key order; the missing side is an empty list.  Both streams
    are consumed with a single forward pass each.
    """
    left_groups = grouped(left, left_key)
    right_groups = grouped(right, right_key)
    l = next(left_groups, None)
    r = next(right_groups, None)
    while l is not None or r is not None:
        if r is None or (l is not None and l[0] < r[0]):  # type: ignore[operator]
            yield l[0], l[1], []
            l = next(left_groups, None)
        elif l is None or r[0] < l[0]:  # type: ignore[operator]
            yield r[0], [], r[1]
            r = next(right_groups, None)
        else:
            yield l[0], l[1], r[1]
            l = next(left_groups, None)
            r = next(right_groups, None)


def merge_join(
    left: Iterable[Record],
    right: Iterable[Record],
    left_key: KeyFn,
    right_key: KeyFn,
) -> Iterator[Tuple[Record, Record]]:
    """Inner merge join: yield every (left, right) pair with equal keys."""
    for _, lgroup, rgroup in cogroup(left, right, left_key, right_key):
        if lgroup and rgroup:
            for lrec in lgroup:
                for rrec in rgroup:
                    yield lrec, rrec


def semi_join(
    records: Iterable[Record],
    keys: Iterable[object],
    key: KeyFn,
) -> Iterator[Record]:
    """Keep records whose ``key`` appears in the sorted ``keys`` stream.

    Both inputs must be sorted; this is the single-scan filter the paper
    writes as ``V_{i+1} ⋈ E``.
    """
    yield from _membership_join(records, keys, key, keep_present=True)


def anti_join(
    records: Iterable[Record],
    keys: Iterable[object],
    key: KeyFn,
) -> Iterator[Record]:
    """Keep records whose ``key`` does NOT appear in the sorted ``keys``.

    This selects the edges incident to *removed* nodes (``v ∉ V_{i+1}``).
    """
    yield from _membership_join(records, keys, key, keep_present=False)


def _membership_join(
    records: Iterable[Record],
    keys: Iterable[object],
    key: KeyFn,
    keep_present: bool,
) -> Iterator[Record]:
    key_iter = iter(keys)
    current = next(key_iter, _SENTINEL)
    for record in records:
        k = key(record)
        while current is not _SENTINEL and current < k:  # type: ignore[operator]
            current = next(key_iter, _SENTINEL)
        present = current is not _SENTINEL and current == k
        if present == keep_present:
            yield record
