"""Memory budget for the external-memory model.

The paper's setting is ``2*B <= M < ||G||``: at least two disk blocks fit in
memory but the graph does not.  :class:`MemoryBudget` carries ``M`` in bytes
and answers the two capacity questions every external algorithm asks: how
many *records* of a given width fit, and how many *blocks* fit (which bounds
the fan-in of the external merge sort).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InsufficientMemory

__all__ = ["MemoryBudget"]


@dataclass(frozen=True)
class MemoryBudget:
    """Main-memory budget ``M`` in bytes.

    Attributes:
        nbytes: the size of main memory in bytes.
    """

    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise InsufficientMemory(f"memory budget must be positive, got {self.nbytes}")

    def record_capacity(self, record_size: int) -> int:
        """Number of records of ``record_size`` bytes that fit in memory."""
        if record_size <= 0:
            raise ValueError(f"record_size must be positive, got {record_size}")
        return self.nbytes // record_size

    def block_capacity(self, block_size: int) -> int:
        """Number of disk blocks of ``block_size`` bytes that fit in memory."""
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        return self.nbytes // block_size

    def require_at_least(self, nbytes: int, what: str = "operation") -> None:
        """Raise :class:`InsufficientMemory` unless ``nbytes`` fit in M.

        Used by semi-external algorithms to assert their ``c * |V|``
        in-memory footprint before they start.
        """
        if nbytes > self.nbytes:
            raise InsufficientMemory(
                f"{what} needs {nbytes} bytes of memory but the budget is {self.nbytes}"
            )

    def fits(self, nbytes: int) -> bool:
        """Return True when ``nbytes`` fit within the budget."""
        return nbytes <= self.nbytes

    def validate_against_block(self, block_size: int) -> None:
        """Enforce the model's ``M >= 2 * B`` assumption."""
        if self.nbytes < 2 * block_size:
            raise InsufficientMemory(
                f"the I/O model requires M >= 2*B; got M={self.nbytes}, B={block_size}"
            )
