"""Graph statistics: degrees, arboricity bounds, bow-tie decomposition.

The contraction analysis of Section V runs on two quantities — node
degrees (the ``>`` operator, Theorem 5.3) and the graph's arboricity
(Theorem 5.4's edge-growth bound).  This module measures both, externally
for degree statistics (sorts + one co-scan over the edge file) and via the
Chiba–Nishizeki bound ``α ≤ min(⌈√|E|⌉, deg_max)`` for arboricity.

It also provides the bow-tie decomposition of a digraph given its SCC
labeling — the standard structure of web graphs, used by the examples and
by the webspam generator's tests.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.graph.digraph import DiGraph
from repro.graph.edge_file import EdgeFile
from repro.io.join import cogroup
from repro.io.memory import MemoryBudget
from repro.memory_scc.condensation import condensation
from repro.memory_scc.dfs import reachable_from

__all__ = ["DegreeStats", "degree_stats", "arboricity_upper_bound",
           "BowTie", "bowtie_decomposition"]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree structure (from one external pass)."""

    num_nodes: int            # nodes incident to at least one edge
    num_edges: int            # edge records (parallels counted)
    max_in_degree: int
    max_out_degree: int
    max_total_degree: int
    num_sources: int          # deg_in = 0 (Type-1 candidates)
    num_sinks: int            # deg_out = 0 (Type-1 candidates)
    histogram: Dict[int, int]  # total degree -> node count

    @property
    def average_degree(self) -> float:
        """|E| / |V| over the touched nodes."""
        return self.num_edges / self.num_nodes if self.num_nodes else 0.0


def degree_stats(edge_file: EdgeFile, memory: MemoryBudget) -> DegreeStats:
    """Degree statistics with two external sorts and one co-scan."""
    ein = edge_file.sorted_by_dst(memory)
    eout = edge_file.sorted_by_src(memory)
    histogram: Counter = Counter()
    num_nodes = 0
    max_in = max_out = max_total = 0
    sources = sinks = 0
    for _node, in_group, out_group in cogroup(
        ein.scan(), eout.scan(), lambda e: e[1], lambda e: e[0]
    ):
        deg_in, deg_out = len(in_group), len(out_group)
        num_nodes += 1
        max_in = max(max_in, deg_in)
        max_out = max(max_out, deg_out)
        max_total = max(max_total, deg_in + deg_out)
        sources += deg_in == 0
        sinks += deg_out == 0
        histogram[deg_in + deg_out] += 1
    ein.delete()
    eout.delete()
    return DegreeStats(
        num_nodes=num_nodes,
        num_edges=edge_file.num_edges,
        max_in_degree=max_in,
        max_out_degree=max_out,
        max_total_degree=max_total,
        num_sources=sources,
        num_sinks=sinks,
        histogram=dict(histogram),
    )


def arboricity_upper_bound(stats: DegreeStats) -> int:
    """Chiba–Nishizeki: ``α ≤ min(⌈√|E|⌉, deg_max)`` — the quantity in
    Theorem 5.4's edge-growth bound."""
    if stats.num_edges == 0:
        return 0
    return min(math.ceil(math.sqrt(stats.num_edges)), stats.max_total_degree)


@dataclass(frozen=True)
class BowTie:
    """Bow-tie decomposition of a digraph around its largest SCC."""

    core_label: int
    core: int
    in_size: int
    out_size: int
    tendrils: int

    @property
    def total(self) -> int:
        """All nodes accounted for."""
        return self.core + self.in_size + self.out_size + self.tendrils


def bowtie_decomposition(graph: DiGraph, labels: Mapping[int, int]) -> BowTie:
    """Decompose ``graph`` into CORE / IN / OUT / TENDRILS.

    Args:
        graph: the original digraph.
        labels: an SCC labeling (e.g. ``output.result.labels``).
    """
    sizes = Counter(labels.values())
    core_label, core_size = sizes.most_common(1)[0]
    dag = condensation(graph, labels)
    downstream = reachable_from(dag, core_label) - {core_label}
    upstream = reachable_from(dag.reversed(), core_label) - {core_label}
    out_size = sum(sizes[label] for label in downstream)
    in_size = sum(sizes[label] for label in upstream)
    total = sum(sizes.values())
    return BowTie(
        core_label=core_label,
        core=core_size,
        in_size=in_size,
        out_size=out_size,
        tendrils=total - core_size - in_size - out_size,
    )
