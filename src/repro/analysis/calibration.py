"""Trace-calibrated cost constants: closing the optimizer's feedback loop.

The analytic :class:`~repro.analysis.cost_model.CostModel` prices plans
from first principles (logical record widths, one hand-tuned
seconds-per-block guess).  Every executed run, however, already measures
the real constants: the stored bytes each codec paid per record of each
width (the payload ledger), the wall-seconds each executor/worker-count
combination took per block (the trace spans), and how many edge-file
passes each semi-external solver actually performed.  A
:class:`CalibrationProfile` ingests those measurements — from live
:class:`~repro.core.ext_scc.ExtSCCOutput` objects or committed
``--trace-json`` artifacts — fits per-operator-kind constants, and hands
the planner calibrated models so ``optimize_plan`` can *choose* codec,
workers, executor, and solver from predicted cost instead of trusting
config defaults.

Fitted constants:

* ``bytes_per_record[codec][width]`` — stored bytes per record, by codec
  and logical width (count-weighted running means of the payload ledger);
* ``wall[(executor, K, codec)]`` — an affine fit ``seconds ≈ a·blocks +
  b`` over the ingested ``(blocks, wall_seconds)`` samples of each
  executor, worker count, and codec.  The codec dimension matters:
  compressed codecs trade CPU for blocks, so their seconds-per-block is
  higher — without it the ``wallclock`` objective would always chase the
  fewest predicted blocks.  With one sample the slope is
  ``seconds/blocks`` and the intercept zero; with two or more, a
  least-squares fit whose clamped intercept *is* the executor's fixed
  overhead (for the ``processes`` backend: the pool spawn cost);
* ``semi_passes[solver]`` — measured edge-file scans per semi-external
  solver (the analytic default prices every solver at 3).

The profile persists as versioned JSON (``save``/``load``) — by
convention next to a persistent device's manifest
(``<device dir>/calibration.json``).  Loading an unreadable or
schema-incompatible file falls back gracefully to the analytic defaults:
an empty profile prices exactly like the uncalibrated model.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.analysis.cost_model import CostModel
from repro.constants import EDGE_RECORD_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ext_scc import ExtSCCOutput

__all__ = [
    "CalibrationProfile",
    "CALIBRATION_SCHEMA_VERSION",
    "DEFAULT_SECONDS_PER_BLOCK",
    "DEFAULT_SEMI_PASSES",
    "calibration_path_for",
]

CALIBRATION_SCHEMA_VERSION = 1
"""Schema version of the persisted JSON; mismatches fall back to defaults."""

DEFAULT_SECONDS_PER_BLOCK = 5e-5
"""Analytic fallback seconds per block when no wall sample was ingested.
One value for every executor, so the uncalibrated ``wallclock`` objective
degenerates to ranking by predicted blocks — exactly the ``io`` objective."""

DEFAULT_SEMI_PASSES = 3.0
"""Analytic edge-scan count per semi-external solver (``CostModel.semi_scc``'s
priced default) used until a run measures the real number."""

_MAX_WALL_SAMPLES = 32  # per (executor, K); oldest evicted first


def calibration_path_for(directory: str) -> str:
    """The conventional profile location next to a device manifest."""
    return os.path.join(directory, "calibration.json")


def _fit_affine(samples: List[Tuple[float, float]]) -> Tuple[float, float]:
    """Least-squares ``seconds = a*blocks + b`` with ``a > 0``, ``b >= 0``.

    One sample pins the slope through the origin.  A degenerate spread
    (all sample block counts equal) averages the ratios instead.
    """
    if not samples:
        return DEFAULT_SECONDS_PER_BLOCK, 0.0
    if len(samples) == 1:
        blocks, seconds = samples[0]
        return (seconds / blocks if blocks else DEFAULT_SECONDS_PER_BLOCK), 0.0
    n = len(samples)
    mean_x = sum(b for b, _ in samples) / n
    mean_y = sum(s for _, s in samples) / n
    var = sum((b - mean_x) ** 2 for b, _ in samples)
    if var <= 0:
        ratios = [s / b for b, s in samples if b]
        return (sum(ratios) / len(ratios) if ratios
                else DEFAULT_SECONDS_PER_BLOCK), 0.0
    slope = sum((b - mean_x) * (s - mean_y) for b, s in samples) / var
    intercept = mean_y - slope * mean_x
    if slope <= 0:
        ratios = [s / b for b, s in samples if b]
        return (sum(ratios) / len(ratios) if ratios
                else DEFAULT_SECONDS_PER_BLOCK), 0.0
    return slope, max(0.0, intercept)


class CalibrationProfile:
    """Fitted cost constants with graceful analytic fallback.

    An empty profile predicts exactly what the uncalibrated
    :class:`CostModel` predicts; every ingested run sharpens it.
    """

    def __init__(self) -> None:
        # codec -> width -> [records, stored_bytes] running aggregates.
        self._bytes: Dict[str, Dict[int, List[float]]] = {}
        # executor -> K -> codec -> [(blocks, seconds), ...] (bounded).
        self._wall: Dict[str, Dict[int, Dict[str, List[Tuple[float, float]]]]] = {}
        # solver -> [runs, passes_sum] running aggregates.
        self._semi: Dict[str, List[float]] = {}
        self.runs = 0
        self.fallback_reason: Optional[str] = None

    # -- fitted views --------------------------------------------------------

    @property
    def calibrated(self) -> bool:
        """Has at least one measurement been ingested?"""
        return self.runs > 0

    def bytes_per_record(self, codec: str) -> Dict[int, float]:
        """Fitted stored bytes per record by logical width for ``codec``
        (empty — meaning logical widths — when never measured)."""
        return {
            width: stored / records
            for width, (records, stored) in self._bytes.get(codec, {}).items()
            if records
        }

    def model(self, block_size: int, memory_bytes: int,
              codec: str) -> CostModel:
        """A :class:`CostModel` pricing blocks at ``codec``'s fitted
        stored widths (the analytic logical-width model when unfitted)."""
        return CostModel(block_size, memory_bytes,
                         bytes_per_record=self.bytes_per_record(codec))

    @staticmethod
    def _codec_samples(by_codec: Dict[str, List[Tuple[float, float]]],
                       codec: Optional[str]) -> List[Tuple[float, float]]:
        """``codec``'s own samples when fitted, else every codec's pooled
        (deterministic order) — an unfitted codec borrows the executor's
        average seconds-per-block."""
        if codec is not None and by_codec.get(codec):
            return by_codec[codec]
        return [s for c in sorted(by_codec) for s in by_codec[c]]

    def wall_constants(self, executor: str, workers: int,
                       codec: Optional[str] = None) -> Tuple[float, float]:
        """``(seconds_per_block, fixed_overhead_seconds)`` for an executor
        at worker count ``K`` running ``codec``, with a fallback chain:
        exact ``(executor, K)`` fit → same executor, nearest fitted K →
        ``(serial, 1)`` → the analytic default.  Within the resolved
        ``(executor, K)`` cell, ``codec``'s own samples are used when
        present, the cell's pooled samples otherwise."""
        by_k = self._wall.get(executor, {})
        if workers in by_k:
            return _fit_affine(self._codec_samples(by_k[workers], codec))
        if by_k:
            nearest = min(by_k, key=lambda k: (abs(k - workers), k))
            return _fit_affine(self._codec_samples(by_k[nearest], codec))
        serial = self._wall.get("serial", {})
        if serial:
            nearest = min(serial, key=lambda k: (abs(k - 1), k))
            return _fit_affine(self._codec_samples(serial[nearest], codec))
        return DEFAULT_SECONDS_PER_BLOCK, 0.0

    def seconds(self, blocks: int, executor: str, workers: int,
                codec: Optional[str] = None) -> float:
        """Predicted wall-seconds for ``blocks`` total block I/Os run on
        ``executor`` with ``workers`` channels under ``codec`` (fixed
        overhead included)."""
        slope, intercept = self.wall_constants(executor, workers, codec)
        return slope * max(0, blocks) + intercept

    def spawn_seconds(self, executor: str) -> float:
        """The executor's fitted fixed overhead (pool spawn cost) — the
        affine intercept, zero until two samples of different sizes pin
        it."""
        by_k = self._wall.get(executor, {})
        if not by_k:
            return 0.0
        return max(
            _fit_affine(self._codec_samples(by_codec, None))[1]
            for by_codec in by_k.values()
        )

    def semi_passes(self, solver: str) -> float:
        """Measured edge-file scans per run of ``solver`` (the analytic
        :data:`DEFAULT_SEMI_PASSES` when never measured)."""
        agg = self._semi.get(solver)
        if not agg or not agg[0]:
            return DEFAULT_SEMI_PASSES
        return agg[1] / agg[0]

    @property
    def version(self) -> str:
        """Stable fingerprint of the fitted constants (cache-key input):
        schema version + content hash, so any new measurement invalidates
        cached plans priced under the old constants."""
        digest = hashlib.sha256(
            json.dumps(self._payload(), sort_keys=True).encode("ascii")
        ).hexdigest()[:12]
        return f"{CALIBRATION_SCHEMA_VERSION}:{digest}"

    # -- ingestion -----------------------------------------------------------

    def _ingest_measurements(
        self,
        codec: str,
        executor: str,
        workers: int,
        solver: str,
        bytes_by_width: Mapping[int, Tuple[int, int]],
        io_total: int,
        wall_seconds: float,
        semi_io_total: Optional[int] = None,
        final_edges: Optional[int] = None,
        block_size: Optional[int] = None,
    ) -> None:
        for width, (records, stored) in bytes_by_width.items():
            if records <= 0:
                continue
            agg = self._bytes.setdefault(codec, {}).setdefault(
                int(width), [0.0, 0.0]
            )
            agg[0] += records
            agg[1] += stored
        if io_total > 0 and wall_seconds > 0:
            samples = self._wall.setdefault(executor, {}).setdefault(
                workers, {}
            ).setdefault(codec, [])
            samples.append((float(io_total), float(wall_seconds)))
            del samples[:-_MAX_WALL_SAMPLES]
        if (semi_io_total is not None and final_edges and block_size
                and semi_io_total > 0):
            scan_model = self.model(block_size, 1, codec)
            scan_blocks = scan_model.blocks(final_edges, EDGE_RECORD_BYTES)
            if scan_blocks > 0:
                agg = self._semi.setdefault(solver, [0.0, 0.0])
                agg[0] += 1
                agg[1] += max(1.0, semi_io_total / scan_blocks)
        self.runs += 1

    def ingest_run(self, output: "ExtSCCOutput",
                   block_size: Optional[int] = None) -> None:
        """Fit constants from one finished run.

        Args:
            output: the run's :class:`~repro.core.ext_scc.ExtSCCOutput`
                (config, payload ledger, per-phase I/O, and wall time all
                ride on it).
            block_size: the device's block size — needed only to fit the
                semi-external solver's pass count; omit to skip that fit.
        """
        config = output.config
        final_edges = (
            output.iterations[-1].next_num_edges if output.iterations else None
        )
        self._ingest_measurements(
            codec=config.codec,
            executor=config.executor,
            workers=config.workers,
            solver=config.semi_scc,
            bytes_by_width=output.bytes_by_width,
            io_total=output.io.total,
            wall_seconds=output.wall_seconds,
            semi_io_total=output.semi_io.total,
            final_edges=final_edges,
            block_size=block_size,
        )

    def ingest_trace_json(self, path: str) -> bool:
        """Fit constants from a committed ``--trace-json`` artifact.

        Returns True when the file carried the ``context`` section the
        CLI writes (codec, executor, workers, solver, payload ledger);
        files from older versions are skipped, not errors.
        """
        try:
            with open(path, "r", encoding="ascii") as f:
                payload = json.load(f)
        except (OSError, ValueError):
            return False
        context = payload.get("context")
        if not isinstance(context, dict):
            return False
        try:
            self._ingest_measurements(
                codec=context["codec"],
                executor=context["executor"],
                workers=int(context["workers"]),
                solver=context["solver"],
                bytes_by_width={
                    int(w): (int(pair[0]), int(pair[1]))
                    for w, pair in context.get("bytes_by_width", {}).items()
                },
                io_total=int(context.get("io_total", 0)),
                wall_seconds=float(context.get("wall_seconds", 0.0)),
                semi_io_total=context.get("semi_io_total"),
                final_edges=context.get("final_edges"),
                block_size=context.get("block_size"),
            )
        except (KeyError, TypeError, ValueError):
            return False
        return True

    # -- persistence ---------------------------------------------------------

    def _payload(self) -> dict:
        return {
            "schema": CALIBRATION_SCHEMA_VERSION,
            "runs": self.runs,
            "bytes_per_record": {
                codec: {str(w): agg for w, agg in sorted(widths.items())}
                for codec, widths in sorted(self._bytes.items())
            },
            "wall": {
                executor: {
                    str(k): {
                        codec: [list(sample) for sample in samples]
                        for codec, samples in sorted(by_codec.items())
                    }
                    for k, by_codec in sorted(by_k.items())
                }
                for executor, by_k in sorted(self._wall.items())
            },
            "semi_passes": {
                solver: agg for solver, agg in sorted(self._semi.items())
            },
        }

    def save(self, path: str) -> None:
        """Persist the profile as versioned JSON (atomic rename)."""
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="ascii") as f:
            json.dump(self._payload(), f, indent=1, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "CalibrationProfile":
        """Load a persisted profile; any failure (missing file, bad JSON,
        schema mismatch) returns the analytic-default profile with
        ``fallback_reason`` set instead of raising."""
        profile = cls()
        try:
            with open(path, "r", encoding="ascii") as f:
                payload = json.load(f)
        except FileNotFoundError:
            profile.fallback_reason = "missing"
            return profile
        except (OSError, ValueError):
            profile.fallback_reason = "unreadable"
            return profile
        if not isinstance(payload, dict) or payload.get("schema") != \
                CALIBRATION_SCHEMA_VERSION:
            profile.fallback_reason = (
                f"schema {payload.get('schema')!r} != "
                f"{CALIBRATION_SCHEMA_VERSION}"
                if isinstance(payload, dict) else "not an object"
            )
            return profile
        try:
            profile._bytes = {
                codec: {int(w): [float(agg[0]), float(agg[1])]
                        for w, agg in widths.items()}
                for codec, widths in payload.get("bytes_per_record", {}).items()
            }
            profile._wall = {
                executor: {
                    int(k): {
                        codec: [(float(b), float(s)) for b, s in samples]
                        for codec, samples in by_codec.items()
                    }
                    for k, by_codec in by_k.items()
                }
                for executor, by_k in payload.get("wall", {}).items()
            }
            profile._semi = {
                solver: [float(agg[0]), float(agg[1])]
                for solver, agg in payload.get("semi_passes", {}).items()
            }
            profile.runs = int(payload.get("runs", 0))
        except (TypeError, ValueError, IndexError, AttributeError):
            fresh = cls()
            fresh.fallback_reason = "malformed"
            return fresh
        return profile
