"""Analysis layer: the analytic I/O cost model (Theorems 5.1/5.2/6.1),
trace-calibrated constants and the self-tuning plan search, graph
statistics (degrees, arboricity bound, bow-tie), and time-forward
processing over external DAGs."""

from repro.analysis.calibration import CalibrationProfile, calibration_path_for
from repro.analysis.cost_model import CostModel
from repro.analysis.graph_stats import (
    BowTie,
    DegreeStats,
    arboricity_upper_bound,
    bowtie_decomposition,
    degree_stats,
)
from repro.analysis.planner import (
    ExtSCCPlan,
    PlanCandidate,
    PlannedIteration,
    TuningDecision,
    autotune_config,
    enumerate_knobs,
    plan_ext_scc,
)
from repro.analysis.time_forward import dag_levels

__all__ = [
    "ExtSCCPlan",
    "PlannedIteration",
    "PlanCandidate",
    "TuningDecision",
    "autotune_config",
    "enumerate_knobs",
    "plan_ext_scc",
    "CalibrationProfile",
    "calibration_path_for",
    "CostModel",
    "DegreeStats",
    "degree_stats",
    "arboricity_upper_bound",
    "BowTie",
    "bowtie_decomposition",
    "dag_levels",
]
