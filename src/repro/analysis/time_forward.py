"""Time-forward processing over an external DAG (Chiang et al. [10]).

The classic application of an external priority queue: evaluate a
per-node function over a DAG stored on disk, visiting nodes in topological
order and *sending results forward along edges as messages* keyed by the
recipient's topological time.  Because times are processed in increasing
order, the EPQ's min-order drain is exactly the delivery schedule.

:func:`dag_levels` computes longest-path levels (the stage number of a
scheduling pipeline) this way — the downstream computation the paper's
topological-sort application needs once the SCCs have been contracted:
``Ext-SCC → condensation → topological order → time-forward levels``.

All graph data moves through external sorts, merge joins and sequential
scans; only O(M) lives in memory (the EPQ's in-memory heap).
"""

from __future__ import annotations

from operator import itemgetter

from typing import Iterator, Sequence, Tuple

from repro.constants import SCC_RECORD_BYTES
from repro.graph.edge_file import EdgeFile
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.join import cogroup, merge_join
from repro.io.memory import MemoryBudget
from repro.io.priority_queue import ExternalPriorityQueue
from repro.io.sort import external_sort_records

__all__ = ["dag_levels"]

Record = Tuple[int, ...]


def _time_map(
    device: BlockDevice,
    topo_order: Sequence[int],
    memory: MemoryBudget,
) -> ExternalFile:
    """(node, time) records sorted by node id."""
    records = ((node, time) for time, node in enumerate(topo_order))
    return external_sort_records(device, records, SCC_RECORD_BYTES, memory)


def _edges_in_time(
    device: BlockDevice,
    edges: EdgeFile,
    time_map: ExternalFile,
    memory: MemoryBudget,
) -> ExternalFile:
    """Edges rewritten as (t_u, t_v), sorted by t_u; rejects non-DAG input."""
    by_src = edges.sorted_by_src(memory)

    def src_mapped() -> Iterator[Record]:
        for edge, mapping in merge_join(
            by_src.scan(), time_map.scan(), itemgetter(0), itemgetter(0)
        ):
            yield (mapping[1], edge[1])  # (t_u, v)

    half = external_sort_records(
        device, src_mapped(), SCC_RECORD_BYTES, memory, key=itemgetter(1, 0)
    )
    by_src.delete()

    def both_mapped() -> Iterator[Record]:
        for record, mapping in merge_join(
            half.scan(), time_map.scan(), itemgetter(1), itemgetter(0)
        ):
            t_u, t_v = record[0], mapping[1]
            if t_u >= t_v:
                raise ValueError(
                    f"edge violates the topological order (t_u={t_u} >= t_v={t_v}); "
                    "contract the SCCs first"
                )
            yield (t_u, t_v)

    result = external_sort_records(device, both_mapped(), SCC_RECORD_BYTES, memory)
    half.delete()
    return result


def dag_levels(
    device: BlockDevice,
    edges: EdgeFile,
    topo_order: Sequence[int],
    memory: MemoryBudget,
) -> ExternalFile:
    """Longest-path level of every DAG node, by time-forward processing.

    Args:
        device: the simulated disk.
        edges: the DAG's edge file (every edge must respect ``topo_order``).
        topo_order: all node ids in topological order.
        memory: the budget (heap size of the EPQ, sort fan-in).

    Returns:
        An :class:`ExternalFile` of ``(node, level)`` records sorted by
        node id, where sources have level 0 and each edge raises the level
        by at least one.

    Raises:
        ValueError: when an edge contradicts ``topo_order`` (the input was
            not a DAG, or the order was wrong).
    """
    time_map = _time_map(device, topo_order, memory)
    timed_edges = _edges_in_time(device, edges, time_map, memory)
    time_map.delete()

    queue = ExternalPriorityQueue(device, memory, name=device.temp_name("tfp"))
    levels = ExternalFile.create(device, device.temp_name("levels"), SCC_RECORD_BYTES)

    def time_stream() -> Iterator[Record]:
        for time in range(len(topo_order)):
            yield (time,)

    for time, _node_group, edge_group in cogroup(
        time_stream(), timed_edges.scan(), itemgetter(0), itemgetter(0)
    ):
        incoming = queue.pop_key(time)
        level = max(incoming, default=0)
        levels.append((topo_order[time], level))
        for _t_u, t_v in edge_group:
            queue.push(t_v, level + 1)
    levels.close()
    queue.drop()
    timed_edges.delete()

    result = external_sort_records(
        device, levels.scan(), SCC_RECORD_BYTES, memory
    )
    levels.delete()
    return result
