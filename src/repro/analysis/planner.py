"""An EXPLAIN for Ext-SCC: predicted iterations and I/O before running.

Given a graph's size, the memory budget, and two empirical contraction
coefficients (the per-iteration node-retention ratio of the vertex cover
and the edge-growth factor of the bypass construction), the planner
simulates the contraction schedule *analytically* and prices every
iteration with the :class:`~repro.analysis.cost_model.CostModel` — the
database-style "query plan" a user inspects before paying for the run.

Defaults for the coefficients come from the measured contraction traces
(`benchmarks/results/contraction_trace_*.txt`): covers retain ~72% of the
nodes and Ext-SCC-Op holds edge growth to ~1.25x per iteration on the
Table I workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.cost_model import CostModel
from repro.constants import SEMI_EXTERNAL_BYTES_PER_NODE
from repro.core.ext_scc import IterationRecord

__all__ = ["ExtSCCPlan", "PlannedIteration", "plan_ext_scc"]


@dataclass(frozen=True)
class PlannedIteration:
    """One predicted contraction level."""

    level: int
    num_nodes: int
    num_edges: int
    next_num_nodes: int
    next_num_edges: int
    predicted_ios: int


@dataclass
class ExtSCCPlan:
    """The full predicted schedule of an Ext-SCC run."""

    num_nodes: int
    num_edges: int
    memory_bytes: int
    block_size: int
    iterations: List[PlannedIteration] = field(default_factory=list)
    semi_scc_ios: int = 0
    feasible: bool = True

    @property
    def num_iterations(self) -> int:
        """Predicted contraction depth."""
        return len(self.iterations)

    @property
    def total_ios(self) -> int:
        """Predicted total block I/Os."""
        return sum(i.predicted_ios for i in self.iterations) + self.semi_scc_ios

    def render(self) -> str:
        """A printable plan, one row per predicted iteration."""
        lines = [
            f"Ext-SCC plan: |V|={self.num_nodes:,} |E|={self.num_edges:,} "
            f"M={self.memory_bytes:,}B B={self.block_size}B",
            f"semi-external threshold: "
            f"{SEMI_EXTERNAL_BYTES_PER_NODE * self.num_nodes + self.block_size:,}B",
        ]
        if not self.feasible:
            lines.append(
                "NOT FEASIBLE: contraction is predicted to densify before "
                "the node set fits — raise M or enable more reductions"
            )
            return "\n".join(lines)
        lines.append(f"{'iter':>4} {'|V|':>10} {'|E|':>11} {'pred. I/Os':>11}")
        for it in self.iterations:
            lines.append(
                f"{it.level:>4} {it.num_nodes:>10,} {it.num_edges:>11,} "
                f"{it.predicted_ios:>11,}"
            )
        lines.append(f"semi-SCC on the final graph: ~{self.semi_scc_ios:,} I/Os")
        lines.append(f"TOTAL predicted: ~{self.total_ios:,} block I/Os "
                     f"({self.num_iterations} iterations)")
        return "\n".join(lines)


def plan_ext_scc(
    num_nodes: int,
    num_edges: int,
    memory_bytes: int,
    block_size: int = 4096,
    node_retention: float = 0.72,
    edge_growth: float = 1.25,
    semi_passes: int = 3,
    product_operator: bool = False,
    max_iterations: int = 200,
) -> ExtSCCPlan:
    """Predict an Ext-SCC run's schedule and I/O.

    Args:
        num_nodes, num_edges: the input graph's size.
        memory_bytes: the budget ``M``.
        block_size: the block size ``B``.
        node_retention: predicted ``|V_{i+1}| / |V_i|`` (vertex-cover size).
        edge_growth: predicted ``|E_{i+1}| / |E_i|``.
        semi_passes: edge scans the semi-external solver is priced at.
        product_operator: price the Definition 7.1 record widths.
        max_iterations: give up (``feasible=False``) past this depth.

    Returns:
        An :class:`ExtSCCPlan`; ``feasible`` is False when the predicted
        schedule never satisfies the stop condition.
    """
    model = CostModel(block_size, memory_bytes)
    plan = ExtSCCPlan(num_nodes, num_edges, memory_bytes, block_size)
    threshold = memory_bytes - block_size
    nodes, edges = num_nodes, num_edges
    level = 0
    while SEMI_EXTERNAL_BYTES_PER_NODE * nodes > threshold:
        level += 1
        if level > max_iterations:
            plan.feasible = False
            return plan
        next_nodes = max(1, int(nodes * node_retention))
        next_edges = max(0, int(edges * edge_growth))
        record = IterationRecord(
            level=level, num_nodes=nodes, num_edges=edges,
            next_num_nodes=next_nodes, next_num_edges=next_edges, io=None,  # type: ignore[arg-type]
        )
        ios = model.contraction_iteration(record, product_operator)
        ios += model.expansion_iteration(record)
        plan.iterations.append(
            PlannedIteration(level, nodes, edges, next_nodes, next_edges, ios)
        )
        if next_nodes >= nodes:
            plan.feasible = False
            return plan
        nodes, edges = next_nodes, next_edges
    plan.semi_scc_ios = model.semi_scc(edges, semi_passes)
    return plan
