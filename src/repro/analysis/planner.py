"""An EXPLAIN for Ext-SCC: predicted iterations and I/O before running.

Given a graph's size, the memory budget, and two empirical contraction
coefficients (the per-iteration node-retention ratio of the vertex cover
and the edge-growth factor of the bypass construction), the planner
simulates the contraction schedule *analytically* and prices every
iteration with the :class:`~repro.analysis.cost_model.CostModel` — the
database-style "query plan" a user inspects before paying for the run.

Defaults for the coefficients come from the measured contraction traces
(`benchmarks/results/contraction_trace_*.txt`): covers retain ~72% of the
nodes and Ext-SCC-Op holds edge growth to ~1.25x per iteration on the
Table I workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.analysis.cost_model import CostModel
from repro.constants import SEMI_EXTERNAL_BYTES_PER_NODE
from repro.core.config import ExtSCCConfig
from repro.core.ext_scc import IterationRecord
from repro.plan import ExtPlan

__all__ = [
    "ExtSCCPlan",
    "PlannedIteration",
    "plan_ext_scc",
    "predict_plan",
    "optimize_plan",
]


@dataclass(frozen=True)
class PlannedIteration:
    """One predicted contraction level."""

    level: int
    num_nodes: int
    num_edges: int
    next_num_nodes: int
    next_num_edges: int
    predicted_ios: int


@dataclass
class ExtSCCPlan:
    """The full predicted schedule of an Ext-SCC run."""

    num_nodes: int
    num_edges: int
    memory_bytes: int
    block_size: int
    iterations: List[PlannedIteration] = field(default_factory=list)
    semi_scc_ios: int = 0
    feasible: bool = True

    @property
    def num_iterations(self) -> int:
        """Predicted contraction depth."""
        return len(self.iterations)

    @property
    def total_ios(self) -> int:
        """Predicted total block I/Os."""
        return sum(i.predicted_ios for i in self.iterations) + self.semi_scc_ios

    def render(self) -> str:
        """A printable plan, one row per predicted iteration."""
        lines = [
            f"Ext-SCC plan: |V|={self.num_nodes:,} |E|={self.num_edges:,} "
            f"M={self.memory_bytes:,}B B={self.block_size}B",
            f"semi-external threshold: "
            f"{SEMI_EXTERNAL_BYTES_PER_NODE * self.num_nodes + self.block_size:,}B",
        ]
        if not self.feasible:
            lines.append(
                "NOT FEASIBLE: contraction is predicted to densify before "
                "the node set fits — raise M or enable more reductions"
            )
            return "\n".join(lines)
        lines.append(f"{'iter':>4} {'|V|':>10} {'|E|':>11} {'pred. I/Os':>11}")
        for it in self.iterations:
            lines.append(
                f"{it.level:>4} {it.num_nodes:>10,} {it.num_edges:>11,} "
                f"{it.predicted_ios:>11,}"
            )
        lines.append(f"semi-SCC on the final graph: ~{self.semi_scc_ios:,} I/Os")
        lines.append(f"TOTAL predicted: ~{self.total_ios:,} block I/Os "
                     f"({self.num_iterations} iterations)")
        return "\n".join(lines)


def _sort_parts(
    model: CostModel, records: int, record_size: int, streamed: bool
) -> Tuple[int, int, int]:
    """``(run formation, merge passes, final write)`` blocks of one
    external sort, decomposed so the three parts sum *exactly* to
    :meth:`CostModel.sort` (materialized) or
    :meth:`CostModel.sort_streamed` (fused):

    * materialized, multi-run: ``n + (2L-1)n + n = (1+2L)n``;
    * materialized, single run: ``n + 0 + 0`` (the rename shortcut);
    * streamed: ``n + (2L-1)n + 0 = 2Ln`` — the final level only reads.
    """
    if records <= 0:
        return 0, 0, 0
    nblocks = model.blocks(records, record_size)
    runs = model.expected_runs(records, record_size)
    fan_in = max(2, model.memory_bytes // model.block_size - 1)
    if streamed:
        levels = 1 if runs <= 1 else (math.ceil(math.log(runs, fan_in)) or 1)
        return nblocks, (2 * levels - 1) * nblocks, 0
    if runs == 1:
        return nblocks, 0, 0
    levels = math.ceil(math.log(runs, fan_in)) or 1
    return nblocks, (2 * levels - 1) * nblocks, nblocks


def _op_cost(model: CostModel, op) -> int:
    """Blocks one operator's cost spec prices to (serial total)."""
    kind = op.cost[0]
    if kind == "free":
        return 0
    records, width = op.cost[1], op.cost[2]
    if kind in ("scan", "write"):
        return model.scan(records, width)
    parts = _sort_parts(model, records, width, streamed=op.fused)
    if kind == "sort-runs":
        return parts[0]
    if kind == "merge-passes":
        return parts[1]
    if kind == "sort-final":
        return parts[2]
    raise ValueError(f"unknown cost spec {op.cost!r} on {op.label!r}")


def predict_plan(plan: ExtPlan, model: CostModel) -> int:
    """Fill every operator's ``predicted_ios`` / ``predicted_makespan``.

    Free operators (in-flight transforms, fused co-scans) keep
    ``predicted_ios=None`` and render as ``-``; elided operators predict
    nothing.  Returns the plan's predicted total.  By the
    :func:`_sort_parts` invariant, a plan whose operators mirror one cost
    model phase sums to exactly that phase's prediction — the unit tests
    pin contract/expand/semi plans against
    :meth:`CostModel.contraction_iteration` and friends.
    """
    for op in plan.ops:
        if op.elided or op.cost[0] == "free":
            op.predicted_ios = None
            op.predicted_makespan = None
            continue
        op.predicted_ios = _op_cost(model, op)
        op.predicted_makespan = model.parallel(op.predicted_ios, op.workers)
    return plan.total_predicted


def optimize_plan(
    plan: ExtPlan, model: CostModel, config: ExtSCCConfig
) -> ExtPlan:
    """The planner pass: cost-based rewrites over a freshly built plan.

    Applies, in order:

    1. **Fusion** (PR 1): every sort group with a ``fusable``
       ``Materialize`` is re-priced streamed vs. materialized; when
       streaming is no more expensive (it never is — ``2Ln <= (1+2L)n``),
       the ``Materialize`` is elided and the group's sort operators
       marked ``fused``.  The executable stages already stream these
       boundaries, so the rewrite is what makes the declarative view —
       and its cost — match what runs.
    2. **Codec selection** (PR 2): every writing operator is tagged with
       ``config.codec``; a calibrated model then prices its blocks at the
       measured stored width (:meth:`CostModel.stored_width`).
    3. **Worker sharding** (PR 4): with ``config.workers > 1`` every
       priced operator is tagged with the shard width ``K`` and gets a
       busiest-channel ``predicted_makespan`` of ``ceil(blocks/K)``
       (totals are unchanged — sharding only redistributes I/O).

    Finishes with :func:`predict_plan`.  Returns ``plan`` (mutated).
    """
    # -- 1. fusion ---------------------------------------------------------
    saved = 0
    fused_groups = 0
    for mat in plan.ops:
        if not (mat.kind == "materialize" and mat.fusable and mat.group):
            continue
        group = [op for op in plan.ops if op.group == mat.group]
        records, width = mat.cost[1], mat.cost[2]
        materialized = sum(_sort_parts(model, records, width, False))
        streamed = sum(_sort_parts(model, records, width, True))
        if streamed <= materialized:
            saved += materialized - streamed
            fused_groups += 1
            mat.elided = True
            for op in group:
                if op is not mat:
                    op.fused = True
    if fused_groups:
        plan.rewrites.append(f"fuse({fused_groups} sorts, -{saved} blocks)")
    # -- 2. codec ----------------------------------------------------------
    tagged = False
    for op in plan.ops:
        if op.writes and not op.elided:
            op.codec = config.codec
            tagged = True
    if tagged:
        plan.rewrites.append(f"codec={config.codec}")
    # -- 3. sharding -------------------------------------------------------
    if config.workers > 1:
        for op in plan.ops:
            if op.cost[0] != "free" and not op.elided:
                op.workers = config.workers
        plan.rewrites.append(f"shard(K={config.workers})")
    predict_plan(plan, model)
    return plan


def plan_ext_scc(
    num_nodes: int,
    num_edges: int,
    memory_bytes: int,
    block_size: int = 4096,
    node_retention: float = 0.72,
    edge_growth: float = 1.25,
    semi_passes: int = 3,
    product_operator: bool = False,
    max_iterations: int = 200,
) -> ExtSCCPlan:
    """Predict an Ext-SCC run's schedule and I/O.

    Args:
        num_nodes, num_edges: the input graph's size.
        memory_bytes: the budget ``M``.
        block_size: the block size ``B``.
        node_retention: predicted ``|V_{i+1}| / |V_i|`` (vertex-cover size).
        edge_growth: predicted ``|E_{i+1}| / |E_i|``.
        semi_passes: edge scans the semi-external solver is priced at.
        product_operator: price the Definition 7.1 record widths.
        max_iterations: give up (``feasible=False``) past this depth.

    Returns:
        An :class:`ExtSCCPlan`; ``feasible`` is False when the predicted
        schedule never satisfies the stop condition.
    """
    model = CostModel(block_size, memory_bytes)
    plan = ExtSCCPlan(num_nodes, num_edges, memory_bytes, block_size)
    threshold = memory_bytes - block_size
    nodes, edges = num_nodes, num_edges
    level = 0
    while SEMI_EXTERNAL_BYTES_PER_NODE * nodes > threshold:
        level += 1
        if level > max_iterations:
            plan.feasible = False
            return plan
        next_nodes = max(1, int(nodes * node_retention))
        next_edges = max(0, int(edges * edge_growth))
        record = IterationRecord(
            level=level, num_nodes=nodes, num_edges=edges,
            next_num_nodes=next_nodes, next_num_edges=next_edges, io=None,  # type: ignore[arg-type]
        )
        ios = model.contraction_iteration(record, product_operator)
        ios += model.expansion_iteration(record)
        plan.iterations.append(
            PlannedIteration(level, nodes, edges, next_nodes, next_edges, ios)
        )
        if next_nodes >= nodes:
            plan.feasible = False
            return plan
        nodes, edges = next_nodes, next_edges
    plan.semi_scc_ios = model.semi_scc(edges, semi_passes)
    return plan
