"""An EXPLAIN for Ext-SCC: predicted iterations and I/O before running.

Given a graph's size, the memory budget, and two empirical contraction
coefficients (the per-iteration node-retention ratio of the vertex cover
and the edge-growth factor of the bypass construction), the planner
simulates the contraction schedule *analytically* and prices every
iteration with the :class:`~repro.analysis.cost_model.CostModel` — the
database-style "query plan" a user inspects before paying for the run.

Defaults for the coefficients come from the measured contraction traces
(`benchmarks/results/contraction_trace_*.txt`): covers retain ~72% of the
nodes and Ext-SCC-Op holds edge growth to ~1.25x per iteration on the
Table I workloads.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.calibration import CalibrationProfile
from repro.analysis.cost_model import CostModel
from repro.constants import SEMI_EXTERNAL_BYTES_PER_NODE
from repro.core.config import ExtSCCConfig
from repro.core.ext_scc import IterationRecord
from repro.io.codecs import CODECS
from repro.io.parallel import EXECUTOR_BACKENDS, processes_available
from repro.plan import ExtPlan, PlanCache
from repro.semi_external import SEMI_SCC_SOLVERS

__all__ = [
    "ExtSCCPlan",
    "PlannedIteration",
    "PlanCandidate",
    "TuningDecision",
    "plan_ext_scc",
    "predict_plan",
    "optimize_plan",
    "autotune_config",
    "enumerate_knobs",
    "WORKER_OPTIONS",
]

WORKER_OPTIONS = (1, 2, 4, 8)
"""Shard widths the autotuner enumerates."""


@dataclass(frozen=True)
class PlannedIteration:
    """One predicted contraction level."""

    level: int
    num_nodes: int
    num_edges: int
    next_num_nodes: int
    next_num_edges: int
    predicted_ios: int


@dataclass
class ExtSCCPlan:
    """The full predicted schedule of an Ext-SCC run."""

    num_nodes: int
    num_edges: int
    memory_bytes: int
    block_size: int
    iterations: List[PlannedIteration] = field(default_factory=list)
    semi_scc_ios: int = 0
    feasible: bool = True

    @property
    def num_iterations(self) -> int:
        """Predicted contraction depth."""
        return len(self.iterations)

    @property
    def total_ios(self) -> int:
        """Predicted total block I/Os."""
        return sum(i.predicted_ios for i in self.iterations) + self.semi_scc_ios

    def render(self) -> str:
        """A printable plan, one row per predicted iteration."""
        lines = [
            f"Ext-SCC plan: |V|={self.num_nodes:,} |E|={self.num_edges:,} "
            f"M={self.memory_bytes:,}B B={self.block_size}B",
            f"semi-external threshold: "
            f"{SEMI_EXTERNAL_BYTES_PER_NODE * self.num_nodes + self.block_size:,}B",
        ]
        if not self.feasible:
            lines.append(
                "NOT FEASIBLE: contraction is predicted to densify before "
                "the node set fits — raise M or enable more reductions"
            )
            return "\n".join(lines)
        lines.append(f"{'iter':>4} {'|V|':>10} {'|E|':>11} {'pred. I/Os':>11}")
        for it in self.iterations:
            lines.append(
                f"{it.level:>4} {it.num_nodes:>10,} {it.num_edges:>11,} "
                f"{it.predicted_ios:>11,}"
            )
        lines.append(f"semi-SCC on the final graph: ~{self.semi_scc_ios:,} I/Os")
        lines.append(f"TOTAL predicted: ~{self.total_ios:,} block I/Os "
                     f"({self.num_iterations} iterations)")
        return "\n".join(lines)


def _sort_parts(
    model: CostModel, records: int, record_size: int, streamed: bool
) -> Tuple[int, int, int]:
    """``(run formation, merge passes, final write)`` blocks of one
    external sort, decomposed so the three parts sum *exactly* to
    :meth:`CostModel.sort` (materialized) or
    :meth:`CostModel.sort_streamed` (fused):

    * materialized, multi-run: ``n + (2L-1)n + n = (1+2L)n``;
    * materialized, single run: ``n + 0 + 0`` (the rename shortcut);
    * streamed: ``n + (2L-1)n + 0 = 2Ln`` — the final level only reads.
    """
    if records <= 0:
        return 0, 0, 0
    nblocks = model.blocks(records, record_size)
    runs = model.expected_runs(records, record_size)
    fan_in = max(2, model.memory_bytes // model.block_size - 1)
    if streamed:
        levels = 1 if runs <= 1 else (math.ceil(math.log(runs, fan_in)) or 1)
        return nblocks, (2 * levels - 1) * nblocks, 0
    if runs == 1:
        return nblocks, 0, 0
    levels = math.ceil(math.log(runs, fan_in)) or 1
    return nblocks, (2 * levels - 1) * nblocks, nblocks


def _op_cost(model: CostModel, op) -> int:
    """Blocks one operator's cost spec prices to (serial total)."""
    kind = op.cost[0]
    if kind == "free":
        return 0
    records, width = op.cost[1], op.cost[2]
    if kind in ("scan", "write"):
        return model.scan(records, width)
    parts = _sort_parts(model, records, width, streamed=op.fused)
    if kind == "sort-runs":
        return parts[0]
    if kind == "merge-passes":
        return parts[1]
    if kind == "sort-final":
        return parts[2]
    raise ValueError(f"unknown cost spec {op.cost!r} on {op.label!r}")


def predict_plan(plan: ExtPlan, model: CostModel) -> int:
    """Fill every operator's ``predicted_ios`` / ``predicted_makespan``.

    Free operators (in-flight transforms, fused co-scans) keep
    ``predicted_ios=None`` and render as ``-``; elided operators predict
    nothing.  Returns the plan's predicted total.  By the
    :func:`_sort_parts` invariant, a plan whose operators mirror one cost
    model phase sums to exactly that phase's prediction — the unit tests
    pin contract/expand/semi plans against
    :meth:`CostModel.contraction_iteration` and friends.
    """
    for op in plan.ops:
        if op.elided or op.cost[0] == "free":
            op.predicted_ios = None
            op.predicted_makespan = None
            continue
        op.predicted_ios = _op_cost(model, op)
        op.predicted_makespan = model.parallel(op.predicted_ios, op.workers)
    return plan.total_predicted


def optimize_plan(
    plan: ExtPlan,
    model: CostModel,
    config: ExtSCCConfig,
    decision: Optional["TuningDecision"] = None,
) -> ExtPlan:
    """The planner pass: cost-based rewrites over a freshly built plan.

    Applies, in order:

    1. **Fusion** (PR 1): every sort group with a ``fusable``
       ``Materialize`` is priced both ways — streamed vs. materialized —
       and the cheaper boundary wins (streaming always does —
       ``2Ln <= (1+2L)n`` — so the ``Materialize`` is elided and the
       group's sort operators marked ``fused``).  The executable stages
       already stream these boundaries, so the rewrite is what makes the
       declarative view — and its cost — match what runs.
    2. **Codec selection** (PR 2): every writing operator is tagged with
       ``config.codec``; a calibrated model then prices its blocks at the
       measured stored width (:meth:`CostModel.stored_width`).
    3. **Worker sharding** (PR 4): with ``config.workers > 1`` every
       priced operator is tagged with the shard width ``K`` and gets a
       busiest-channel ``predicted_makespan`` of ``ceil(blocks/K)``
       (totals are unchanged — sharding only redistributes I/O).

    When the codec / worker / executor / solver knobs were themselves
    chosen by the enumerate-and-price search (:func:`autotune_config`),
    pass its ``decision``: the chosen candidate, its price, and the
    runner-up's are then recorded in ``plan.rewrites`` so ``--explain``
    (and the trace JSON) show *why* this plan looks the way it does.
    Without a decision the rewrite log is byte-identical to the static
    path — the plan-golden CI job depends on that.

    Finishes with :func:`predict_plan`.  Returns ``plan`` (mutated).
    """
    # -- 1. fusion ---------------------------------------------------------
    saved = 0
    fused_groups = 0
    for mat in plan.ops:
        if not (mat.kind == "materialize" and mat.fusable and mat.group):
            continue
        group = [op for op in plan.ops if op.group == mat.group]
        records, width = mat.cost[1], mat.cost[2]
        materialized = sum(_sort_parts(model, records, width, False))
        streamed = sum(_sort_parts(model, records, width, True))
        if streamed <= materialized:
            saved += materialized - streamed
            fused_groups += 1
            mat.elided = True
            for op in group:
                if op is not mat:
                    op.fused = True
    if fused_groups:
        plan.rewrites.append(f"fuse({fused_groups} sorts, -{saved} blocks)")
    # -- 2. codec ----------------------------------------------------------
    tagged = False
    for op in plan.ops:
        if op.writes and not op.elided:
            op.codec = config.codec
            tagged = True
    if tagged:
        plan.rewrites.append(f"codec={config.codec}")
    # -- 3. sharding -------------------------------------------------------
    if config.workers > 1:
        for op in plan.ops:
            if op.cost[0] != "free" and not op.elided:
                op.workers = config.workers
        plan.rewrites.append(f"shard(K={config.workers})")
    # -- 4. autotune provenance --------------------------------------------
    if decision is not None:
        plan.rewrites.extend(decision.rewrite_lines())
    predict_plan(plan, model)
    return plan


def _analytic_schedule(
    num_nodes: int,
    num_edges: int,
    memory_bytes: int,
    block_size: int,
    node_retention: float = 0.72,
    edge_growth: float = 1.25,
    bytes_per_node: int = SEMI_EXTERNAL_BYTES_PER_NODE,
    max_iterations: int = 200,
) -> Tuple[List[IterationRecord], int, bool]:
    """Simulate the contraction schedule analytically.

    Returns ``(iterations, final_edges, feasible)`` — the predicted
    per-level sizes (as :class:`IterationRecord`\\ s with ``io=None``),
    the edge count the semi-external solver will see, and whether the
    stop condition is ever reached.  The schedule depends only on sizes
    and the two coefficients, never on the tuning knobs, so the autotuner
    computes it once and prices every candidate against it.
    """
    threshold = memory_bytes - block_size
    nodes, edges = num_nodes, num_edges
    records: List[IterationRecord] = []
    level = 0
    while bytes_per_node * nodes > threshold:
        level += 1
        if level > max_iterations:
            return records, edges, False
        next_nodes = max(1, int(nodes * node_retention))
        next_edges = max(0, int(edges * edge_growth))
        records.append(IterationRecord(
            level=level, num_nodes=nodes, num_edges=edges,
            next_num_nodes=next_nodes, next_num_edges=next_edges, io=None,  # type: ignore[arg-type]
        ))
        if next_nodes >= nodes:
            return records, edges, False
        nodes, edges = next_nodes, next_edges
    return records, edges, True


def plan_ext_scc(
    num_nodes: int,
    num_edges: int,
    memory_bytes: int,
    block_size: int = 4096,
    node_retention: float = 0.72,
    edge_growth: float = 1.25,
    semi_passes: int = 3,
    product_operator: bool = False,
    max_iterations: int = 200,
    model: Optional[CostModel] = None,
) -> ExtSCCPlan:
    """Predict an Ext-SCC run's schedule and I/O.

    Args:
        num_nodes, num_edges: the input graph's size.
        memory_bytes: the budget ``M``.
        block_size: the block size ``B``.
        node_retention: predicted ``|V_{i+1}| / |V_i|`` (vertex-cover size).
        edge_growth: predicted ``|E_{i+1}| / |E_i|``.
        semi_passes: edge scans the semi-external solver is priced at.
        product_operator: price the Definition 7.1 record widths.
        max_iterations: give up (``feasible=False``) past this depth.
        model: price with this (possibly trace-calibrated) model instead
            of the analytic default.

    Returns:
        An :class:`ExtSCCPlan`; ``feasible`` is False when the predicted
        schedule never satisfies the stop condition.
    """
    if model is None:
        model = CostModel(block_size, memory_bytes)
    plan = ExtSCCPlan(num_nodes, num_edges, memory_bytes, block_size)
    records, final_edges, feasible = _analytic_schedule(
        num_nodes, num_edges, memory_bytes, block_size,
        node_retention, edge_growth, max_iterations=max_iterations,
    )
    for record in records:
        ios = model.contraction_iteration(record, product_operator)
        ios += model.expansion_iteration(record)
        plan.iterations.append(PlannedIteration(
            record.level, record.num_nodes, record.num_edges,
            record.next_num_nodes, record.next_num_edges, ios,
        ))
    plan.feasible = feasible
    if feasible:
        plan.semi_scc_ios = model.semi_scc(final_edges, semi_passes)
    return plan


# -- the enumerate-and-price search (the self-tuning optimizer) --------------


@dataclass(frozen=True)
class PlanCandidate:
    """One point of the knob cross-product, with its calibrated prices.

    ``predicted_ios`` is the serial total (the ``"io"`` objective),
    ``predicted_makespan`` the busiest-channel critical path at this
    candidate's ``K``, and ``predicted_seconds`` the wall-clock estimate
    from the profile's per-(executor, K) constants (the ``"wallclock"``
    objective).  Every candidate computes identical SCC labels — the
    search only ever trades storage format and scheduling.
    """

    codec: str
    workers: int
    executor: str
    solver: str
    predicted_ios: int
    predicted_makespan: int
    predicted_seconds: float

    @property
    def label(self) -> str:
        return (f"{self.codec} K={self.workers} {self.executor} "
                f"{self.solver}")

    def price(self, objective: str) -> float:
        """The candidate's cost under one objective."""
        if objective == "io":
            return float(self.predicted_ios)
        if objective == "wallclock":
            return self.predicted_seconds
        raise ValueError(f"unknown objective {objective!r}")

    def to_payload(self) -> dict:
        return {
            "codec": self.codec,
            "workers": self.workers,
            "executor": self.executor,
            "solver": self.solver,
            "predicted_ios": self.predicted_ios,
            "predicted_makespan": self.predicted_makespan,
            "predicted_seconds": self.predicted_seconds,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PlanCandidate":
        return cls(
            codec=payload["codec"],
            workers=int(payload["workers"]),
            executor=payload["executor"],
            solver=payload["solver"],
            predicted_ios=int(payload["predicted_ios"]),
            predicted_makespan=int(payload["predicted_makespan"]),
            predicted_seconds=float(payload["predicted_seconds"]),
        )


def _format_price(objective: str, price: float) -> str:
    if objective == "io":
        return f"{int(price):,} blk"
    return f"{price:.4f}s"


@dataclass
class TuningDecision:
    """The search's outcome: the chosen candidate, every priced
    alternative, and the provenance a cache entry needs.

    ``cache_hit`` and ``planning_seconds`` are runtime facts of *this*
    lookup, not part of the decision itself — :meth:`to_payload` excludes
    them, which is what makes a warm-cache replay byte-identical to the
    cold search that produced it.
    """

    objective: str
    candidates: List[PlanCandidate]
    chosen_index: int
    calibration_version: str
    cache_key: str
    cache_hit: bool = False
    planning_seconds: float = 0.0

    @property
    def chosen(self) -> PlanCandidate:
        return self.candidates[self.chosen_index]

    def config(self, base: ExtSCCConfig) -> ExtSCCConfig:
        """The base config with the chosen knobs applied (everything
        algorithmic — reductions, budgets — is untouched)."""
        c = self.chosen
        return replace(
            base, codec=c.codec, workers=c.workers, executor=c.executor,
            semi_scc=c.solver,
        )

    def ranked(self) -> List[PlanCandidate]:
        """Candidates from best to worst under the decision's objective
        (deterministic: the chosen candidate leads its price tie, then
        ties break toward fewer workers, earlier executor, lexical
        codec/solver)."""
        return sorted(
            self.candidates,
            key=lambda c: (
                c.price(self.objective), c != self.chosen, c.workers,
                EXECUTOR_BACKENDS.index(c.executor), c.codec, c.solver,
            ),
        )

    def rewrite_lines(self) -> List[str]:
        """The rewrite-log entries ``optimize_plan`` appends so
        ``--explain`` (and the trace JSON) show what the search chose and
        what the runner-up would have cost.  Derived from the decision's
        content only — never from cache/runtime state — so cold and warm
        plans render identically."""
        chosen = self.chosen
        lines = [
            f"autotune[{self.objective}]={chosen.label} @ "
            f"{_format_price(self.objective, chosen.price(self.objective))} "
            f"({len(self.candidates)} candidates)"
        ]
        runners = [c for c in self.ranked() if c != chosen]
        if runners:
            delta = runners[0].price(self.objective) - chosen.price(self.objective)
            lines.append(
                f"runner-up: {runners[0].label} "
                f"+{_format_price(self.objective, delta)}"
            )
        return lines

    def render(self, limit: int = 12) -> str:
        """The candidate table ``scc --explain`` prints: every enumerated
        static configuration with its calibrated prices, best first."""
        ranked = self.ranked()
        source = ("plan cache (warm)" if self.cache_hit
                  else f"search over {len(self.candidates)} candidates")
        lines = [
            f"autotune: objective={self.objective} "
            f"calibration={self.calibration_version} — {source}",
            f"  {'rank':>4} {'codec':<10} {'K':>2} {'executor':<9} "
            f"{'solver':<16} {'pred.I/Os':>10} {'makespan':>9} "
            f"{'pred.secs':>10}",
        ]
        for rank, c in enumerate(ranked[:limit], start=1):
            marker = "->" if c == self.chosen else "  "
            lines.append(
                f"{marker}{rank:>4} {c.codec:<10} {c.workers:>2} "
                f"{c.executor:<9} {c.solver:<16} {c.predicted_ios:>10,} "
                f"{c.predicted_makespan:>9,} {c.predicted_seconds:>10.4f}"
            )
        if len(ranked) > limit:
            lines.append(f"  ... ({len(ranked) - limit} more candidates)")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """The cacheable content (JSON-exact; excludes runtime state)."""
        return {
            "objective": self.objective,
            "chosen": self.chosen_index,
            "calibration": self.calibration_version,
            "cache_key": self.cache_key,
            "candidates": [c.to_payload() for c in self.candidates],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TuningDecision":
        return cls(
            objective=payload["objective"],
            candidates=[
                PlanCandidate.from_payload(c) for c in payload["candidates"]
            ],
            chosen_index=int(payload["chosen"]),
            calibration_version=payload["calibration"],
            cache_key=payload["cache_key"],
        )


def enumerate_knobs(
    workers_options: Sequence[int] = WORKER_OPTIONS,
) -> List[Tuple[str, int, str, str]]:
    """The static-config space the search prices: every
    ``(codec, workers, executor, solver)`` combination, in deterministic
    order.  The ``processes`` backend is enumerated only where the
    platform can actually spawn workers."""
    executors = [
        e for e in EXECUTOR_BACKENDS
        if e != "processes" or processes_available()
    ]
    return [
        (codec, workers, executor, solver)
        for codec in sorted(CODECS)
        for solver in sorted(SEMI_SCC_SOLVERS)
        for executor in executors
        for workers in workers_options
    ]


def autotune_config(
    num_nodes: int,
    num_edges: int,
    memory_bytes: int,
    block_size: int,
    config: Optional[ExtSCCConfig] = None,
    profile: Optional[CalibrationProfile] = None,
    objective: Optional[str] = None,
    cache: Optional[PlanCache] = None,
    node_retention: float = 0.72,
    edge_growth: float = 1.25,
    workers_options: Sequence[int] = WORKER_OPTIONS,
) -> TuningDecision:
    """The self-tuning optimizer: enumerate the static-config space,
    price every candidate with the (calibrated) cost model, and choose.

    The contraction schedule is simulated once (:func:`_analytic_schedule`
    — sizes don't depend on the knobs), then each candidate is priced:

    * **I/Os** — contraction + expansion blocks under the codec's fitted
      stored widths, plus the solver's fitted pass count over the final
      edge file;
    * **makespan** — the same schedule's busiest-channel share at the
      candidate's ``K``;
    * **seconds** — the profile's per-(executor, K) affine fit applied to
      the predicted total (analytic default when uncalibrated, in which
      case the wallclock objective degenerates to I/O ranking).

    With a :class:`~repro.plan.PlanCache`, the search is skipped on a hit
    and the stored decision replayed byte-identically (``cache_hit`` set,
    so callers can skip recording a planning span).

    Args:
        num_nodes, num_edges: the graph-stats fingerprint.
        memory_bytes, block_size: the budget ``M`` and block size ``B``.
        config: base configuration (default: Ext-SCC-Op); its algorithmic
            knobs are preserved, its execution knobs overridden.
        profile: fitted constants (default: analytic).
        objective: ``"io"`` or ``"wallclock"`` (default:
            ``config.objective``).
        cache: optional decision cache.
        node_retention, edge_growth: contraction coefficients.
        workers_options: shard widths to enumerate.

    Returns:
        A :class:`TuningDecision`; apply it with ``decision.config(base)``
        and run normally — the chosen config executes exactly as the same
        static config would, so labels and ledgers are identical.
    """
    start = time.perf_counter()
    if config is None:
        config = ExtSCCConfig.optimized()
    if objective is None:
        objective = config.objective
    if profile is None:
        profile = CalibrationProfile()
    key = PlanCache.make_key(
        num_nodes, num_edges, memory_bytes, block_size,
        config.fingerprint(), profile.version, objective,
    )
    if cache is not None:
        payload = cache.lookup(key)
        if payload is not None:
            decision = TuningDecision.from_payload(payload)
            decision.cache_hit = True
            decision.planning_seconds = time.perf_counter() - start
            return decision
    records, final_edges, _feasible = _analytic_schedule(
        num_nodes, num_edges, memory_bytes, block_size,
        node_retention, edge_growth, config.bytes_per_node,
    )
    models = {
        codec: profile.model(block_size, memory_bytes, codec)
        for codec in sorted(CODECS)
    }

    def body_blocks(codec: str, workers: int) -> float:
        model = models[codec]
        return sum(
            model.contraction_iteration(r, config.product_operator, workers)
            + model.expansion_iteration(r, workers)
            for r in records
        )

    # The contracted node count the semi-external solver will see; it
    # prices the multi-bfs mask-column memory trade (a budget too tight
    # for the full source batch multiplies the solver's edge scans).
    final_nodes = records[-1].next_num_nodes if records else num_nodes
    candidates: List[PlanCandidate] = []
    for codec, workers, executor, solver in enumerate_knobs(workers_options):
        model = models[codec]
        passes = profile.semi_passes(solver)
        total = int(round(
            body_blocks(codec, 1) + model.semi_scc(final_edges, passes)
        ))
        if solver == "multi-bfs":
            semi_makespan = model.semi_scc_multi_bfs(
                final_edges, final_nodes, passes, workers
            )
        else:
            semi_makespan = model.semi_scc(final_edges, passes, workers)
        makespan = int(round(body_blocks(codec, workers) + semi_makespan))
        candidates.append(PlanCandidate(
            codec=codec,
            workers=workers,
            executor=executor,
            solver=solver,
            predicted_ios=total,
            predicted_makespan=makespan,
            predicted_seconds=profile.seconds(total, executor, workers,
                                              codec),
        ))
    chosen_index = min(
        range(len(candidates)),
        key=lambda i: (
            candidates[i].price(objective),
            candidates[i].workers,
            EXECUTOR_BACKENDS.index(candidates[i].executor),
            candidates[i].codec != config.codec,
            candidates[i].codec,
            candidates[i].solver != config.semi_scc,
            candidates[i].solver,
        ),
    )
    decision = TuningDecision(
        objective=objective,
        candidates=candidates,
        chosen_index=chosen_index,
        calibration_version=profile.version,
        cache_key=key,
    )
    if cache is not None:
        cache.store(key, decision.to_payload())
    decision.planning_seconds = time.perf_counter() - start
    return decision
