"""Analytic I/O cost model (the paper's Theorems 5.1, 5.2 and 6.1).

The paper states per-phase I/O complexities:

* Get-V (Thm 5.1):      O(sort(|E_i|) + sort(|V_i|))
* Get-E (Thm 5.2):      O(sort(|E_i|) + scan(|V_{i+1}|) + scan(|E_{i+1}|))
* Expansion (Thm 6.1):  O(scan(|V_{i+1}|) + sort(|E_i|) + sort(|V_i|))

:class:`CostModel` turns those statements into concrete block counts for
this implementation (each O(·) expanded into the actual number of sorts
and scans the pipeline performs), so a benchmark can check the *measured*
ledger against the *predicted* cost — the closest an implementation can
get to "reproducing a theorem".

The constants below mirror `repro.core`: e.g. one contraction iteration
sorts the edge file twice for ``E_in``/``E_out``, once for ``E_d``, once
for the cover, once for ``E_pre``, and scans everything it sorts.  Sorts
whose final merge streams into the next operator (the fused boundaries in
``contraction.py`` / ``expansion.py``) are modelled by
:meth:`CostModel.sort_streamed`, which charges no output write; run counts
assume replacement-selection formation (``#runs ≈ m / 2M``).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional

from repro.constants import (
    AUGMENTED_EDGE_BYTES,
    EDGE_RECORD_BYTES,
    NODE_RECORD_BYTES,
    SCC_RECORD_BYTES,
)
from repro.core.ext_scc import IterationRecord

__all__ = ["CostModel"]


class CostModel:
    """Block-level cost predictions under the Aggarwal–Vitter model.

    Args:
        block_size: the device's ``B`` in bytes.
        memory_bytes: the budget ``M`` (drives sort fan-in and run count).
        bytes_per_record: measured *stored* bytes per record, keyed by the
            logical record width — what the compressed pipeline actually
            paid per record of each stream class.  Calibrate it from a run's
            ledger (``{w: stored / records for w, (records, stored) in
            device.stats.bytes_by_width.items()}``); widths without an
            entry fall back to their logical size (the fixed ablation).
            Disk-resident quantities (:meth:`blocks`, scans, merge passes)
            then use the stored width, while in-memory quantities (run
            lengths, fan-in) keep the logical width — the heap holds
            uncompressed tuples.
    """

    def __init__(
        self,
        block_size: int,
        memory_bytes: int,
        bytes_per_record: Optional[Mapping[int, float]] = None,
    ) -> None:
        self.block_size = block_size
        self.memory_bytes = memory_bytes
        self.bytes_per_record = dict(bytes_per_record) if bytes_per_record else {}

    # -- primitives ----------------------------------------------------------

    def stored_width(self, record_size: int) -> float:
        """Effective on-disk bytes per record of this logical width."""
        return self.bytes_per_record.get(record_size, record_size)

    def blocks(self, records: int, record_size: int) -> int:
        """Blocks occupied by ``records`` records (at the stored width)."""
        return math.ceil(max(0, records) * self.stored_width(record_size) / self.block_size)

    def scan(self, records: int, record_size: int, workers: int = 1) -> int:
        """``scan(m)``: one sequential pass (busiest-channel share when
        striped over ``workers`` channels)."""
        return self.parallel(self.blocks(records, record_size), workers)

    def expected_runs(self, records: int, record_size: int) -> int:
        """Expected initial run count under replacement selection.

        Runs average ``2M`` records on random input (Knuth §5.4.1), so
        ``#runs ≈ ceil(m / 2M)`` — half the classic ``ceil(m / M)`` — and
        anything that fits in memory is one run.
        """
        run_records = max(1, self.memory_bytes // record_size)
        if records <= run_records:
            return 1
        return max(2, math.ceil(records / (2 * run_records)))

    def sort(self, records: int, record_size: int, workers: int = 1) -> int:
        """``sort(m)``: run formation writes + merge passes (reads+writes).

        Matches :func:`repro.io.sort.external_sort_records` with
        replacement-selection run formation: expected ``m / 2M`` runs,
        merge fan-in ``M/B - 1``, one final merge producing the output
        file — except the single-run case, where the run file is renamed
        into the output and the final merge costs nothing.

        When striped over ``workers`` channels, each pass — formation and
        every merge level — is a barrier (the next level reads what this
        one wrote), so each contributes its own busiest-channel share.
        """
        if records <= 0:
            return 0
        nblocks = self.blocks(records, record_size)
        runs = self.expected_runs(records, record_size)
        if runs == 1:
            # single-run shortcut: formation writes, then a free rename.
            return self.parallel(nblocks, workers)
        fan_in = max(2, self.memory_bytes // self.block_size - 1)
        levels = math.ceil(math.log(runs, fan_in)) or 1
        # run formation writes + each level reads and writes every block.
        return (1 + 2 * levels) * self.parallel(nblocks, workers)

    def sort_streamed(self, records: int, record_size: int,
                      workers: int = 1) -> int:
        """``sort(m)`` when the final merge streams into a consumer
        (:func:`repro.io.sort.external_sort_stream`): the output is never
        written, so a fused boundary costs one read of the run files in
        place of a write + later re-read of a materialized result.
        """
        if records <= 0:
            return 0
        nblocks = self.blocks(records, record_size)
        runs = self.expected_runs(records, record_size)
        fan_in = max(2, self.memory_bytes // self.block_size - 1)
        levels = 1 if runs <= 1 else (math.ceil(math.log(runs, fan_in)) or 1)
        # formation writes + intermediate passes + the final streaming read.
        return (2 * levels) * self.parallel(nblocks, workers)

    # -- pipeline phases -------------------------------------------------------

    def get_v(self, num_nodes: int, num_edges: int,
              product_operator: bool = False, workers: int = 1) -> int:
        """Theorem 5.1 instantiated: Get-V's sorts and scans."""
        e, v = num_edges, num_nodes
        k = workers
        ed_width = EDGE_RECORD_BYTES + (8 if product_operator else 4)
        cost = 2 * self.sort(e, EDGE_RECORD_BYTES, k)        # E_in, E_out
        cost += 2 * self.scan(e, EDGE_RECORD_BYTES, k)       # degree co-scan
        cost += self.scan(v, 12 if product_operator else 8, k)  # V_d write
        cost += self.scan(e, ed_width, k)                    # E_d build
        cost += self.sort_streamed(e, ed_width, k)           # E_d resort (fused)
        cost += self.sort(e, NODE_RECORD_BYTES, k)           # cover sort+dedupe
        return cost

    def get_e(self, num_edges: int, next_nodes: int, next_edges: int,
              workers: int = 1) -> int:
        """Theorem 5.2 instantiated: Get-E's joins and the E_pre sort."""
        k = workers
        cost = 2 * self.scan(num_edges, EDGE_RECORD_BYTES, k)   # E_del co-scans
        cost += self.sort_streamed(num_edges, EDGE_RECORD_BYTES, k)  # E_pre (fused)
        cost += self.scan(next_nodes, NODE_RECORD_BYTES, k)     # cover scans
        cost += self.scan(next_edges, EDGE_RECORD_BYTES, k)     # E_{i+1} write
        return cost

    def contraction_iteration(self, record: IterationRecord,
                              product_operator: bool = False,
                              workers: int = 1) -> int:
        """Predicted blocks for one full contraction iteration."""
        return (
            self.get_v(record.num_nodes, record.num_edges, product_operator,
                       workers)
            + self.get_e(record.num_edges, record.next_num_nodes,
                         record.next_num_edges, workers)
        )

    def expansion_iteration(self, record: IterationRecord,
                            workers: int = 1) -> int:
        """Theorem 6.1 instantiated: two augments + the label merge."""
        e, v = record.num_edges, record.num_nodes
        k = workers
        per_augment = (
            self.sort_streamed(e, EDGE_RECORD_BYTES, k)   # by destination (fused)
            + self.sort_streamed(e, EDGE_RECORD_BYTES, k) # by source (fused)
            + self.scan(v, SCC_RECORD_BYTES, k)           # label merge join
            + self.sort(e, AUGMENTED_EDGE_BYTES, k)       # (v, SCC, u) grouping
        )
        # The reverse-graph augment flips edges in-flight; no reversed copy.
        labels = 2 * self.scan(v, SCC_RECORD_BYTES, k)  # SCC_del + merged SCC_i
        return 2 * per_augment + labels

    def semi_scc(self, num_edges: int, passes: int, workers: int = 1) -> int:
        """Semi-SCC: ``passes`` sequential scans of the edge file plus the
        label write-back."""
        return passes * self.scan(num_edges, EDGE_RECORD_BYTES, workers)

    # -- multi-bfs mask-column memory trade ------------------------------------

    def multi_bfs_sources(self, num_nodes: int, requested: int = 64) -> int:
        """Sources per ``multi-bfs`` round under *this* memory budget.

        Delegates to :func:`repro.semi_external.multi_bfs.source_budget`
        (the single source of truth the solver itself uses): the base
        footprint is ``8n + B``, and each batch of 8 sources costs one
        mask byte per node per direction, so a tight budget caps ``S``
        below the requested batch width.
        """
        from repro.io.memory import MemoryBudget
        from repro.semi_external.multi_bfs import source_budget

        return source_budget(
            num_nodes, MemoryBudget(self.memory_bytes), self.block_size,
            requested,
        )

    def multi_bfs_mask_bytes(self, num_nodes: int, sources: int) -> int:
        """Resident mask bytes for ``sources`` batched sources: one bit
        per source per node per direction, allocated in byte columns."""
        return 2 * num_nodes * math.ceil(sources / 8)

    def multi_bfs_round_factor(self, num_nodes: int,
                               requested: int = 64) -> int:
        """Edge-scan multiplier when memory shrinks the source batch.

        ``multi-bfs`` resolves ``S`` pivots per round; a budget that only
        fits ``S < requested`` sources needs ``ceil(requested / S)`` times
        as many rounds — and each round scans the edge file — to cover the
        same pivot work.  Ample memory returns 1 (calibrated pass counts
        already price the full-width behaviour).
        """
        sources = self.multi_bfs_sources(num_nodes, requested)
        return max(1, math.ceil(requested / sources))

    def semi_scc_multi_bfs(self, num_edges: int, num_nodes: int,
                           passes: int, workers: int = 1) -> int:
        """Semi-SCC priced for the ``multi-bfs`` solver: the calibrated
        pass count scaled by the memory-dependent round factor."""
        factor = self.multi_bfs_round_factor(num_nodes)
        return self.semi_scc(num_edges, passes * factor, workers)

    # -- parallel / makespan ---------------------------------------------------

    def parallel(self, blocks: int, workers: int) -> int:
        """Critical-path blocks of ``blocks`` striped over ``workers``
        channels: round-robin placement splits any contiguous range to
        within one block of even, so the busiest channel carries
        ``ceil(blocks / K)``."""
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        return math.ceil(max(0, blocks) / workers)

    def scan_parallel(self, records: int, record_size: int, workers: int) -> int:
        """``scan(m)`` on ``workers`` channels: per-channel critical path."""
        return self.parallel(self.scan(records, record_size), workers)

    def sort_parallel(self, records: int, record_size: int, workers: int) -> int:
        """``sort(m)`` on ``workers`` channels.  Every pass of the sort —
        run formation and each merge level — reads and writes blocks
        striped over all channels, so the whole sort parallelizes at the
        same ``1/K`` factor as a scan."""
        return self.parallel(self.sort(records, record_size), workers)

    def ext_scc_makespan(
        self,
        iterations: Iterable[IterationRecord],
        workers: int,
        semi_passes: int = 3,
        product_operator: bool = False,
        solver: Optional[str] = None,
        final_nodes: int = 0,
    ) -> int:
        """Predicted critical-path blocks for a striped Ext-SCC run.

        Mirrors :class:`~repro.io.parallel.MakespanMeter`, but at
        *operator* granularity: every sort pass and scan in the pipeline
        is a barrier (the consumer reads what the producer wrote), so each
        contributes its own busiest-channel share ``ceil(op_blocks / K)``
        under round-robin striping.  Summing those — rather than dividing
        the grand total by ``K`` — is what keeps the prediction honest at
        high ``K``, where dozens of short operators each leave a partly
        idle stripe and the per-operator remainders dominate.

        With ``solver="multi-bfs"`` (and the contracted node count in
        ``final_nodes``) the semi-external phase is priced through
        :meth:`semi_scc_multi_bfs`, so a budget too tight for the full
        source batch surfaces as extra edge scans in the prediction.
        """
        records = list(iterations)
        makespan = 0
        final_edges = 0
        for record in records:
            makespan += self.contraction_iteration(
                record, product_operator, workers
            )
            final_edges = record.next_num_edges
        if solver == "multi-bfs":
            makespan += self.semi_scc_multi_bfs(
                final_edges, final_nodes, semi_passes, workers
            )
        else:
            makespan += self.semi_scc(final_edges, semi_passes, workers)
        for record in records:
            makespan += self.expansion_iteration(record, workers)
        return makespan

    def ext_scc(
        self,
        iterations: Iterable[IterationRecord],
        semi_passes: int = 3,
        product_operator: bool = False,
    ) -> int:
        """Predicted total for a whole Ext-SCC run, given the measured
        per-iteration graph sizes (the sizes are data-dependent; the I/O
        per size is what the model predicts)."""
        records = list(iterations)
        total = 0
        final_edges = 0
        for record in records:
            total += self.contraction_iteration(record, product_operator)
            total += self.expansion_iteration(record)
            final_edges = record.next_num_edges
        total += self.semi_scc(final_edges, semi_passes)
        return total
