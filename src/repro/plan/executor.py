"""The plan executor: runs stages, emits spans, fires checkpoint hooks.

The executor walks a plan's stages in order, running each thunk with a
shared ``ctx`` dict.  Around every stage it snapshots the device's I/O
ledger (snapshots are free — no simulated I/O), so each stage's measured
delta lands in the :class:`~repro.plan.trace.TraceLedger` as one span
with the planner's prediction beside it.

Checkpoint boundaries are *declared on the plan*: a ``Materialize``
operator carrying a ``checkpoint`` role makes the executor call the
matching commit hook with the owning stage's result as soon as that
stage finishes — commit-then-delete ordering falls out of stage order.
Journal commits perform no simulated I/O, so a hooked run's ledger is
identical to an unhooked one.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.io.blocks import BlockDevice
from repro.plan.plan import ExtPlan, PlanStage
from repro.plan.trace import Span, TraceLedger

__all__ = ["PlanExecutor"]

CommitHook = Callable[[object], None]


class PlanExecutor:
    """Executes :class:`~repro.plan.ExtPlan` stages against a device.

    Args:
        device: the simulated disk the stage thunks operate on.
        trace: optional ledger collecting one :class:`Span` per stage.
    """

    def __init__(
        self,
        device: BlockDevice,
        trace: Optional[TraceLedger] = None,
    ) -> None:
        self.device = device
        self.trace = trace

    def _channel_totals(self):
        totals = getattr(self.device, "channel_totals", None)
        if totals is not None:
            return totals()
        return [self.device.stats.total]

    def execute(
        self,
        plan: ExtPlan,
        ctx: Optional[dict] = None,
        commit_hooks: Optional[Dict[str, CommitHook]] = None,
    ) -> object:
        """Run every stage; returns the last stage's result.

        Args:
            plan: the plan (stages must carry ``run`` thunks).
            ctx: optional initial context; each stage's result is stored
                under its label for downstream stages.
            commit_hooks: ``{checkpoint role: hook}``.  When a stage
                covering a ``Materialize`` with that role finishes, the
                hook is called with the stage's result.
        """
        ctx = {} if ctx is None else ctx
        hooks = commit_hooks or {}
        stats = self.device.stats
        result: object = None
        for stage in plan.stages:
            if stage.run is None:
                raise ValueError(
                    f"plan {plan.name!r} stage {stage.label!r} has no "
                    "thunk; declarative-only plans cannot be executed"
                )
            before = stats.snapshot()
            records_before = stats.records_written
            bytes_before = stats.bytes_stored
            channels_before = self._channel_totals()
            started = time.perf_counter()
            result = stage.run(ctx)
            wall = time.perf_counter() - started
            ctx[stage.label] = result
            self._commit(plan, stage, result, hooks)
            if self.trace is not None:
                delta = stats.snapshot() - before
                makespan = max(
                    after - before_ for after, before_ in
                    zip(self._channel_totals(), channels_before)
                )
                ops = plan.stage_ops(stage)
                predicted = (
                    sum(op.predicted_ios or 0 for op in ops if not op.elided)
                    if any(op.predicted_ios is not None for op in ops)
                    else None
                )
                self.trace.record(Span(
                    plan=plan.name,
                    stage=stage.label,
                    phase=stats.current_phase,
                    operators=tuple(
                        f"{op.kind}:{op.label}" for op in ops
                    ),
                    predicted_ios=predicted,
                    reads=delta.seq_reads + delta.rand_reads,
                    writes=delta.seq_writes + delta.rand_writes,
                    random_ios=delta.random,
                    records=stats.records_written - records_before,
                    bytes_stored=stats.bytes_stored - bytes_before,
                    makespan=makespan,
                    wall_seconds=wall,
                ))
        return result

    @staticmethod
    def _commit(
        plan: ExtPlan,
        stage: PlanStage,
        result: object,
        hooks: Dict[str, CommitHook],
    ) -> None:
        """Fire the commit hook of any checkpointing ``Materialize`` the
        finished stage covers."""
        if not hooks:
            return
        for op in plan.stage_ops(stage):
            if op.kind == "materialize" and not op.elided and op.checkpoint:
                hook = hooks.get(op.checkpoint)
                if hook is not None:
                    hook(result)
