"""The declarative plan: an operator DAG plus its executable stages.

An :class:`ExtPlan` has two synchronized views of one external pipeline:

* ``ops`` — the declarative operator DAG (:mod:`repro.plan.ops`): what
  the pipeline does, operator by operator, with per-operator cost
  predictions filled in by the planner.  This is what ``--explain``
  renders and the plan-golden CI job snapshots.
* ``stages`` — the executable groups.  PR 1 fuses sorts into their
  consumers with streaming generators, so a fused chain is *one*
  execution unit: splitting it would materialize intermediates and
  change the I/O ledger.  Each stage's ``run`` thunk executes the
  existing fused pipeline verbatim (pooled barriers included), which is
  what keeps a plan-built run byte-identical to the hand-threaded one.

Stage thunks take a ``ctx`` dict; each stage's result is stored under
its label so later stages can consume it, and the last stage's result is
the plan's result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.plan.ops import PlanOp

__all__ = ["ExtPlan", "PlanStage"]

StageFn = Callable[[dict], object]


@dataclass
class PlanStage:
    """One executable unit covering a slice of the operator DAG.

    Attributes:
        label: stage name (unique within the plan; the ctx key).
        op_ids: ids of the DAG operators this stage executes.
        run: the thunk (``None`` for declarative-only plans, e.g. the
            ones ``--explain`` builds and renders without running).
        barrier: the stage is a pooled barrier of independent tasks
            (PR 4): its thunk submits them through the device's worker
            pool in one ``run()`` call.
    """

    label: str
    op_ids: Tuple[int, ...]
    run: Optional[StageFn] = None
    barrier: bool = False


class ExtPlan:
    """A declarative external-operator plan for one pipeline phase."""

    def __init__(self, name: str, phase: str = "") -> None:
        self.name = name
        self.phase = phase or name
        self.ops: List[PlanOp] = []
        self.stages: List[PlanStage] = []
        self.rewrites: List[str] = []

    # -- construction --------------------------------------------------------

    def add(self, op: PlanOp) -> PlanOp:
        """Append an operator to the DAG and assign its id."""
        op.id = len(self.ops)
        self.ops.append(op)
        return op

    def stage(
        self,
        label: str,
        ops: Sequence[PlanOp],
        run: Optional[StageFn] = None,
        barrier: bool = False,
    ) -> PlanStage:
        """Group already-added operators into one executable stage."""
        stage = PlanStage(
            label=label,
            op_ids=tuple(op.id for op in ops),
            run=run,
            barrier=barrier,
        )
        self.stages.append(stage)
        return stage

    # -- views ---------------------------------------------------------------

    def op_by_label(self, label: str) -> PlanOp:
        for op in self.ops:
            if op.label == label:
                return op
        raise KeyError(label)

    def stage_ops(self, stage: PlanStage) -> List[PlanOp]:
        return [self.ops[i] for i in stage.op_ids]

    def materialize_ops(self) -> List[PlanOp]:
        """Non-elided ``Materialize`` operators (checkpoint candidates)."""
        return [
            op for op in self.ops if op.kind == "materialize" and not op.elided
        ]

    def checkpoint_roles(self) -> List[str]:
        """Journal roles declared on this plan's ``Materialize`` nodes."""
        return [
            op.checkpoint for op in self.materialize_ops()
            if op.checkpoint is not None
        ]

    @property
    def optimized(self) -> bool:
        return bool(self.rewrites)

    @property
    def total_predicted(self) -> int:
        """Predicted blocks summed over the live (non-elided) operators."""
        return sum(
            op.predicted_ios or 0 for op in self.ops if not op.elided
        )

    @property
    def total_predicted_makespan(self) -> int:
        """Predicted busiest-channel blocks (equals ``total_predicted``
        when no sharding rewrite ran)."""
        return sum(
            (op.predicted_makespan if op.predicted_makespan is not None
             else op.predicted_ios) or 0
            for op in self.ops if not op.elided
        )

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """The operator DAG as a deterministic table.

        Labels are stable and no runtime identifiers (temp-file names,
        object ids) appear, so the rendering of an optimized plan can be
        committed as a golden file and exact-matched in CI.
        """
        stage_of: Dict[int, str] = {}
        for stage in self.stages:
            for op_id in stage.op_ids:
                stage_of[op_id] = stage.label
        lines = [f"plan {self.name} (phase {self.phase})"]
        if self.rewrites:
            lines.append(f"  rewrites: {', '.join(self.rewrites)}")
        lines.append(
            f"  {'id':>3} {'operator':<13} {'label':<28} {'stage':<16} "
            f"{'records':>10} {'w':>3} {'attrs':<18} {'pred.I/Os':>10}"
        )
        for op in self.ops:
            attrs = []
            if op.elided:
                attrs.append("elided")
            elif op.fused:
                attrs.append("fused")
            if op.codec is not None:
                attrs.append(op.codec)
            if op.workers > 1:
                attrs.append(f"K={op.workers}")
            if op.checkpoint is not None:
                attrs.append(f"ckpt:{op.checkpoint}")
            pred = (
                "-" if op.elided or op.predicted_ios is None
                else f"{op.predicted_ios:,}"
            )
            lines.append(
                f"  {op.id:>3} {op.kind:<13} {op.label:<28} "
                f"{stage_of.get(op.id, '-'):<16} {op.records:>10,} "
                f"{op.record_size:>3} {','.join(attrs) or '-':<18} {pred:>10}"
            )
        lines.append(
            f"  predicted total: {self.total_predicted:,} blocks"
            + (
                f"  (critical path {self.total_predicted_makespan:,})"
                if self.total_predicted_makespan != self.total_predicted
                else ""
            )
        )
        return "\n".join(lines)
