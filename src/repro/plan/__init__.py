"""The declarative external-operator plan layer.

Pipelines build an :class:`ExtPlan` — a DAG over the seven-operator
vocabulary of :mod:`repro.plan.ops` — instead of calling ``io/``
functions directly; the planner (:func:`repro.analysis.planner.optimize_plan`)
applies fusion, codec, and sharding rewrites with cost predictions, and
the :class:`PlanExecutor` runs the stages, emits per-operator spans into
a :class:`TraceLedger`, and fires checkpoint commits declared on
``Materialize`` nodes.
"""

from repro.plan.cache import PlanCache
from repro.plan.executor import PlanExecutor
from repro.plan.ops import (
    Dedupe,
    Materialize,
    MergeJoin,
    MergePasses,
    PlanOp,
    Rewrite,
    Scan,
    SortRuns,
)
from repro.plan.plan import ExtPlan, PlanStage
from repro.plan.trace import Span, TraceLedger

__all__ = [
    "ExtPlan",
    "PlanStage",
    "PlanCache",
    "PlanExecutor",
    "Span",
    "TraceLedger",
    "PlanOp",
    "Scan",
    "SortRuns",
    "MergePasses",
    "MergeJoin",
    "Dedupe",
    "Rewrite",
    "Materialize",
]
