"""The external-operator vocabulary of an :class:`~repro.plan.ExtPlan`.

Every pipeline in this repo — contraction's Get-V/Get-E, expansion's
augments, the EM-SCC rewrites, the semi-external hand-off — is a
composition of seven external operators:

* :class:`Scan` — one sequential pass over a record stream;
* :class:`SortRuns` — replacement-selection run formation of an external
  sort (the formation *writes*; reading the producer is the producer's
  scan);
* :class:`MergePasses` — the merge levels of an external sort (each level
  reads and writes every block; the final level only reads when the sort
  is fused into its consumer);
* :class:`MergeJoin` — a co-scan of sorted streams (merge / semi / anti
  join, cogroup); free when both inputs are already streaming;
* :class:`Dedupe` — duplicate elimination inside a sorted stream;
* :class:`Rewrite` — a record-level transform (endpoint mapping, label
  attachment, degree augmentation);
* :class:`Materialize` — writing a result file.  ``fusable`` marks the
  sort outputs PR 1 fusion can elide; ``checkpoint`` names the journal
  role PR 3 commits when the file is durable.

Operators are *declarative*: they describe what an executed stage does
(and what it should cost) — the executable side lives in the plan's
stages, whose thunks run the existing fused pipelines verbatim so a
plan-built run is byte-identical to the hand-threaded one.

Costing is attached as a small spec tuple interpreted by
:func:`repro.analysis.planner.predict_plan`:

``("scan", records, width)``
    one sequential pass: ``CostModel.scan``-priced blocks.
``("sort-runs", records, width)``
    formation writes of an external sort (one pass worth of blocks).
``("merge-passes", records, width)``
    every merge level's reads+writes; the final level's write belongs to
    the matching ``("sort-final", ...)`` Materialize unless the group is
    fused, in which case the final level only reads.
``("sort-final", records, width)``
    the final merge's output write of a *materialized* sort.
``("write", records, width)``
    a plain sequential write (scan-priced).
``("free",)``
    no block I/O of its own (in-flight transforms, fused co-scans).

The specs of one sort are tied together by ``group`` so the planner's
fusion rewrite can re-price the whole chain; by construction the group's
parts always sum to exactly :meth:`CostModel.sort` (materialized) or
:meth:`CostModel.sort_streamed` (fused).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "PlanOp",
    "Scan",
    "SortRuns",
    "MergePasses",
    "MergeJoin",
    "Dedupe",
    "Rewrite",
    "Materialize",
]

CostSpec = Tuple


@dataclass
class PlanOp:
    """One node of the operator DAG.

    Attributes:
        label: stable human-readable name (``"E_out by (src,dst)"``) —
            also the DAG edge target other ops name in ``inputs``.  Labels
            are deterministic (no temp-file names) so a rendered plan can
            be snapshot-tested.
        inputs: labels of the upstream operators.
        records: estimated records flowing through the operator.
        record_size: logical bytes per record.
        cost: the cost spec (see module docstring).
        group: sort-group id tying ``SortRuns``/``MergePasses`` and the
            ``Materialize`` of one external sort together for the fusion
            rewrite.
        fusable: a ``Materialize`` the executed pipeline *can* stream away
            (PR 1); the fusion rewrite elides it when that is cheaper.
        fused: set by the fusion rewrite on the surviving sort parts.
        elided: set by the fusion rewrite on the removed ``Materialize``.
        workers: shard width assigned by the sharding rewrite (1 = serial).
        codec: storage codec assigned by the codec rewrite to writing ops.
        checkpoint: journal role (``"contract"`` / ``"semi"`` /
            ``"expand"``) a ``Materialize`` declares; the executor commits
            the matching checkpoint entry when the owning stage finishes.
        predicted_ios: blocks the planner predicts for this operator
            (total work, independent of sharding).
        predicted_makespan: busiest-channel share of ``predicted_ios``
            when striped over ``workers`` channels.
        id: position in the owning plan (assigned by ``ExtPlan.add``).
    """

    label: str
    inputs: Tuple[str, ...] = ()
    records: int = 0
    record_size: int = 0
    cost: CostSpec = ("free",)
    group: Optional[str] = None
    fusable: bool = False
    fused: bool = False
    elided: bool = False
    workers: int = 1
    codec: Optional[str] = None
    checkpoint: Optional[str] = None
    predicted_ios: Optional[int] = None
    predicted_makespan: Optional[int] = None
    id: int = field(default=-1, compare=False)

    kind = "op"

    @property
    def writes(self) -> bool:
        """Does this operator write blocks (and therefore take a codec)?"""
        return self.cost[0] in ("sort-runs", "merge-passes", "sort-final", "write")


@dataclass
class Scan(PlanOp):
    kind = "scan"


@dataclass
class SortRuns(PlanOp):
    kind = "sort-runs"


@dataclass
class MergePasses(PlanOp):
    kind = "merge-passes"


@dataclass
class MergeJoin(PlanOp):
    kind = "merge-join"


@dataclass
class Dedupe(PlanOp):
    kind = "dedupe"


@dataclass
class Rewrite(PlanOp):
    kind = "rewrite"


@dataclass
class Materialize(PlanOp):
    kind = "materialize"
