"""A persistent plan cache for service-style repeated queries.

Planning is cheap but not free — the autotuner prices the full knob
cross-product (codec × workers × executor × solver) before every run.
A service answering repeated SCC queries over the same graph should pay
that once: :class:`PlanCache` memoizes tuning decisions keyed by
(graph-stats fingerprint, memory budget, block size, config fingerprint,
calibration version, objective).  A hit skips the search entirely — and,
because stored payloads round-trip through JSON exactly, replays a
decision *byte-identical* to the one a fresh search would record, so
warm runs execute the same plans as cold ones.

The cache optionally persists as versioned JSON (``save``/``load`` via
the constructor's ``path``), with the same graceful fallback discipline
as :class:`~repro.analysis.calibration.CalibrationProfile`: an
unreadable or schema-incompatible file starts empty instead of raising.
Hit/miss counters are surfaced in traces and bench JSON.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
from collections import OrderedDict
from typing import Dict, Optional

__all__ = ["PlanCache", "PLAN_CACHE_SCHEMA_VERSION"]

PLAN_CACHE_SCHEMA_VERSION = 1


class PlanCache:
    """An LRU cache of serialized tuning decisions.

    Args:
        path: optional JSON file to load from now and :meth:`save` to
            later (missing or incompatible files start empty).
        max_entries: LRU bound; the least-recently-used entry is evicted
            past it.
    """

    def __init__(self, path: Optional[str] = None,
                 max_entries: int = 256) -> None:
        self.path = path
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        if path is not None:
            self._load(path)

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def make_key(
        num_nodes: int,
        num_edges: int,
        memory_bytes: int,
        block_size: int,
        config_fingerprint: dict,
        calibration_version: str,
        objective: str,
    ) -> str:
        """Deterministic cache key over everything the search depends on.

        The graph enters as its stats fingerprint (|V|, |E|) — the search
        prices sizes, not contents — and the calibration version makes any
        newly ingested measurement invalidate plans priced under the old
        constants.
        """
        canonical = json.dumps(
            {
                "nodes": num_nodes,
                "edges": num_edges,
                "memory": memory_bytes,
                "block": block_size,
                "config": config_fingerprint,
                "calibration": calibration_version,
                "objective": objective,
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:16]

    def lookup(self, key: str) -> Optional[dict]:
        """The stored payload for ``key`` (a deep copy, so callers cannot
        mutate the cache), counting the hit or miss."""
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return copy.deepcopy(payload)

    def store(self, key: str, payload: dict) -> None:
        """Insert (or refresh) an entry, evicting LRU past the bound."""
        self._entries[key] = copy.deepcopy(payload)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        """Counters for traces and bench JSON."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}

    # -- persistence ---------------------------------------------------------

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="ascii") as f:
                payload = json.load(f)
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) or \
                payload.get("schema") != PLAN_CACHE_SCHEMA_VERSION:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            for key, value in entries.items():
                if isinstance(key, str) and isinstance(value, dict):
                    self._entries[key] = value

    def save(self, path: Optional[str] = None) -> None:
        """Persist the entries as versioned JSON (atomic rename)."""
        target = path or self.path
        if target is None:
            raise ValueError("no path given to PlanCache.save")
        payload = {
            "schema": PLAN_CACHE_SCHEMA_VERSION,
            "entries": dict(self._entries),
        }
        tmp = f"{target}.tmp"
        with open(tmp, "w", encoding="ascii") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
            f.write("\n")
        os.replace(tmp, target)
