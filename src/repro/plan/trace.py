"""Per-operator execution tracing: spans and the trace ledger.

Every stage a :class:`~repro.plan.PlanExecutor` runs emits one
:class:`Span` — which operators ran, the phase they were charged to, the
planner's predicted blocks, and the measured I/O delta (blocks, payload
bytes, busiest-channel makespan contribution, wall time).  The ledger is
surfaced by ``repro scc --trace-json`` and by bench reporting, and the
calibration benchmark checks each span's prediction against its
measurement.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Span", "TraceLedger"]


@dataclass
class Span:
    """One executed plan stage's measurements.

    Attributes:
        plan: name of the owning plan (``"contract-1"``).
        stage: stage label within the plan (``"get-v"``).
        phase: innermost I/O-ledger phase the blocks were charged to.
        operators: ``"kind:label"`` of every DAG operator the stage
            covers (fused chains execute as one stage, so a span usually
            spans several operators).
        predicted_ios: planner prediction summed over those operators
            (``None`` when the plan was executed without optimization).
        reads / writes: measured blocks.
        random_ios: measured non-sequential accesses (zero by design).
        records: records appended to files during the stage.
        bytes_stored: stored payload bytes written during the stage.
        makespan: busiest-channel share of the stage's blocks on a
            striped device (equals ``reads + writes`` when unstriped).
        wall_seconds: host wall-clock time of the stage.
    """

    plan: str
    stage: str
    phase: str
    operators: Tuple[str, ...]
    predicted_ios: Optional[int]
    reads: int
    writes: int
    random_ios: int
    records: int
    bytes_stored: int
    makespan: int
    wall_seconds: float

    @property
    def measured_ios(self) -> int:
        """Total measured blocks of the stage."""
        return self.reads + self.writes


class TraceLedger:
    """An append-only list of executed spans with aggregate views."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def record(self, span: Span) -> None:
        self.spans.append(span)

    @property
    def total_measured(self) -> int:
        """Measured blocks across every span."""
        return sum(s.measured_ios for s in self.spans)

    @property
    def total_predicted(self) -> int:
        """Predicted blocks across every span with a prediction."""
        return sum(s.predicted_ios or 0 for s in self.spans)

    def by_phase(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {predicted, measured, makespan, wall_seconds}}`` over
        the run's top-level phases (the prefix before the first ``/``).
        ``wall_seconds`` is the one float — a host measurement riding along
        with the simulated counters."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            top = span.phase.split("/", 1)[0] if span.phase else ""
            bucket = out.setdefault(
                top,
                {"predicted": 0, "measured": 0, "makespan": 0, "wall_seconds": 0.0},
            )
            bucket["predicted"] += span.predicted_ios or 0
            bucket["measured"] += span.measured_ios
            bucket["makespan"] += span.makespan
            bucket["wall_seconds"] += span.wall_seconds
        return out

    def render(self) -> str:
        """A printable per-span table (predicted vs. measured blocks)."""
        lines = [
            f"{'plan':<14} {'stage':<18} {'pred.':>8} {'meas.':>8} "
            f"{'Δ%':>7} {'makespan':>9} {'bytes':>12}"
        ]
        for s in self.spans:
            if s.predicted_ios is None:
                delta = "-"
            elif s.predicted_ios == 0:
                delta = "0.0" if s.measured_ios == 0 else "inf"
            else:
                delta = f"{100 * (s.measured_ios - s.predicted_ios) / s.predicted_ios:+.1f}"
            pred = "-" if s.predicted_ios is None else f"{s.predicted_ios:,}"
            lines.append(
                f"{s.plan:<14} {s.stage:<18} {pred:>8} {s.measured_ios:>8,} "
                f"{delta:>7} {s.makespan:>9,} {s.bytes_stored:>12,}"
            )
        lines.append(
            f"{'TOTAL':<14} {'':<18} {self.total_predicted:>8,} "
            f"{self.total_measured:>8,}"
        )
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 1, plans=None,
                context: Optional[dict] = None) -> str:
        """The full ledger as JSON (spans plus per-phase aggregates).

        Args:
            indent: JSON indentation.
            plans: optional executed :class:`~repro.plan.ExtPlan` list —
                each is serialized with its rewrite log (including the
                autotuner's chosen/runner-up lines) and per-operator
                ``predicted_ios`` / ``predicted_makespan``, so one
                artifact carries everything offline analysis needs.
            context: optional run context (knobs, sizes, the payload
                ledger) — what
                :meth:`~repro.analysis.calibration.CalibrationProfile.ingest_trace_json`
                fits constants from.
        """
        payload: dict = {
            "spans": [asdict(s) for s in self.spans],
            "by_phase": self.by_phase(),
            "total_predicted": self.total_predicted,
            "total_measured": self.total_measured,
        }
        if plans is not None:
            payload["plans"] = [
                {
                    "name": plan.name,
                    "phase": plan.phase,
                    "rewrites": list(plan.rewrites),
                    "predicted_total": plan.total_predicted,
                    "predicted_makespan": plan.total_predicted_makespan,
                    "ops": [
                        {
                            "id": op.id,
                            "kind": op.kind,
                            "label": op.label,
                            "records": op.records,
                            "record_size": op.record_size,
                            "workers": op.workers,
                            "codec": op.codec,
                            "fused": op.fused,
                            "elided": op.elided,
                            "predicted_ios": op.predicted_ios,
                            "predicted_makespan": op.predicted_makespan,
                        }
                        for op in plan.ops
                    ],
                }
                for plan in plans
            ]
        if context is not None:
            payload["context"] = context
        return json.dumps(payload, indent=indent)
