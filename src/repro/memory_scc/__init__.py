"""In-memory reference SCC algorithms (Tarjan, Kosaraju, Gabow) and the
condensation DAG they enable."""

from repro.memory_scc.condensation import condensation, is_dag, topological_order
from repro.memory_scc.dfs import dfs_postorder, dfs_preorder, reachable_from
from repro.memory_scc.gabow import gabow_scc
from repro.memory_scc.kosaraju import kosaraju_scc
from repro.memory_scc.tarjan import tarjan_scc

__all__ = [
    "tarjan_scc",
    "kosaraju_scc",
    "gabow_scc",
    "condensation",
    "topological_order",
    "is_dag",
    "dfs_postorder",
    "dfs_preorder",
    "reachable_from",
]
