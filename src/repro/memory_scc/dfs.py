"""Iterative depth-first search utilities.

The Kosaraju–Sharir reference solver and the external DFS baseline both need
a DFS *postorder*; this module provides it without recursion so deep graphs
(long paths) do not overflow the interpreter stack.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.graph.digraph import DiGraph

__all__ = ["dfs_postorder", "dfs_preorder", "reachable_from"]


def dfs_postorder(graph: DiGraph, roots: Optional[Iterable[int]] = None) -> List[int]:
    """DFS postorder over all nodes, restarting from ``roots`` in order.

    Args:
        graph: the graph to traverse.
        roots: restart order (default: the graph's node order).

    Returns:
        Node ids in the order they finished (postorder).
    """
    if roots is None:
        roots = list(graph.nodes())
    visited: Set[int] = set()
    order: List[int] = []
    for root in roots:
        if root in visited:
            continue
        visited.add(root)
        work = [(root, iter(graph.out_neighbors(root)))]
        while work:
            v, successors = work[-1]
            advanced = False
            for w in successors:
                if w not in visited:
                    visited.add(w)
                    work.append((w, iter(graph.out_neighbors(w))))
                    advanced = True
                    break
            if not advanced:
                order.append(v)
                work.pop()
    return order


def dfs_preorder(graph: DiGraph, root: int) -> List[int]:
    """DFS preorder of the nodes reachable from ``root``."""
    visited: Set[int] = {root}
    order: List[int] = [root]
    work = [(root, iter(graph.out_neighbors(root)))]
    while work:
        v, successors = work[-1]
        advanced = False
        for w in successors:
            if w not in visited:
                visited.add(w)
                order.append(w)
                work.append((w, iter(graph.out_neighbors(w))))
                advanced = True
                break
        if not advanced:
            work.pop()
    return order


def reachable_from(graph: DiGraph, root: int) -> Set[int]:
    """The set of nodes reachable from ``root`` (including ``root``)."""
    return set(dfs_preorder(graph, root))
