"""Iterative Gabow (path-based) SCC.

A third independent in-memory solver; having three reference algorithms that
must agree on every random graph gives the test suite a strong oracle.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.digraph import DiGraph

__all__ = ["gabow_scc"]


def gabow_scc(graph: DiGraph) -> Dict[int, int]:
    """Compute SCCs with Gabow's path-based algorithm (iterative).

    Returns:
        A canonical labeling ``node -> min id of its SCC``.
    """
    preorder: Dict[int, int] = {}
    assigned: Dict[int, int] = {}
    stack_s: List[int] = []  # nodes not yet assigned to a component
    stack_p: List[int] = []  # boundaries between open components
    counter = 0

    for root in graph.nodes():
        if root in preorder:
            continue
        work = [(root, iter(graph.out_neighbors(root)), False)]
        while work:
            v, successors, expanded = work.pop()
            if not expanded:
                preorder[v] = counter
                counter += 1
                stack_s.append(v)
                stack_p.append(v)
            advanced = False
            for w in successors:
                if w not in preorder:
                    work.append((v, successors, True))
                    work.append((w, iter(graph.out_neighbors(w)), False))
                    advanced = True
                    break
                if w not in assigned:
                    # Contract the path: pop P down to w's preorder number.
                    while preorder[stack_p[-1]] > preorder[w]:
                        stack_p.pop()
            if advanced:
                continue
            if stack_p and stack_p[-1] == v:
                stack_p.pop()
                component: List[int] = []
                while True:
                    w = stack_s.pop()
                    component.append(w)
                    if w == v:
                        break
                rep = min(component)
                for w in component:
                    assigned[w] = rep
    return assigned
