"""Iterative Tarjan SCC — the in-memory reference solver.

Linear time, no recursion (explicit stack), so it handles path graphs of
hundreds of thousands of nodes without hitting Python's recursion limit.
Used to verify every external/semi-external solver and as EM-SCC's
per-partition solver.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.digraph import DiGraph

__all__ = ["tarjan_scc"]


def tarjan_scc(graph: DiGraph) -> Dict[int, int]:
    """Compute SCCs of ``graph`` with the iterative Tarjan algorithm.

    Returns:
        A canonical labeling ``node -> min id of its SCC``; two nodes share
        a label iff they are strongly connected.
    """
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    labels: Dict[int, int] = {}
    counter = 0

    for root in graph.nodes():
        if root in index:
            continue
        # Each work-stack frame is (node, iterator over its successors).
        work = [(root, iter(graph.out_neighbors(root)))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, successors = work[-1]
            advanced = False
            for w in successors:
                if w not in index:
                    index[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(graph.out_neighbors(w))))
                    advanced = True
                    break
                if on_stack.get(w):
                    if index[w] < lowlink[v]:
                        lowlink[v] = index[w]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
            if lowlink[v] == index[v]:
                component: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                rep = min(component)
                for w in component:
                    labels[w] = rep
    return labels
