"""Iterative Kosaraju–Sharir SCC.

The two-DFS-pass algorithm the paper's DFS-SCC baseline externalizes
(Algorithm 1): a postorder of ``G`` followed by a DFS of the transpose in
decreasing postorder; each second-pass tree is one SCC.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graph.digraph import DiGraph
from repro.memory_scc.dfs import dfs_postorder

__all__ = ["kosaraju_scc"]


def kosaraju_scc(graph: DiGraph) -> Dict[int, int]:
    """Compute SCCs with Kosaraju–Sharir.

    Returns:
        A canonical labeling ``node -> min id of its SCC``.
    """
    order = dfs_postorder(graph)
    transpose = graph.reversed()
    visited: Set[int] = set()
    labels: Dict[int, int] = {}
    for root in reversed(order):
        if root in visited:
            continue
        component: List[int] = []
        visited.add(root)
        work = [(root, iter(transpose.out_neighbors(root)))]
        component.append(root)
        while work:
            v, successors = work[-1]
            advanced = False
            for w in successors:
                if w not in visited:
                    visited.add(w)
                    component.append(w)
                    work.append((w, iter(transpose.out_neighbors(w))))
                    advanced = True
                    break
            if not advanced:
                work.pop()
        rep = min(component)
        for v in component:
            labels[v] = rep
    return labels
