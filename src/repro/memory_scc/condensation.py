"""Condensation: contract every SCC to a node, producing a DAG.

This is the downstream operation that motivates SCC computation in the
paper's introduction (reachability indexing, topological sort, pattern
matching): with SCC labels in hand, the condensed graph is a DAG on which
those problems become tractable.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.graph.digraph import DiGraph

__all__ = ["condensation", "topological_order", "is_dag"]


def condensation(graph: DiGraph, labels: Mapping[int, int]) -> DiGraph:
    """Contract each SCC of ``graph`` into one node.

    Args:
        graph: the original graph.
        labels: SCC labeling ``node -> representative`` (e.g. from
            :func:`~repro.memory_scc.tarjan.tarjan_scc`).

    Returns:
        The condensation DAG whose nodes are SCC representatives; self-loops
        and parallel condensed edges are dropped.
    """
    dag = DiGraph(nodes=set(labels.values()))
    for u, v in graph.edges():
        cu, cv = labels[u], labels[v]
        if cu != cv:
            dag.add_edge(cu, cv)
    return dag


def topological_order(dag: DiGraph) -> List[int]:
    """Kahn's algorithm; raises ``ValueError`` when the graph has a cycle.

    The paper's topological-sort application: run on the condensation.
    """
    indegree: Dict[int, int] = {v: dag.in_degree(v) for v in dag.nodes()}
    ready = sorted(v for v, d in indegree.items() if d == 0)
    order: List[int] = []
    while ready:
        v = ready.pop()
        order.append(v)
        for w in dag.out_neighbors(v):
            indegree[w] -= 1
            if indegree[w] == 0:
                ready.append(w)
    if len(order) != dag.num_nodes:
        raise ValueError("graph has a cycle; condense its SCCs first")
    return order


def is_dag(graph: DiGraph) -> bool:
    """True when ``graph`` has no directed cycle (a self-loop is a cycle)."""
    try:
        topological_order(graph)
    except ValueError:
        return False
    return True
