"""Fully external BFS (the Munagala–Ranade lineage, related work [18]).

The related-work section's external traversal family: compute BFS levels
of a directed graph with *no* per-node memory — frontiers and the visited
set are files, each round is a semi-join of the frontier against the
sorted adjacency, a sort-dedupe of the neighbor multiset, and an anti-join
against the visited file.

For directed graphs every earlier level must be subtracted (a back edge
may target any ancestor level), so the visited file is cumulative; the
cost is ``O(L * (sort(|E|) + scan(|V|)))`` for ``L`` BFS levels — fine for
small-diameter graphs, and exactly why external *DFS* (which cannot
batch like this) is so much harder, per the paper's Section III.
"""

from __future__ import annotations

from operator import itemgetter

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.constants import NODE_RECORD_BYTES, SCC_RECORD_BYTES
from repro.graph.edge_file import EdgeFile
from repro.io.files import ExternalFile
from repro.io.join import anti_join, merge_join
from repro.io.memory import MemoryBudget
from repro.io.sort import external_sort_records, merge_runs

__all__ = ["external_bfs_levels", "external_reachable"]


def external_bfs_levels(
    edge_file: EdgeFile,
    sources: Iterable[int],
    memory: MemoryBudget,
    max_levels: Optional[int] = None,
) -> ExternalFile:
    """BFS distances from ``sources`` over an on-disk graph.

    Args:
        edge_file: the directed edges.
        sources: the level-0 node set.
        memory: the external budget (sorts, joins).
        max_levels: optional cap on rounds (for tests).

    Returns:
        ``(node, distance)`` records sorted by node id, covering exactly
        the reachable nodes.
    """
    device = edge_file.device
    adjacency = edge_file.sorted_by_src(memory)

    frontier = external_sort_records(
        device, ((v,) for v in sources), NODE_RECORD_BYTES, memory, unique=True
    )
    visited = ExternalFile.from_records(
        device, device.temp_name("bfsvis"), frontier.scan(), NODE_RECORD_BYTES
    )
    levels = ExternalFile.create(device, device.temp_name("bfslvl"), SCC_RECORD_BYTES)
    for (v,) in frontier.scan():
        levels.append((v, 0))

    distance = 0
    while frontier.num_records:
        distance += 1
        if max_levels is not None and distance > max_levels:
            break
        # Neighbors of the frontier: one merge join against the adjacency.
        def neighbor_stream() -> Iterator[Tuple[int]]:
            for _frontier_rec, edge in merge_join(
                frontier.scan(), adjacency.scan(), itemgetter(0), itemgetter(0)
            ):
                yield (edge[1],)

        candidates = external_sort_records(
            device, neighbor_stream(), NODE_RECORD_BYTES, memory, unique=True
        )
        fresh = anti_join(
            candidates.scan(), (v for (v,) in visited.scan()), itemgetter(0)
        )
        next_frontier = ExternalFile.from_records(
            device, device.temp_name("bfsfr"), fresh, NODE_RECORD_BYTES
        )
        candidates.delete()
        for (v,) in next_frontier.scan():
            levels.append((v, distance))
        # visited := merge(visited, next_frontier)  (both sorted).
        merged = merge_runs([visited.scan(), next_frontier.scan()])
        new_visited = ExternalFile.from_records(
            device, device.temp_name("bfsvis"), merged, NODE_RECORD_BYTES
        )
        visited.delete()
        visited = new_visited
        frontier.delete()
        frontier = next_frontier
    frontier.delete()
    visited.delete()
    adjacency.delete()
    levels.close()

    result = external_sort_records(device, levels.scan(), SCC_RECORD_BYTES, memory)
    levels.delete()
    return result


def external_reachable(
    edge_file: EdgeFile,
    source: int,
    memory: MemoryBudget,
) -> List[int]:
    """The nodes reachable from ``source`` (including it), sorted."""
    levels = external_bfs_levels(edge_file, [source], memory)
    nodes = [v for v, _ in levels.scan()]
    levels.delete()
    return nodes
